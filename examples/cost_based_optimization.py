"""The paper's §7 future work, demonstrated: cost-driven rule application.

RUMOR's rule engine is heuristic — priorities pin one rewrite order. The
paper closes by suggesting a cost model "such that the optimizer can drive
the rule applications based on a cost function". This example shows the
minimal version implemented here:

1. an analytical :class:`~repro.core.cost.CostModel` scores plans by
   propagating estimated tuple rates through the m-op DAG;
2. :func:`~repro.core.cost.cheapest_plan` arbitrates between candidate rule
   sets (channel rules on vs. off) per workload;
3. the :mod:`~repro.core.confluence` checker verifies that the priority
   order makes the rewrite outcome independent of registry order.

Run with::

    python examples/cost_based_optimization.py
"""

from repro.core.confluence import check_confluence, plan_shape
from repro.core.cost import CostModel, cheapest_plan
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.workloads.templates import Workload3, WorkloadParameters


def channel_workload_costs() -> None:
    """Channels pay off when queries share structure — the model knows."""
    model = CostModel()
    print("== Workload 3 (sharable streams): channel vs channel-free cost ==")
    for queries in (10, 100, 500):
        workload = Workload3(WorkloadParameters(num_queries=queries), capacity=10)
        plan, cost, index = cheapest_plan(
            [
                lambda w=workload: w.rumor_plan(channels=False)[0],
                lambda w=workload: w.rumor_plan(channels=True)[0],
            ],
            model,
        )
        choice = "WITH channels" if index == 1 else "WITHOUT channels"
        alt_plan = workload.rumor_plan(channels=index == 0)[0]
        print(
            f"  {queries:>4} queries: chose {choice:17s} "
            f"(cost {cost:8.2f} vs {model.plan_cost(alt_plan):8.2f})"
        )


def confluence_demo() -> None:
    """Priorities pin one outcome regardless of rule-list order."""

    def plan_factory() -> QueryPlan:
        plan = QueryPlan()
        source = plan.add_source("S", _schema())
        for c in range(6):
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(c % 3))),
                [source],
                query_id=f"q{c}",
            )
            plan.mark_output(out, f"q{c}")
        return plan

    report = check_confluence(
        plan_factory, default_rules(), max_orders=12, respect_priorities=True
    )
    print(f"\n== confluence under priority order ==\n  {report}")


def _schema():
    from repro.streams.schema import Schema

    return Schema.numbered(2)


def main() -> None:
    channel_workload_costs()
    confluence_demo()

    # And the cost of an individual optimization step, for intuition:
    model = CostModel()
    plan = QueryPlan()
    source = plan.add_source("S", _schema())
    for c in range(20):
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(c))), [source],
            query_id=f"q{c}",
        )
        plan.mark_output(out, f"q{c}")
    before = model.plan_cost(plan)
    Optimizer().optimize(plan)
    after = model.plan_cost(plan)
    print(
        f"\n== 20 equality filters ==\n"
        f"  naive cost {before:.2f} -> optimized {after:.2f} "
        f"({before / after:.1f}x cheaper; plan shape {len(plan_shape(plan))} m-ops)"
    )


if __name__ == "__main__":
    main()
