"""The paper's motivating scenario (§4.1): performance monitoring.

Registers n instances of hybrid Query 2 — smooth the per-process CPU load
with a 60 s average, then detect monotonically increasing load sequences that
satisfy a per-query starting condition and a shared stopping condition — over
a simulated Windows-performance-counter trace.

Two plans are compared on identical input: the Fig. 6(b) plan (no channels)
and the Fig. 6(c) plan, where the starting-condition m-op emits a single
channel tuple per smoothed reading and one shared µ instance serves every
query (§4.4).

Run with::

    python examples/performance_monitoring.py
"""

from repro.engine.executor import StreamEngine
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import HybridWorkload

PROCESSES = 32
SECONDS = 240
QUERIES = 12


def main() -> None:
    dataset = PerfmonDataset(processes=PROCESSES, duration_seconds=SECONDS, seed=7)
    workload = HybridWorkload(dataset, num_queries=QUERIES, sel=0.5)

    print(
        f"{QUERIES} hybrid queries over {PROCESSES} processes × {SECONDS}s "
        f"({PROCESSES * SECONDS} CPU readings)\n"
    )

    results = {}
    for label, channels in (("with channels (Fig 6c)", True),
                            ("without channels (Fig 6b)", False)):
        plan, name_map = workload.rumor_plan(channels=channels)
        print(f"== plan {label}: {len(plan.mops)} m-ops ==")
        for mop in plan.mops:
            print(f"   {mop.describe()}")
        engine = StreamEngine(plan, capture_outputs=True)
        stats = engine.run(workload.sources(plan, name_map, SECONDS))
        results[label] = stats
        sample_query = "q0"
        sample = engine.captured.get(sample_query, [])
        print(f"   {stats}")
        print(f"   {sample_query}: {len(sample)} ramp alerts", end="")
        if sample:
            alert = sample[0].as_dict()
            print(
                f" (first: pid={alert['pid']} load {alert['s_load']:.1f}"
                f" -> {alert['load']:.1f})",
                end="",
            )
        print("\n")

    with_channel = results["with channels (Fig 6c)"].throughput
    without_channel = results["without channels (Fig 6b)"].throughput
    print(
        f"channel speedup: {with_channel / without_channel:.2f}x "
        f"({with_channel:,.0f} vs {without_channel:,.0f} events/s)"
    )


if __name__ == "__main__":
    main()
