"""Event pattern detection: Cayuga automata vs RUMOR query plans (§4.2–§4.3).

Builds a small fleet of Cayuga-style sequence queries (the Workload 1
template: a constant filter on stream S followed within a window by a
constant-matched T event), runs them

1. on the automaton engine with prefix state merging and the FR/AN indexes,
2. as translated RUMOR query plans after rule-based optimization,

and verifies both engines produce identical matches.

Run with::

    python examples/event_patterns.py
"""

import numpy as np

from repro import (
    Comparison,
    Optimizer,
    QueryPlan,
    Schema,
    StreamEngine,
    StreamSource,
    StreamTuple,
    conjunction,
    lit,
    right,
)
from repro.automata import AutomatonEngine, translate_automaton
from repro.automata.automaton import sequence_automaton
from repro.operators.predicates import DurationWithin

SCHEMA = Schema.numbered(3)
QUERIES = 25
EVENTS = 4000


def build_queries(rng: np.random.Generator):
    """(start constant, end constant, window) per query."""
    return [
        (int(rng.integers(0, 20)), int(rng.integers(0, 20)), int(rng.integers(5, 60)))
        for __ in range(QUERIES)
    ]


def automaton_for(start_const, end_const, window, query_id):
    return sequence_automaton(
        "S",
        SCHEMA,
        Comparison(right("a0"), "==", lit(start_const)),
        "T",
        SCHEMA,
        conjunction(
            [DurationWithin(window), Comparison(right("a0"), "==", lit(end_const))]
        ),
        query_id=query_id,
    )


def main() -> None:
    rng = np.random.default_rng(42)
    queries = build_queries(rng)
    events = [
        (
            "S" if i % 2 == 0 else "T",
            StreamTuple(SCHEMA, tuple(int(v) for v in rng.integers(0, 20, 3)), i),
        )
        for i in range(EVENTS)
    ]

    # --- automaton engine -----------------------------------------------------
    cayuga = AutomatonEngine()
    cayuga.declare_stream("S", SCHEMA)
    cayuga.declare_stream("T", SCHEMA)
    for index, (start_const, end_const, window) in enumerate(queries):
        cayuga.add(automaton_for(start_const, end_const, window, f"q{index}"))
    cayuga.freeze()
    print(
        f"automaton forest: {cayuga.state_count} states for {QUERIES} queries "
        "(prefix merging shares the start states)"
    )
    cayuga_stats = cayuga.run(iter(events), capture_outputs=True)
    print(f"cayuga: {cayuga_stats}")

    # --- translated RUMOR plan --------------------------------------------------
    plan = QueryPlan()
    s = plan.add_source("S", SCHEMA)
    t = plan.add_source("T", SCHEMA)
    for index, (start_const, end_const, window) in enumerate(queries):
        translate_automaton(
            automaton_for(start_const, end_const, window, f"q{index}"),
            plan,
            {"S": s, "T": t},
            query_id=f"q{index}",
        )
    report = Optimizer().optimize(plan)
    print(f"\nRUMOR plan after optimization ({report}):")
    print(plan.describe())

    engine = StreamEngine(plan, capture_outputs=True)
    rumor_stats = engine.run(
        [
            StreamSource(plan.channel_of(s), [e for n, e in events if n == "S"]),
            StreamSource(plan.channel_of(t), [e for n, e in events if n == "T"]),
        ]
    )
    print(f"rumor: {rumor_stats}")

    # --- equivalence ------------------------------------------------------------
    for index in range(QUERIES):
        query_id = f"q{index}"
        cayuga_outputs = sorted(
            (o.ts, tuple(o.values)) for o in cayuga.captured.get(query_id, [])
        )
        rumor_outputs = sorted(
            (o.ts, tuple(o.values)) for o in engine.captured.get(query_id, [])
        )
        assert cayuga_outputs == rumor_outputs, query_id
    total = sum(len(v) for v in engine.captured.values())
    print(f"\nboth engines agree on all {QUERIES} queries ({total} matches)")


if __name__ == "__main__":
    main()
