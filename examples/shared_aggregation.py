"""Shared aggregation: many dashboards, one scan (§2.4 and [22]).

A fleet of "dashboard" queries aggregates the same order stream with the same
function but different group-by specifications and window lengths — the sα
workload.  The optimizer merges all of them into one SharedAggregateMOp: the
window buffer is stored once and every query keeps only O(groups) running
partials.

A second fleet computes the *same* aggregate over different (but sharable)
filtered views, exercising the channel-based cα rule (shared fragment
aggregation, [15]).

Run with::

    python examples/shared_aggregation.py
"""

import numpy as np

from repro import (
    Comparison,
    Optimizer,
    QueryPlan,
    Schema,
    Selection,
    SlidingWindowAggregate,
    StreamEngine,
    StreamSource,
    StreamTuple,
    TimeWindow,
    attr,
    lit,
)

ORDERS = Schema.of_ints("region", "product", "amount")


def main() -> None:
    plan = QueryPlan()
    orders = plan.add_source("orders", ORDERS)

    # Fleet 1: same function (sum of amount), different group-bys and windows.
    dashboards = [
        ("by_region_1m", ("region",), 60),
        ("by_product_1m", ("product",), 60),
        ("by_region_product_1m", ("region", "product"), 60),
        ("by_region_5m", ("region",), 300),
        ("total_5m", (), 300),
    ]
    for query_id, group_by, window in dashboards:
        out = plan.add_operator(
            SlidingWindowAggregate(
                "sum", "amount", TimeWindow(window), group_by, "revenue"
            ),
            [orders],
            query_id=query_id,
        )
        plan.mark_output(out, query_id)

    # Fleet 2: identical averages over per-region filtered views — the
    # filtered streams are sharable (selections are transparent for ∼), so
    # the identical aggregates merge over a channel (cα).
    for region in (1, 2, 3):
        query_id = f"region{region}_avg"
        filtered = plan.add_operator(
            Selection(Comparison(attr("region"), "==", lit(region))),
            [orders],
            query_id=query_id,
        )
        out = plan.add_operator(
            SlidingWindowAggregate(
                "avg", "amount", TimeWindow(120), ("product",), "avg_amount"
            ),
            [filtered],
            query_id=query_id,
        )
        plan.mark_output(out, query_id)

    print("== naive plan ==")
    print(plan.describe())
    report = Optimizer().optimize(plan)
    print(f"\n== optimized ({report}) ==")
    print(plan.describe())

    rng = np.random.default_rng(3)
    tuples = [
        StreamTuple(
            ORDERS,
            (int(rng.integers(1, 4)), int(rng.integers(1, 6)), int(rng.integers(1, 100))),
            ts,
        )
        for ts in range(2000)
    ]
    engine = StreamEngine(plan, capture_outputs=True)
    stats = engine.run([StreamSource(plan.channel_of(orders), tuples)])
    print(f"\n== run ==\n{stats}")
    for query_id, __, __ in dashboards:
        outputs = engine.captured.get(query_id, [])
        print(f"{query_id}: {len(outputs)} refreshes, last={outputs[-1].as_dict()}")
    for region in (1, 2, 3):
        query_id = f"region{region}_avg"
        outputs = engine.captured.get(query_id, [])
        print(f"{query_id}: {len(outputs)} refreshes, last={outputs[-1].as_dict()}")


if __name__ == "__main__":
    main()
