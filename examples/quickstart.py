"""Quickstart: three stream queries, one optimized multi-query plan.

Builds a tiny multi-query workload over a sensor stream, lets the RUMOR
optimizer share work among the queries (predicate indexing + channel-based
aggregation), and runs the plan over synthetic data.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Comparison,
    Optimizer,
    QueryPlan,
    Schema,
    Selection,
    SlidingWindowAggregate,
    StreamEngine,
    StreamSource,
    StreamTuple,
    TimeWindow,
    attr,
    lit,
)

SENSORS = Schema.of_ints("sensor_id", "temperature")


def build_plan() -> tuple[QueryPlan, object]:
    """Three queries: two alert filters and two per-sensor averages."""
    plan = QueryPlan()
    readings = plan.add_source("readings", SENSORS)

    # q1 / q2: alert when specific sensors report (equality predicates —
    # the sσ rule merges them into one hash-indexed m-op).
    for query_id, sensor in (("q1", 3), ("q2", 7)):
        alert = plan.add_operator(
            Selection(Comparison(attr("sensor_id"), "==", lit(sensor))),
            [readings],
            query_id=query_id,
        )
        plan.mark_output(alert, query_id)

    # q3 / q4: 10-tick average temperature for the same two sensors.  The
    # selections share the index; the identical aggregates downstream are
    # merged over a channel by the cα rule (shared fragment aggregation).
    for query_id, sensor in (("q3", 3), ("q4", 7)):
        only = plan.add_operator(
            Selection(Comparison(attr("sensor_id"), "==", lit(sensor))),
            [readings],
            query_id=query_id,
        )
        smoothed = plan.add_operator(
            SlidingWindowAggregate(
                "avg",
                "temperature",
                TimeWindow(10),
                group_by=("sensor_id",),
                output_name="avg_temperature",
            ),
            [only],
            query_id=query_id,
        )
        plan.mark_output(smoothed, query_id)

    return plan, readings


def main() -> None:
    plan, readings = build_plan()
    print("== naive plan ==")
    print(plan.describe())

    report = Optimizer().optimize(plan)
    print(f"\n== after optimization ({report}) ==")
    print(plan.describe())

    tuples = [
        StreamTuple(SENSORS, (ts % 10, 20 + (ts * 7) % 15), ts) for ts in range(200)
    ]
    engine = StreamEngine(plan, capture_outputs=True)
    stats = engine.run([StreamSource(plan.channel_of(readings), tuples)])

    print(f"\n== run ==\n{stats}")
    for query_id in ("q1", "q2", "q3", "q4"):
        outputs = engine.captured.get(query_id, [])
        preview = ", ".join(str(t.as_dict()) for t in outputs[:2])
        print(f"{query_id}: {len(outputs)} outputs (first: {preview})")


if __name__ == "__main__":
    main()
