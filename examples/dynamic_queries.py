"""Dynamic queries: register and unregister mid-stream, no rebuild.

The online lifecycle runtime serves a changing query population over a live
stream: registration grafts the new query into the shared plan and runs a
*scoped* rule fixpoint (only the new m-ops and their merge frontier);
unregistration drops the query's sinks and garbage-collects whatever no other
query needs.  Executors untouched by the rewrite are reused, so window state
survives every change.

Run with::

    python examples/dynamic_queries.py
"""

from repro import QueryRuntime, Schema, StreamTuple

SENSORS = Schema.of_ints("sensor_id", "temperature")


def feed(runtime, start, count):
    """Push ``count`` synthetic sensor readings starting at timestamp ``start``."""
    for ts in range(start, start + count):
        runtime.process(
            "readings", StreamTuple(SENSORS, (ts % 5, 20 + (ts * 7) % 15), ts)
        )
    return start + count


def main() -> None:
    runtime = QueryRuntime({"readings": SENSORS}, capture_outputs=True)

    # Two queries up front: an alert filter and a smoothed average.
    runtime.register("FROM readings WHERE sensor_id == 3", query_id="alerts3")
    runtime.register(
        "FROM readings AGG avg(temperature) OVER 10 BY sensor_id AS avg_temp",
        query_id="smooth",
    )
    print("== initial plan (2 queries) ==")
    print(runtime.describe())

    clock = feed(runtime, 0, 100)
    print(f"\nafter 100 events: state={runtime.state_size} "
          f"(the aggregate's window contents)")

    # Register mid-stream: the new filter merges into the existing selection's
    # predicate-index m-op; the aggregate executor — and its window state —
    # is untouched.
    report = runtime.register(
        "FROM readings WHERE sensor_id == 4", query_id="alerts4"
    )
    print(f"\n== after registering alerts4 mid-stream ==")
    print(f"incremental optimization: {report}")
    print(runtime.describe())
    migration = runtime.migration_log[-1]
    print(f"migration: {migration}")

    clock = feed(runtime, clock, 100)

    # Unregister: the smoothing query departs, its aggregate m-op becomes
    # unreachable and is garbage-collected; its window state is freed.
    removed = runtime.unregister("smooth")
    print(f"\n== after unregistering smooth ==")
    print(f"garbage-collected m-ops: {[mop.describe() for mop in removed]}")
    print(runtime.describe())
    print(f"state after GC: {runtime.state_size} (window state freed)")

    feed(runtime, clock, 100)
    print(f"\n== totals ==\n{runtime.stats}")
    for query_id, count in sorted(runtime.stats.outputs_by_query.items()):
        print(f"  {query_id}: {count} outputs")


if __name__ == "__main__":
    main()
