"""Figure 10(b): Workload 2 (µ), normalized throughput vs number of queries."""

from _common import run_series

from repro.bench.figures import fig10b
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload2,
    WorkloadParameters,
    sources_from_events,
)


def test_fig10b_point_rumor(benchmark):
    """Representative point: RUMOR plan, 100 µ queries."""
    workload = Workload2(WorkloadParameters(num_queries=100), variant="mu")
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10b_point_cayuga(benchmark):
    """Representative point: Cayuga automata, 100 µ queries."""
    workload = Workload2(WorkloadParameters(num_queries=100), variant="mu")
    events = workload.events(1500)
    engine = workload.automaton_engine()
    engine.freeze()

    def run():
        engine.reset()
        return engine.run(iter(events))

    stats = benchmark(run)
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10b_series(benchmark):
    """Regenerate the full Figure 10(b) sweep (reduced scale)."""
    run_series(benchmark, fig10b)
