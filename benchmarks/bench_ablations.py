"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each benchmark switches one sharing mechanism off and measures the same
workload, quantifying the contribution of:

- the Cayuga FR/AN/AI indexes (automaton engine flags),
- prefix state merging (automaton engine flag),
- common subexpression elimination (plan rule),
- the AN-index dispatch m-op (plan rule),
- the shared-window sequence m-op (plan rule).
"""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.registry import default_rules
from repro.core.rules import CseRule, IndexedSequenceRule, SharedWindowSequenceRule
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload1,
    Workload2,
    WorkloadParameters,
    sources_from_events,
)

QUERIES = 150
EVENTS = 1500


def _build_unoptimized_w1(workload):
    """Workload 1 plan without running the optimizer."""
    from repro.core.plan import QueryPlan
    from repro.operators.expressions import attr, lit
    from repro.operators.predicates import Comparison
    from repro.operators.select import Selection
    from repro.operators.sequence import Sequence

    plan = QueryPlan()
    s = plan.add_source("S", workload.schema)
    t = plan.add_source("T", workload.schema)
    for index in range(workload.params.num_queries):
        query_id = f"q{index}"
        selected = plan.add_operator(
            Selection(
                Comparison(attr("a0"), "==", lit(workload.theta1_constants[index]))
            ),
            [s],
            query_id=query_id,
        )
        matched = plan.add_operator(
            Sequence(workload._sequence_predicate(index)),
            [selected, t],
            query_id=query_id,
        )
        plan.mark_output(matched, query_id)
    return plan, {"S": s, "T": t}


def _measure_w1_with_rules(benchmark, rules):
    workload = Workload1(WorkloadParameters(num_queries=QUERIES))
    events = workload.events(EVENTS)
    plan, name_map = _build_unoptimized_w1(workload)
    Optimizer(rules).optimize(plan)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)
    benchmark.extra_info["mops"] = len(plan.mops)


def test_ablation_plan_full_rules(benchmark):
    """Baseline: the complete default rule set."""
    _measure_w1_with_rules(benchmark, default_rules())


def test_ablation_plan_no_cse(benchmark):
    """CSE off: duplicate queries evaluated separately."""
    rules = [r for r in default_rules() if not isinstance(r, CseRule)]
    _measure_w1_with_rules(benchmark, rules)


def test_ablation_plan_no_an_dispatch(benchmark):
    """AN-index dispatch off: every ; m-op sees every T event."""
    rules = [
        r for r in default_rules() if not isinstance(r, IndexedSequenceRule)
    ]
    _measure_w1_with_rules(benchmark, rules)


def test_ablation_plan_no_rules(benchmark):
    """Everything off: the naive multi-query plan."""
    _measure_w1_with_rules(benchmark, [])


def _measure_cayuga(benchmark, **flags):
    workload = Workload1(WorkloadParameters(num_queries=QUERIES))
    events = workload.events(EVENTS)
    engine = workload.automaton_engine(**flags)
    engine.freeze()

    def run():
        engine.reset()
        return engine.run(iter(events))

    stats = benchmark(run)
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)
    benchmark.extra_info["states"] = engine.state_count


def test_ablation_cayuga_all_indexes(benchmark):
    """Baseline: FR + AN + AI indexes and prefix merging."""
    _measure_cayuga(benchmark)


def test_ablation_cayuga_no_fr_index(benchmark):
    _measure_cayuga(benchmark, use_fr_index=False)


def test_ablation_cayuga_no_an_index(benchmark):
    _measure_cayuga(benchmark, use_an_index=False)


def test_ablation_cayuga_no_merging(benchmark):
    _measure_cayuga(benchmark, merge_prefixes=False)


def test_ablation_shared_window_mu(benchmark):
    """µ workload with the shared-window rule (one store for all windows)."""
    workload = Workload2(WorkloadParameters(num_queries=QUERIES), variant="mu")
    events = workload.events(EVENTS)
    plan, name_map = workload.rumor_plan()
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)
    benchmark.extra_info["mops"] = len(plan.mops)


def test_ablation_no_shared_window_mu(benchmark):
    """µ workload without the shared-window rule (a store per window)."""
    from repro.core.plan import QueryPlan

    workload = Workload2(WorkloadParameters(num_queries=QUERIES), variant="mu")
    events = workload.events(EVENTS)
    plan = QueryPlan()
    s = plan.add_source("S", workload.schema)
    t = plan.add_source("T", workload.schema)
    for index in range(QUERIES):
        query_id = f"q{index}"
        out = plan.add_operator(
            workload._operator(index), [s, t], query_id=query_id
        )
        plan.mark_output(out, query_id)
    rules = [
        r for r in default_rules() if not isinstance(r, SharedWindowSequenceRule)
    ]
    Optimizer(rules).optimize(plan)
    stats = benchmark(
        lambda: StreamEngine(plan).run(
            sources_from_events(plan, {"S": s, "T": t}, events)
        )
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)
    benchmark.extra_info["mops"] = len(plan.mops)
