"""Throughput benchmark: batched vs per-tuple dispatch, naive vs optimized.

Thin entry point over :mod:`repro.bench.throughput` (importable because the
driver also backs the ``repro.cli bench-throughput`` subcommand).  Each cell
measures events/sec and re-checks that batched dispatch produces identical
per-query output counts to the per-tuple reference interpreter; the run
fails if the optimized zipf workload's batched speedup drops below the
scale's floor (3x at full scale).

Run standalone (writes ``BENCH_throughput.json``)::

    PYTHONPATH=src python benchmarks/bench_throughput.py
    PYTHONPATH=src python benchmarks/bench_throughput.py --scale smoke

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_throughput.py -q -s
"""

from __future__ import annotations

from repro.bench.throughput import (
    ThroughputScale,
    bench_zipf,
    main,
    render,
    run_benchmark,
)

# -- pytest entry points ------------------------------------------------------------


def test_throughput_smoke():
    """Acceptance: batched ≥ smoke floor on optimized zipf, outputs equal."""
    results = run_benchmark(ThroughputScale.smoke())
    assert (
        results["headline"]["optimized_zipf_batched_speedup"]
        >= results["headline"]["target"]
    )


def test_throughput_point_benchmark(benchmark):
    """pytest-benchmark timing of the zipf sweep at smoke scale."""
    scale = ThroughputScale.smoke()
    result = benchmark.pedantic(
        lambda: bench_zipf(scale), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["batched_speedup"] = result["plans"]["optimized"][
        "batched_speedup"
    ]


if __name__ == "__main__":
    raise SystemExit(main())
