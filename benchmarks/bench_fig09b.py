"""Figure 9(b): Workload 1, normalized throughput vs constant domain size."""

from _common import run_series

from repro.bench.figures import fig9b
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload1,
    WorkloadParameters,
    sources_from_events,
)


def test_fig09b_point_selective(benchmark):
    """Representative point: large constant domain (selective predicates)."""
    workload = Workload1(
        WorkloadParameters(num_queries=200, constant_domain=100_000)
    )
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09b_point_unselective(benchmark):
    """Representative point: small constant domain (heavy matching)."""
    workload = Workload1(WorkloadParameters(num_queries=200, constant_domain=10))
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09b_series(benchmark):
    """Regenerate the full Figure 9(b) sweep (reduced scale)."""
    run_series(benchmark, fig9b)
