"""Shared helpers for the per-figure benchmark files.

Each ``bench_figXX.py`` contains two benchmarks:

- a *point* benchmark — pytest-benchmark timing of one representative
  configuration of the figure (stable, repeatable, small), and
- a *series* benchmark — one pass over the figure's full sweep at reduced
  scale, recording the regenerated table in ``extra_info`` and printing it
  (visible with ``pytest -s`` or in the benchmark JSON).

Full-scale reproduction lives in ``python -m repro.bench.figures <fig> --full``.
"""

from __future__ import annotations

from repro.bench.harness import BenchScale


def bench_scale() -> BenchScale:
    """Reduced scale used inside pytest-benchmark runs."""
    return BenchScale(
        name="bench", events=1500, rounds=150, hybrid_seconds=45, repeats=1
    )


def run_series(benchmark, driver) -> None:
    """Run a figure driver once under pytest-benchmark and record the table."""
    result = benchmark.pedantic(
        lambda: driver(bench_scale()), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["figure"] = result.figure
    benchmark.extra_info["table"] = result.render()
    print()
    print(result.render())
