"""Sharded engine benchmark: aggregate throughput vs the single batched engine.

Thin entry point over :mod:`repro.bench.shard` (importable because the
driver also backs the ``repro.cli bench-shard`` subcommand).  The
partitionable zipf workload (k independent sources, one query set each)
is measured on the single-engine batched baseline and on the sharded
engine at 1/2/4 shards; each cell re-checks per-query output equality.
The run fails if 4-shard aggregate throughput drops below the scale's
floor (2x at full scale) over the single-engine batched baseline.

Exit criteria (what a red run means):

- non-zero exit + ``AssertionError: ... sharded outputs diverged ...`` —
  a correctness regression: sharded and single-engine outputs must be
  identical on every workload, no tolerance;
- non-zero exit + ``AssertionError: 4-shard aggregate throughput ...`` —
  a performance regression below the floor (the measured and required
  multiples are printed in the message).

Run standalone (writes ``BENCH_shard.json``)::

    PYTHONPATH=src python benchmarks/bench_shard.py
    PYTHONPATH=src python benchmarks/bench_shard.py --scale smoke

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_shard.py -q -s
"""

from __future__ import annotations

from repro.bench.shard import (
    ShardScale,
    bench_partitionable_zipf,
    main,
    render,
    run_benchmark,
)

# -- pytest entry points ------------------------------------------------------------


def test_shard_smoke():
    """Acceptance: 4-shard ≥ smoke floor on partitionable zipf, outputs equal."""
    results = run_benchmark(ShardScale.smoke())
    assert (
        results["headline"]["sharded_4x_speedup"]
        >= results["headline"]["target"]
    )


def test_shard_point_benchmark(benchmark):
    """pytest-benchmark timing of the partitionable zipf sweep, smoke scale."""
    scale = ShardScale.smoke()
    result = benchmark.pedantic(
        lambda: bench_partitionable_zipf(scale),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["sharded_4x_speedup"] = result["cells"]["sharded_4"][
        "speedup_vs_single_batched"
    ]


if __name__ == "__main__":
    raise SystemExit(main())
