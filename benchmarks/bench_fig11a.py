"""Figure 11(a): hybrid workload on D1, throughput vs number of queries."""

from _common import run_series

from repro.bench.figures import fig11a
from repro.engine.executor import StreamEngine
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import HybridWorkload


def _measure(channels: bool, benchmark):
    dataset = PerfmonDataset(processes=104, duration_seconds=120, seed=1)
    workload = HybridWorkload(dataset, num_queries=10, sel=0.5)
    plan, name_map = workload.rumor_plan(channels=channels)
    stats = benchmark(
        lambda: StreamEngine(plan).run(workload.sources(plan, name_map, 45))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig11a_point_with_channel(benchmark):
    """Representative point: 10 hybrid queries, channel plan (Fig 6(c))."""
    _measure(True, benchmark)


def test_fig11a_point_without_channel(benchmark):
    """Representative point: 10 hybrid queries, plain plan (Fig 6(b))."""
    _measure(False, benchmark)


def test_fig11a_series(benchmark):
    """Regenerate the full Figure 11(a) sweep (reduced scale)."""
    run_series(benchmark, fig11a)
