"""Figure 10(d): Workload 3, channel vs no-channel vs channel capacity."""

from _common import run_series

from repro.bench.figures import fig10d
from repro.engine.executor import StreamEngine
from repro.workloads.templates import Workload3, WorkloadParameters


def _measure(capacity: int, channels: bool, benchmark):
    workload = Workload3(WorkloadParameters(num_queries=200), capacity=capacity)
    rounds = workload.rounds(150)
    plan, name_map = workload.rumor_plan(channels=channels)
    stats = benchmark(
        lambda: StreamEngine(plan).run(workload.sources(plan, name_map, rounds))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10d_point_capacity25_with_channel(benchmark):
    """Representative point: capacity 25, channel plan."""
    _measure(25, True, benchmark)


def test_fig10d_point_capacity25_without_channel(benchmark):
    """Representative point: capacity 25, plain plan."""
    _measure(25, False, benchmark)


def test_fig10d_series(benchmark):
    """Regenerate the full Figure 10(d) sweep (reduced scale)."""
    run_series(benchmark, fig10d)
