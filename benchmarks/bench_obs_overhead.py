"""Telemetry overhead benchmark: observed vs unobserved dispatch.

Thin entry point over :mod:`repro.bench.obs` (importable because the driver
also backs the ``repro.cli bench-obs`` subcommand).  Interleaved trials
measure the throughput cost of per-m-op telemetry on the optimized zipf
workload; the run fails if batched-dispatch overhead exceeds the scale's
ceiling (5% at full scale), if observation changes any per-query output, or
if the per-m-op tuple accounting stops reconciling with the engine's
physical counters.

Run standalone (writes ``BENCH_obs.json``)::

    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
    PYTHONPATH=src python benchmarks/bench_obs_overhead.py --scale smoke

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py -q -s
"""

from __future__ import annotations

from repro.bench.obs import ObsScale, main, render, run_benchmark

# -- pytest entry points ------------------------------------------------------------


def test_obs_overhead_smoke():
    """Acceptance: batched telemetry overhead within the smoke ceiling."""
    results = run_benchmark(ObsScale.smoke())
    assert (
        results["headline"]["batched_overhead"]
        <= results["headline"]["ceiling"]
    )


if __name__ == "__main__":
    raise SystemExit(main())
