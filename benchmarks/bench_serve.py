"""Live serving benchmark: sustained ingest and command overlap.

Thin entry point over :mod:`repro.bench.serve` (importable because the
driver also backs the ``repro.cli bench-serve`` subcommand).  The ``live``
cell pushes a zipf loadgen schedule through the full socket stack and
measures sustained events/sec plus p50/p99 ship latency, requiring the
outputs to be byte-identical to an offline replay of the recorded
arrivals; the ``overlap`` cell measures coordinator blocking time on
lifecycle commands with the pipelined fan against the serial fan on a
multi-worker fleet, requiring identical outputs and a reduction above
the scale's floor.

Run standalone (writes ``BENCH_serve.json``)::

    PYTHONPATH=src python benchmarks/bench_serve.py
    PYTHONPATH=src python benchmarks/bench_serve.py --scale smoke

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q -s
"""

from __future__ import annotations

from repro.bench.serve import ServeScale, main, render, run_benchmark

# -- pytest entry points ------------------------------------------------------------


def test_serve_smoke():
    """Acceptance: replay-identical serve, ingest and overlap floors met."""
    results = run_benchmark(ServeScale.smoke())
    headline = results["headline"]
    assert headline["replay_identical"]
    assert headline["live_events_per_sec"] >= headline["live_eps_floor"]
    assert headline["overlap_speedup"] >= headline["overlap_floor"]


if __name__ == "__main__":
    raise SystemExit(main())
