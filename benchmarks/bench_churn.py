"""Churn benchmark: incremental re-optimization + state-preserving migration
vs. stop-the-world full rebuild, across churn rates.

For each churn rate the same Poisson register/unregister schedule (≥16
distinct queries) and the same stream events are served twice:

- **incremental** — ``QueryRuntime`` default: scoped rule fixpoint over the
  dirty m-ops + merge frontier, engine migration reusing live executors;
- **full rebuild** — every lifecycle change re-runs the full fixpoint over
  the whole plan and rebuilds every executor (discarding operator state).

Reported per mode: wall-clock for the whole serve, m-ops considered by
re-optimization (the quantity incremental MQO bounds), executors
built/reused, and migration overhead.

Exit criteria — the script exits non-zero, printing ``FAIL:`` and the
violated criterion, when either structural assertion breaks (both are
deterministic counter comparisons, no timing tolerance involved, so a red
CI run always means a real behaviour change, never noise):

1. every churn rate registers at least 16 distinct queries over its
   lifetime (otherwise the workload is too small to exercise churn and the
   comparison below is vacuous);
2. incremental re-optimization considers *strictly fewer* m-ops than the
   full-rebuild fixpoint at every churn rate — the scoping guarantee
   incremental MQO exists to provide.

Wall-clock columns are informational only and never gate the run; the
timing gate for CI lives in ``benchmarks/compare_bench.py``.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_churn.py

or under pytest-benchmark::

    PYTHONPATH=src python -m pytest benchmarks/bench_churn.py -q -s
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.runtime.config import open_runtime
from repro.workloads.churn import ChurnWorkload, drive

#: (name, arrival rate per ts, mean lifetime in ts) — low to high churn.
CHURN_RATES = [
    ("low", 0.005, 1200.0),
    ("medium", 0.02, 600.0),
    ("high", 0.05, 300.0),
]

EVENTS = 3000
INITIAL_QUERIES = 6
SEED = 7


@dataclass
class ChurnResult:
    mode: str
    rate_name: str
    registrations: int
    lifecycle_events: int
    elapsed_seconds: float
    mops_considered: int
    optimizer_sweeps: int
    executors_built: int
    executors_reused: int
    migration_seconds: float
    outputs: int

    def row(self) -> str:
        return (
            f"{self.rate_name:<8} {self.mode:<12} {self.registrations:>7} "
            f"{self.lifecycle_events:>6} {self.mops_considered:>6} "
            f"{self.executors_built:>6} {self.executors_reused:>7} "
            f"{self.migration_seconds * 1e3:>9.1f} {self.elapsed_seconds:>8.3f} "
            f"{self.outputs:>8}"
        )


HEADER = (
    f"{'rate':<8} {'mode':<12} {'queries':>7} {'events':>6} {'m-ops':>6} "
    f"{'built':>6} {'reused':>7} {'migr ms':>9} {'total s':>8} {'outputs':>8}"
)


def _workload(rate_name: str) -> ChurnWorkload:
    __, arrival_rate, mean_lifetime = next(
        entry for entry in CHURN_RATES if entry[0] == rate_name
    )
    return ChurnWorkload(
        arrival_rate=arrival_rate,
        mean_lifetime=mean_lifetime,
        horizon=EVENTS,
        initial_queries=INITIAL_QUERIES,
        seed=SEED,
    )


def serve(rate_name: str, incremental: bool) -> ChurnResult:
    workload = _workload(rate_name)
    runtime = open_runtime(
        sources={"S": workload.schema, "T": workload.schema},
        incremental=incremental,
    )
    started = time.perf_counter()
    applied = sum(
        1 for __ in drive(runtime, workload.stream_events(), workload.schedule())
    )
    elapsed = time.perf_counter() - started
    return ChurnResult(
        mode="incremental" if incremental else "full-rebuild",
        rate_name=rate_name,
        registrations=workload.registrations(),
        lifecycle_events=applied,
        elapsed_seconds=elapsed,
        mops_considered=sum(r.mops_considered for r in runtime.reports),
        optimizer_sweeps=sum(r.sweeps for r in runtime.reports),
        executors_built=sum(m.built_executors for m in runtime.migration_log),
        executors_reused=sum(m.reused_executors for m in runtime.migration_log),
        migration_seconds=sum(m.elapsed_seconds for m in runtime.migration_log),
        outputs=runtime.stats.output_events,
    )


def run_comparison() -> list[tuple[ChurnResult, ChurnResult]]:
    pairs = []
    for rate_name, __, __life in CHURN_RATES:
        incremental = serve(rate_name, incremental=True)
        full = serve(rate_name, incremental=False)
        assert incremental.registrations >= 16, (
            "churn workload must register at least 16 queries, got "
            f"{incremental.registrations}"
        )
        assert incremental.mops_considered < full.mops_considered, (
            f"incremental re-optimization must touch strictly fewer m-ops "
            f"({incremental.mops_considered} vs {full.mops_considered})"
        )
        pairs.append((incremental, full))
    return pairs


def main() -> int:
    import sys

    print(HEADER)
    try:
        for incremental, full in run_comparison():
            print(incremental.row())
            print(full.row())
            ratio = full.mops_considered / max(incremental.mops_considered, 1)
            print(
                f"  -> incremental touches {ratio:.1f}x fewer m-ops and reuses "
                f"{incremental.executors_reused} executors "
                f"({full.rate_name} churn)"
            )
    except AssertionError as error:
        print(
            f"FAIL: churn benchmark exit criterion violated: {error}",
            file=sys.stderr,
        )
        return 1
    print(
        "PASS: ≥16 queries registered and incremental < full on m-ops "
        "considered, at every churn rate"
    )
    return 0


# -- pytest entry points ------------------------------------------------------------


def test_incremental_touches_fewer_mops():
    """Acceptance: incremental < full on m-ops considered, ≥16 queries."""
    run_comparison()


def test_churn_point_benchmark(benchmark):
    """pytest-benchmark timing of one medium-churn incremental serve."""
    result = benchmark.pedantic(
        lambda: serve("medium", incremental=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    benchmark.extra_info["mops_considered"] = result.mops_considered
    benchmark.extra_info["executors_reused"] = result.executors_reused


if __name__ == "__main__":
    raise SystemExit(main())
