"""Figure 9(a): Workload 1, normalized throughput vs number of queries."""

from _common import bench_scale, run_series

from repro.bench.figures import fig9a
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload1,
    WorkloadParameters,
    sources_from_events,
)


def test_fig09a_point_rumor(benchmark):
    """Representative point: RUMOR plan, 100 queries."""
    workload = Workload1(WorkloadParameters(num_queries=100))
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09a_point_cayuga(benchmark):
    """Representative point: Cayuga automata, 100 queries."""
    workload = Workload1(WorkloadParameters(num_queries=100))
    events = workload.events(1500)
    engine = workload.automaton_engine()
    engine.freeze()

    def run():
        engine.reset()
        return engine.run(iter(events))

    stats = benchmark(run)
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09a_series(benchmark):
    """Regenerate the full Figure 9(a) sweep (reduced scale)."""
    run_series(benchmark, fig9a)
