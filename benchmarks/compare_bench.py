"""CI perf-regression gate: compare a benchmark run against a baseline.

Wall-clock throughput is machine-dependent, so the gate compares the
machine-portable quantities: the *speedup ratios* inside one run (batched
vs per-tuple, sharded vs single-engine).  A current run passes when every
gated ratio stays at or above ``--min-ratio`` (default 0.8) times the
committed baseline's ratio.

Gated metrics (missing from either file → hard failure, so a silently
renamed cell cannot green-wash the gate):

- ``BENCH_throughput*.json``: the headline
  ``optimized_zipf_batched_speedup`` plus every per-workload
  ``batched_speedup`` cell;
- ``BENCH_shard*.json``: the headline ``sharded_4x_speedup`` plus every
  ``speedup_vs_single_batched`` cell.

Exit status is 0 on pass, 1 on any regression or malformed input; every
verdict is printed, regressions with the measured and required values —
a red CI job is diagnosable from the log alone.

Run locally::

    PYTHONPATH=src python benchmarks/bench_throughput.py --scale smoke \
        --output BENCH_throughput.smoke.json
    python benchmarks/compare_bench.py BENCH_throughput.smoke.baseline.json \
        BENCH_throughput.smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator


def iter_speedups(results: dict) -> Iterator[tuple[str, float]]:
    """Yield (metric path, speedup) for every gated ratio in a results dict."""
    headline = results.get("headline", {})
    for key in ("optimized_zipf_batched_speedup", "sharded_4x_speedup"):
        if key in headline:
            yield f"headline.{key}", float(headline[key])
    for workload, data in results.get("workloads", {}).items():
        for plan_name, cells in data.get("plans", {}).items():
            if "batched_speedup" in cells:
                yield (
                    f"{workload}.{plan_name}.batched_speedup",
                    float(cells["batched_speedup"]),
                )
        modes = data.get("modes", {})
        if "batched_speedup" in modes:
            yield f"{workload}.batched_speedup", float(modes["batched_speedup"])
        for cell_name, cell in data.get("cells", {}).items():
            if isinstance(cell, dict) and "speedup_vs_single_batched" in cell:
                yield (
                    f"{workload}.{cell_name}.speedup_vs_single_batched",
                    float(cell["speedup_vs_single_batched"]),
                )


def compare(baseline: dict, current: dict, min_ratio: float) -> list[str]:
    """Return a list of human-readable failure reasons (empty on pass)."""
    failures: list[str] = []
    baseline_speedups = dict(iter_speedups(baseline))
    current_speedups = dict(iter_speedups(current))
    if not baseline_speedups:
        return ["baseline file contains no gated speedup metrics"]
    for metric, reference in sorted(baseline_speedups.items()):
        measured = current_speedups.get(metric)
        if measured is None:
            failures.append(
                f"{metric}: present in baseline ({reference}x) but missing "
                f"from the current run — cells must not silently disappear"
            )
            continue
        floor = reference * min_ratio
        verdict = "ok" if measured >= floor else "REGRESSION"
        print(
            f"  {metric}: current {measured:.2f}x vs baseline "
            f"{reference:.2f}x (floor {floor:.2f}x) ... {verdict}"
        )
        if measured < floor:
            failures.append(
                f"{metric}: measured {measured:.2f}x, required ≥ {floor:.2f}x "
                f"({min_ratio:.2f} x baseline {reference:.2f}x)"
            )
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="fail when benchmark speedups regress below a baseline"
    )
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("current", help="freshly measured JSON")
    parser.add_argument(
        "--min-ratio",
        type=float,
        default=0.8,
        help="required fraction of each baseline speedup (default 0.8)",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.baseline) as handle:
            baseline = json.load(handle)
        with open(args.current) as handle:
            current = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        print(f"FAIL: cannot load benchmark files: {error}", file=sys.stderr)
        return 1
    print(
        f"comparing {args.current} against {args.baseline} "
        f"(min ratio {args.min_ratio})"
    )
    failures = compare(baseline, current, args.min_ratio)
    if failures:
        print(
            "FAIL: performance regression gate:\n  - "
            + "\n  - ".join(failures),
            file=sys.stderr,
        )
        return 1
    print("PASS: all gated speedups within tolerance of baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
