"""Figure 9(c): Workload 1, normalized throughput vs window length domain."""

from _common import run_series

from repro.bench.figures import fig9c
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload1,
    WorkloadParameters,
    sources_from_events,
)


def test_fig09c_point_large_windows(benchmark):
    """Representative point: window domain 100 000 (paper's heaviest)."""
    workload = Workload1(
        WorkloadParameters(num_queries=200, window_domain=100_000)
    )
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09c_series(benchmark):
    """Regenerate the full Figure 9(c) sweep (reduced scale)."""
    run_series(benchmark, fig9c)
