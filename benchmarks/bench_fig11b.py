"""Figure 11(b): hybrid workload on D1, throughput vs starting selectivity."""

from _common import run_series

from repro.bench.figures import fig11b
from repro.engine.executor import StreamEngine
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import HybridWorkload


def _measure(sel: float, channels: bool, benchmark):
    dataset = PerfmonDataset(processes=104, duration_seconds=120, seed=1)
    workload = HybridWorkload(dataset, num_queries=10, sel=sel)
    plan, name_map = workload.rumor_plan(channels=channels)
    stats = benchmark(
        lambda: StreamEngine(plan).run(workload.sources(plan, name_map, 45))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig11b_point_sel08_with_channel(benchmark):
    """Representative point: sel 0.8, channel plan (flat regime)."""
    _measure(0.8, True, benchmark)


def test_fig11b_point_sel08_without_channel(benchmark):
    """Representative point: sel 0.8, plain plan (degraded regime)."""
    _measure(0.8, False, benchmark)


def test_fig11b_series(benchmark):
    """Regenerate the full Figure 11(b) sweep (reduced scale)."""
    run_series(benchmark, fig11b)
