"""Figure 10(c): Workload 3, channel vs no-channel vs number of queries."""

from _common import run_series

from repro.bench.figures import fig10c
from repro.engine.executor import StreamEngine
from repro.workloads.templates import Workload3, WorkloadParameters


def _measure(channels: bool, benchmark):
    workload = Workload3(WorkloadParameters(num_queries=200), capacity=10)
    rounds = workload.rounds(150)
    plan, name_map = workload.rumor_plan(channels=channels)
    stats = benchmark(
        lambda: StreamEngine(plan).run(workload.sources(plan, name_map, rounds))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10c_point_with_channel(benchmark):
    """Representative point: 200 queries over a capacity-10 channel."""
    _measure(True, benchmark)


def test_fig10c_point_without_channel(benchmark):
    """Representative point: 200 queries without channel encoding."""
    _measure(False, benchmark)


def test_fig10c_series(benchmark):
    """Regenerate the full Figure 10(c) sweep (reduced scale)."""
    run_series(benchmark, fig10c)
