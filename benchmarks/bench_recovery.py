"""Crash-recovery benchmark: checkpoint restore vs write-ahead-log replay.

Thin entry point over :mod:`repro.bench.recovery`.  The same churn
schedule with the same deterministic mid-stream worker crash is served
under three recovery policies — blank re-registration (the non-durable
baseline), durable replay-from-start, and restore-from-checkpoint at two
intervals — measuring recovery time and replay volume.

Exit criteria (what a red run means):

- ``FAIL: ... diverged ...`` — a correctness regression: every durable
  recovery must be byte-identical to a fault-free serve, no tolerance;
- ``FAIL: ... not strictly fewer ...`` — the checkpoint subsystem stopped
  bounding the replay window (the ISSUE 5 acceptance criterion:
  restore-from-checkpoint must replay strictly fewer tuples than
  replay-from-start on the same crash schedule).

Run standalone (writes ``BENCH_recovery.json``)::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --scale smoke

or under pytest::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q -s
"""

from __future__ import annotations

import pytest

from repro.bench.recovery import (
    RecoveryScale,
    main,
    render,
    run_benchmark,
    serve_with_crash,
)
from repro.shard import fork_available

# -- pytest entry points ------------------------------------------------------------


@pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)
def test_recovery_smoke():
    """Acceptance: checkpointed recovery replays strictly fewer tuples than
    replay-from-start, byte-identically, at smoke scale."""
    results = run_benchmark(RecoveryScale.smoke())
    headline = results["headline"]
    assert headline["best_checkpoint_tuples"] < headline["replay_from_start_tuples"]
    for cell in results["cells"].values():
        if cell["durable"]:
            assert cell["byte_identical"]


if __name__ == "__main__":
    raise SystemExit(main())
