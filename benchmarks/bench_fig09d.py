"""Figure 9(d): Workload 1, normalized throughput vs Zipf parameter."""

from _common import run_series

from repro.bench.figures import fig9d
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload1,
    WorkloadParameters,
    sources_from_events,
)


def test_fig09d_point_high_commonality(benchmark):
    """Representative point: Zipf 2.0 (max commonality, most CSE)."""
    workload = Workload1(WorkloadParameters(num_queries=200, zipf=2.0))
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig09d_series(benchmark):
    """Regenerate the full Figure 9(d) sweep (reduced scale)."""
    run_series(benchmark, fig9d)
