"""Figure 10(a): Workload 2 (;), normalized throughput vs number of queries."""

from _common import run_series

from repro.bench.figures import fig10a
from repro.engine.executor import StreamEngine
from repro.workloads.templates import (
    Workload2,
    WorkloadParameters,
    sources_from_events,
)


def test_fig10a_point_rumor(benchmark):
    """Representative point: RUMOR plan, 100 AI-indexed sequence queries."""
    workload = Workload2(WorkloadParameters(num_queries=100), variant="seq")
    plan, name_map = workload.rumor_plan()
    events = workload.events(1500)
    stats = benchmark(
        lambda: StreamEngine(plan).run(sources_from_events(plan, name_map, events))
    )
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10a_point_cayuga(benchmark):
    """Representative point: Cayuga automata, 100 sequence queries."""
    workload = Workload2(WorkloadParameters(num_queries=100), variant="seq")
    events = workload.events(1500)
    engine = workload.automaton_engine()
    engine.freeze()

    def run():
        engine.reset()
        return engine.run(iter(events))

    stats = benchmark(run)
    benchmark.extra_info["throughput_ev_s"] = round(stats.throughput)


def test_fig10a_series(benchmark):
    """Regenerate the full Figure 10(a) sweep (reduced scale)."""
    run_series(benchmark, fig10a)
