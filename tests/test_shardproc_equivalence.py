"""Property: process-mode serving is byte-identical to in-process serving.

The acceptance contract of the process-mode runtime: over random churn
schedules — queries arriving and departing mid-stream, with at least one
**cross-process rebalance** moving live operator state between worker
processes — the per-query captured outputs (content, timestamps *and*
order) and aggregate counters of :class:`ProcessShardedRuntime` match the
in-process :class:`ShardedRuntime` exactly.

Both runtimes are driven by the same deterministic helper
(:func:`strategies.serve_churn_with_rebalance`), whose rebalance decision
depends only on state both expose identically, so any divergence in the
comparison is a real protocol/serialization bug, not test skew.
"""

import pytest
from hypothesis import given, settings

from repro.shard import ProcessShardedRuntime, ShardedRuntime, fork_available
from repro.workloads.churn import ChurnWorkload, drive_sharded
from strategies import churn_workloads, serve_churn_with_rebalance

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)


def _runtimes(workload, n_shards):
    sources = {"S": workload.schema, "T": workload.schema}
    inproc = ShardedRuntime(sources, n_shards=n_shards, capture_outputs=True)
    proc = ProcessShardedRuntime(
        sources, n_shards=n_shards, capture_outputs=True
    )
    return inproc, proc


def _assert_identical(inproc: ShardedRuntime, proc: ProcessShardedRuntime):
    proc_stats = proc.collect_stats()
    assert inproc.stats.output_events > 0
    assert proc_stats.outputs_by_query == inproc.stats.outputs_by_query
    assert proc_stats.input_events == inproc.stats.input_events
    assert proc_stats.output_events == inproc.stats.output_events
    # Byte-identical captured outputs: same queries, same tuples (schema,
    # values, ts — StreamTuple equality is content-based), same order.
    assert proc.captured == inproc.captured
    assert sorted(proc.active_queries) == sorted(inproc.active_queries)
    assert proc.state_size == inproc.state_size


class TestChurnEquivalence:
    @given(workload=churn_workloads())
    @settings(max_examples=5, deadline=None)
    def test_random_churn_with_midstream_rebalance(self, workload):
        inproc, proc = _runtimes(workload, n_shards=2)
        try:
            applied_in, moved_in = serve_churn_with_rebalance(
                inproc, workload, rebalance_after=2
            )
            applied_proc, moved_proc = serve_churn_with_rebalance(
                proc, workload, rebalance_after=2
            )
            assert applied_in == applied_proc
            assert moved_in == moved_proc
            assert moved_in, "schedule must include a cross-process rebalance"
            assert proc.rebalances == 1
            _assert_identical(inproc, proc)
        finally:
            proc.close()

    def test_three_shards_continuous_levelling(self):
        """Deterministic heavier serve: continuous rebalance policy on both
        runtimes (same load signal → same moves), three workers."""
        workload = ChurnWorkload(
            arrival_rate=0.08,
            mean_lifetime=120.0,
            horizon=500,
            initial_queries=6,
            seed=7,
        )
        sources = {"S": workload.schema, "T": workload.schema}
        inproc = ShardedRuntime(sources, n_shards=3, capture_outputs=True)
        proc = ProcessShardedRuntime(sources, n_shards=3, capture_outputs=True)
        try:
            applied_in = sum(
                1
                for __ in drive_sharded(
                    inproc,
                    workload.stream_events(),
                    workload.schedule(),
                    rebalance_every=3,
                )
            )
            applied_proc = sum(
                1
                for __ in drive_sharded(
                    proc,
                    workload.stream_events(),
                    workload.schedule(),
                    rebalance_every=3,
                )
            )
            assert applied_in == applied_proc
            assert proc.rebalances == inproc.rebalances
            assert proc.rebalances >= 1, "serve must exercise rebalances"
            _assert_identical(inproc, proc)
        finally:
            proc.close()
