"""Tests for the §7 extensions: the cost model and the confluence checker."""

import pytest

from repro.core.confluence import check_confluence, plan_shape
from repro.core.cost import CostModel, SelectivityEstimator, cheapest_plan
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.operators.expressions import attr, left, lit, right
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    FalsePredicate,
    Not,
    Or,
    TruePredicate,
    conjunction,
)
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.streams.schema import Schema

SCHEMA = Schema.of_ints("a", "b")


class TestSelectivityEstimator:
    def test_equality(self):
        estimator = SelectivityEstimator(domain_size=100)
        assert estimator.selectivity(
            Comparison(attr("a"), "==", lit(1))
        ) == pytest.approx(0.01)

    def test_conjunction_independence(self):
        estimator = SelectivityEstimator(domain_size=10)
        predicate = conjunction(
            [
                Comparison(attr("a"), "==", lit(1)),
                Comparison(attr("b"), "==", lit(2)),
            ]
        )
        assert estimator.selectivity(predicate) == pytest.approx(0.01)

    def test_disjunction(self):
        estimator = SelectivityEstimator(domain_size=10)
        predicate = Or(
            (
                Comparison(attr("a"), "==", lit(1)),
                Comparison(attr("a"), "==", lit(2)),
            )
        )
        assert estimator.selectivity(predicate) == pytest.approx(0.19)

    def test_negation_and_constants(self):
        estimator = SelectivityEstimator()
        assert estimator.selectivity(TruePredicate()) == 1.0
        assert estimator.selectivity(FalsePredicate()) == 0.0
        assert estimator.selectivity(Not(TruePredicate())) == 0.0
        assert estimator.selectivity(DurationWithin(5)) == 1.0

    def test_bounds(self):
        estimator = SelectivityEstimator(domain_size=10)
        for predicate in [
            Comparison(attr("a"), "<", lit(5)),
            Comparison(attr("a"), "!=", lit(5)),
        ]:
            assert 0.0 <= estimator.selectivity(predicate) <= 1.0


def many_selections_plan(optimize_rules=None):
    plan = QueryPlan()
    source = plan.add_source("S", SCHEMA)
    for c in range(8):
        out = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(c))), [source],
            query_id=f"q{c}",
        )
        plan.mark_output(out, f"q{c}")
    if optimize_rules is not None:
        Optimizer(optimize_rules).optimize(plan)
    return plan


class TestCostModel:
    def test_optimized_plan_cheaper(self):
        model = CostModel()
        naive_cost = model.plan_cost(many_selections_plan())
        optimized_cost = model.plan_cost(many_selections_plan(default_rules()))
        assert optimized_cost < naive_cost

    def test_cost_scales_with_queries(self):
        model = CostModel()

        def plan_with(n):
            plan = QueryPlan()
            source = plan.add_source("S", SCHEMA)
            for c in range(n):
                plan.add_operator(
                    Selection(Comparison(attr("a"), ">", lit(c))), [source]
                )
            return plan

        assert model.plan_cost(plan_with(8)) > model.plan_cost(plan_with(2))

    def test_channel_plan_cheaper_for_shared_definitions(self):
        from repro.workloads.templates import Workload3, WorkloadParameters

        workload = Workload3(WorkloadParameters(num_queries=30), capacity=6)
        model = CostModel()
        channel_plan, __ = workload.rumor_plan(channels=True)
        plain_plan, __ = workload.rumor_plan(channels=False)
        assert model.plan_cost(channel_plan) < model.plan_cost(plain_plan)

    def test_compare_sign(self):
        model = CostModel()
        naive = many_selections_plan()
        optimized = many_selections_plan(default_rules())
        assert model.compare(optimized, naive) < 0
        assert model.compare(naive, optimized) > 0

    def test_cheapest_plan_selects_minimum(self):
        plan, cost, index = cheapest_plan(
            [
                lambda: many_selections_plan(),
                lambda: many_selections_plan(default_rules()),
            ]
        )
        assert index == 1
        assert cost > 0

    def test_cheapest_plan_empty_rejected(self):
        with pytest.raises(ValueError):
            cheapest_plan([])


class TestConfluence:
    def _event_plan(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        for c in range(4):
            selected = plan.add_operator(
                Selection(Comparison(attr("a"), "==", lit(c % 2))), [s],
                query_id=f"q{c}",
            )
            out = plan.add_operator(
                Sequence(
                    conjunction(
                        [DurationWithin(5), Comparison(right("a"), "==", lit(c))]
                    )
                ),
                [selected, t],
                query_id=f"q{c}",
            )
            plan.mark_output(out, f"q{c}")
        return plan

    def test_plan_shape_insensitive_to_mop_order(self):
        first = self._event_plan()
        second = self._event_plan()
        Optimizer().optimize(first)
        Optimizer().optimize(second)
        assert plan_shape(first) == plan_shape(second)

    def test_priorities_pin_unique_outcome(self):
        report = check_confluence(
            self._event_plan,
            default_rules(),
            max_orders=6,
            respect_priorities=True,
        )
        assert report.confluent
        assert report.orders_tried == 6

    def test_report_rendering(self):
        report = check_confluence(
            self._event_plan, default_rules(), max_orders=2,
            respect_priorities=True,
        )
        assert "confluent" in str(report)
