"""Unit tests for the sliding-window join."""

import pytest

from repro.errors import OperatorError
from repro.operators.expressions import left, lit, right
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    TruePredicate,
    conjunction,
)
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

LEFT_SCHEMA = Schema.of_ints("k", "x")
RIGHT_SCHEMA = Schema.of_ints("k", "y")


def run_join(operator, events):
    """events: (side, ts, k, v) -> output value tuples."""
    executor = operator.executor([LEFT_SCHEMA, RIGHT_SCHEMA])
    outputs = []
    for side, ts, k, v in events:
        schema = LEFT_SCHEMA if side == 0 else RIGHT_SCHEMA
        outputs.extend(executor.process(side, StreamTuple(schema, (k, v), ts)))
    return outputs


class TestEquiJoin:
    def test_matching_keys(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(10)
        )
        outputs = run_join(
            operator, [(0, 0, 1, 10), (1, 1, 1, 20), (1, 2, 2, 30)]
        )
        assert len(outputs) == 1
        assert outputs[0].as_dict() == {"l_k": 1, "l_x": 10, "r_k": 1, "r_y": 20}

    def test_symmetric_probing(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(10)
        )
        # right arrives first, then the left probe finds it
        outputs = run_join(operator, [(1, 0, 5, 1), (0, 1, 5, 2)])
        assert len(outputs) == 1
        assert outputs[0].ts == 1

    def test_window_expiry(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(3)
        )
        outputs = run_join(operator, [(0, 0, 1, 1), (1, 4, 1, 2)])
        assert outputs == []

    def test_window_boundary_inclusive(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(3)
        )
        outputs = run_join(operator, [(0, 0, 1, 1), (1, 3, 1, 2)])
        assert len(outputs) == 1

    def test_multiple_matches(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(10)
        )
        outputs = run_join(
            operator, [(0, 0, 1, 1), (0, 1, 1, 2), (1, 2, 1, 3)]
        )
        assert len(outputs) == 2


class TestNestedLoopJoin:
    def test_cross_with_residual(self):
        operator = SlidingWindowJoin(
            Comparison(left("x"), "<", right("y")), TimeWindow(10)
        )
        outputs = run_join(operator, [(0, 0, 1, 5), (1, 1, 2, 9), (1, 2, 3, 2)])
        assert len(outputs) == 1  # only y=9 > x=5

    def test_true_predicate_is_cross_product(self):
        operator = SlidingWindowJoin(TruePredicate(), TimeWindow(10))
        outputs = run_join(operator, [(0, 0, 1, 1), (0, 1, 2, 2), (1, 2, 0, 0)])
        assert len(outputs) == 2


class TestPredicateDecomposition:
    def test_duration_conjunct_tightens_window(self):
        operator = SlidingWindowJoin(
            conjunction(
                [DurationWithin(2), Comparison(left("k"), "==", right("k"))]
            ),
            TimeWindow(100),
        )
        outputs = run_join(operator, [(0, 0, 1, 1), (1, 3, 1, 2)])
        assert outputs == []

    def test_constant_conjunct_still_applied(self):
        operator = SlidingWindowJoin(
            conjunction(
                [
                    Comparison(left("k"), "==", right("k")),
                    Comparison(right("y"), "==", lit(7)),
                ]
            ),
            TimeWindow(10),
        )
        outputs = run_join(
            operator, [(0, 0, 1, 1), (1, 1, 1, 7), (1, 2, 1, 8)]
        )
        assert len(outputs) == 1

    def test_requires_time_window(self):
        with pytest.raises(OperatorError):
            SlidingWindowJoin(TruePredicate(), 10)

    def test_output_schema_prefixes(self):
        operator = SlidingWindowJoin(TruePredicate(), TimeWindow(1))
        schema = operator.output_schema([LEFT_SCHEMA, RIGHT_SCHEMA])
        assert schema.names == ("l_k", "l_x", "r_k", "r_y")

    def test_state_size(self):
        operator = SlidingWindowJoin(
            Comparison(left("k"), "==", right("k")), TimeWindow(100)
        )
        executor = operator.executor([LEFT_SCHEMA, RIGHT_SCHEMA])
        executor.process(0, StreamTuple(LEFT_SCHEMA, (1, 1), 0))
        executor.process(1, StreamTuple(RIGHT_SCHEMA, (1, 1), 1))
        assert executor.state_size == 2
