"""Sharded lifecycle runtime: routing, placement, rebalance, churn equality.

The headline property: a sharded serve — registers, unregisters, event
routing, *and mid-churn rebalances* — produces byte-identical per-query
outputs to the single-runtime serve of the same schedule, and rebalance
carries window/sequence state across shards (not rebuilt, not drained)."""

import pytest

from repro.errors import LifecycleError
from repro.runtime import QueryRuntime
from repro.shard import ShardedRuntime
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_batched, drive_sharded

SCHEMA = Schema.numbered(2)

AGG = "FROM S AGG avg(a1) OVER 20 BY a0 AS m"
SEQ = "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 15"
SEL = "FROM S WHERE a0 == 2"


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


class TestLifecycleRouting:
    def test_register_places_and_routes(self):
        runtime = ShardedRuntime({"S": SCHEMA, "T": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a")
        runtime.register(AGG, query_id="b")
        assert sorted(runtime.active_queries) == ["a", "b"]
        assert runtime.shard_loads() == [1, 1]
        assert runtime.shard_of("a") != runtime.shard_of("b")

    def test_explicit_shard_and_validation(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a", shard=1)
        assert runtime.shard_of("a") == 1
        with pytest.raises(LifecycleError):
            runtime.register(SEL, query_id="a")
        with pytest.raises(LifecycleError):
            runtime.register(SEL, query_id="b", shard=7)
        with pytest.raises(LifecycleError):
            runtime.shard_of("missing")
        with pytest.raises(LifecycleError):
            runtime.unregister("missing")
        with pytest.raises(LifecycleError):
            runtime.process("UNKNOWN", StreamTuple(SCHEMA, (0, 0), 0))
        with pytest.raises(LifecycleError):
            runtime.register("FROM NOPE WHERE a0 == 1", query_id="c")

    def test_unregister_frees_shard(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a", shard=0)
        runtime.unregister("a")
        assert runtime.active_queries == []
        assert runtime.shard_loads() == [0, 0]

    def test_input_events_counted_once_across_replicated_streams(self):
        # Both shards read S; aggregate input must count each event once.
        runtime = ShardedRuntime(
            {"S": SCHEMA}, n_shards=2, capture_outputs=True
        )
        runtime.register("FROM S WHERE a0 == 0", query_id="a", shard=0)
        runtime.register("FROM S WHERE a0 == 0", query_id="b", shard=1)
        for ts in range(10):
            runtime.process("S", StreamTuple(SCHEMA, (0, ts), ts))
        assert runtime.stats.input_events == 10
        assert runtime.stats.outputs_by_query == {"a": 10, "b": 10}
        batch = [StreamTuple(SCHEMA, (0, ts), ts) for ts in range(10, 14)]
        runtime.process_batch("S", batch)
        assert runtime.stats.input_events == 14
        assert runtime.stats.outputs_by_query == {"a": 14, "b": 14}

    def test_reoptimize_routes(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a", shard=0)
        reports = runtime.reoptimize()
        assert len(reports) == 2
        reports = runtime.reoptimize(shard=0)
        assert len(reports) == 1


class TestRebalance:
    def _runtime(self):
        runtime = ShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        runtime.register(AGG, query_id="agg", shard=0)
        runtime.register(SEQ, query_id="seq", shard=0)
        return runtime

    def _single(self):
        runtime = QueryRuntime({"S": SCHEMA, "T": SCHEMA}, capture_outputs=True)
        runtime.register(AGG, query_id="agg")
        runtime.register(SEQ, query_id="seq")
        return runtime

    def test_mid_stream_rebalance_preserves_window_and_sequence_state(self):
        single = self._single()
        feed(single, 0, 40)
        feed(single, 40, 90)

        sharded = self._runtime()
        feed(sharded, 0, 40)
        state_before = sharded.state_size
        assert state_before > 0
        transfer = sharded.rebalance("agg", 1)
        assert transfer.state_carried > 0
        assert sharded.shard_of("agg") == 1
        assert sharded.state_size == state_before  # nothing drained or lost
        sharded.rebalance("seq", 1)
        feed(sharded, 40, 90)

        assert sharded.stats.outputs_by_query == single.stats.outputs_by_query
        assert sharded.captured == single.captured
        assert sharded.state_size == single.state_size

    def test_rebalance_moves_whole_component(self):
        # Queries sharing an m-op (same selection → predicate index after
        # reoptimize) move together.
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2)
        runtime.register("FROM S WHERE a0 == 1", query_id="a", shard=0)
        runtime.register("FROM S WHERE a0 == 1", query_id="b", shard=0)
        transfer = runtime.rebalance("a", 1)
        assert set(transfer.query_ids) == {"a", "b"}
        assert runtime.shard_of("b") == 1

    def test_rebalance_validation(self):
        runtime = self._runtime()
        with pytest.raises(LifecycleError):
            runtime.rebalance("agg", 0)  # already there
        with pytest.raises(LifecycleError):
            runtime.rebalance("agg", 9)
        with pytest.raises(LifecycleError):
            runtime.rebalance("missing", 1)

    def test_unregister_after_rebalance(self):
        runtime = self._runtime()
        feed(runtime, 0, 20)
        runtime.rebalance("agg", 1)
        runtime.unregister("agg")
        assert runtime.active_queries == ["seq"]
        feed(runtime, 20, 40)  # still serving the survivor


class TestChurnEquivalence:
    def _workload(self):
        return ChurnWorkload(
            arrival_rate=0.03,
            mean_lifetime=300.0,
            horizon=600,
            initial_queries=4,
            seed=11,
        )

    def _serve_single(self, workload):
        runtime = QueryRuntime(
            {"S": workload.schema, "T": workload.schema}, capture_outputs=True
        )
        applied = sum(
            1
            for __ in drive_batched(
                runtime, workload.stream_events(), workload.schedule()
            )
        )
        return runtime, applied

    @pytest.mark.parametrize("n_shards,rebalance_every", [(2, 0), (3, 3)])
    def test_sharded_serve_identical(self, n_shards, rebalance_every):
        workload = self._workload()
        single, applied_single = self._serve_single(workload)
        sharded = ShardedRuntime(
            {"S": workload.schema, "T": workload.schema},
            n_shards=n_shards,
            capture_outputs=True,
        )
        applied_sharded = sum(
            1
            for __ in drive_sharded(
                sharded,
                workload.stream_events(),
                workload.schedule(),
                rebalance_every=rebalance_every,
            )
        )
        assert applied_single == applied_sharded
        assert single.stats.output_events > 0
        assert sharded.stats.outputs_by_query == single.stats.outputs_by_query
        assert sharded.stats.input_events == single.stats.input_events
        assert sharded.captured == single.captured
        # state_size equality is NOT asserted: placement changes which
        # queries share m-ops (sharing is per-shard), so live state can
        # legitimately differ while outputs stay byte-identical.
        assert sharded.state_size > 0

    def test_describe_and_introspection(self):
        runtime = ShardedRuntime({"S": SCHEMA, "T": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a")
        text = runtime.describe()
        assert "shard 0" in text and "shard 1" in text
        assert runtime.migrations >= 1
        assert isinstance(runtime.migration_log, list)
        assert isinstance(runtime.reports, list)

    def test_rejects_bad_shard_count(self):
        with pytest.raises(LifecycleError):
            ShardedRuntime({"S": SCHEMA}, n_shards=0)
