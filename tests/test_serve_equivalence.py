"""Serve-vs-replay byte identity over the process-sharded fleet.

The serve tier's correctness criterion: whatever ordering the socket
layer, flush timers and pump thread produce, replaying the recorded
arrival log through the simplest offline runtime must reproduce the live
outputs byte-for-byte (pickled-normalized equality, checked by
:func:`repro.serve.replay.verify_equivalence`).  Runs here fork real
worker processes and drive the full socket path.
"""

import pickle

import pytest

from repro import open_runtime
from repro.errors import ServeError
from repro.serve import (
    IngestServer,
    ServeSession,
    normalize_captured,
    replay_log,
    run_loadgen,
    verify_equivalence,
    zipf_schedule,
)
from repro.serve.loadgen import drive_schedule_inline
from repro.shard import fork_available
from repro.streams.schema import Schema

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.numbered(2)
SOURCES = {"S": SCHEMA, "T": SCHEMA}
QUERIES = [
    ("FROM S WHERE a0 == 1", "sel_s"),
    ("FROM T WHERE a0 == 2", "sel_t"),
    ("FROM S AGG avg(a1) OVER 10 BY a0 AS m", "agg_s"),
]


def open_fleet():
    return open_runtime(
        sources=SOURCES, process=True, shards=2, capture_outputs=True
    )


@pytest.mark.parametrize("seed", [0, 7])
def test_socket_serve_byte_identical_to_replay(seed):
    """Full stack — loadgen client, asyncio server, pump, 2-shard fleet —
    vs an offline replay of the arrival log."""
    runtime = open_fleet()
    try:
        session = ServeSession(runtime)
        for query, qid in QUERIES:
            session.submit_register(query, qid)
        schedule = zipf_schedule(
            ["S", "T"], epochs=4, events_per_epoch=150, epoch_seconds=0.2,
            seed=seed,
        )
        with IngestServer(session, port=0, flush_interval=0.005) as server:
            host, port = server.address
            stats = run_loadgen(
                host, port, schedule, SOURCES, seed=seed, speedup=50.0
            )
        report = session.finish()
        assert stats["accepted_events"] == schedule.total_events
        assert report.events == schedule.total_events
        equivalence = verify_equivalence(
            runtime.captured, session.log, SOURCES
        )
    finally:
        runtime.close()
    assert equivalence["identical"]
    assert equivalence["queries"] == len(QUERIES)
    assert equivalence["outputs"] > 0  # the check is not vacuous


def test_lifecycle_during_serve_byte_identical_to_replay():
    """Registrations and removals interleaved with live pushes land in
    the log's total order; the replay honors it exactly."""
    runtime = open_fleet()
    try:
        session = ServeSession(runtime)
        session.submit_register("FROM S WHERE a0 == 0", "q0")
        for round_ in range(1, 6):
            drive_schedule_inline(
                session,
                zipf_schedule(
                    ["S", "T"], epochs=1, events_per_epoch=80,
                    epoch_seconds=0.05, seed=round_,
                ),
                SOURCES,
                seed=round_,
                speedup=100.0,
            )
            session.submit_register(
                f"FROM S WHERE a0 == {round_ % 4}", f"q{round_}"
            )
            if round_ % 2 == 0:
                session.submit_unregister(f"q{round_ - 1}")
        report = session.finish()
        assert report.lifecycle_ops == 1 + 5 + 2
        equivalence = verify_equivalence(
            runtime.captured, session.log, SOURCES
        )
        assert equivalence["identical"]
    finally:
        runtime.close()


def test_pipelined_lifecycle_matches_sync_lifecycle():
    """The same op sequence through submit_register/collect_lifecycle and
    through blocking register must produce identical captured outputs."""
    from repro.serve.loadgen import timed_events
    from repro.streams.tuples import StreamTuple

    captured = {}
    for label, pipelined in (("sync", False), ("pipelined", True)):
        runtime = open_fleet()
        try:
            for round_ in range(4):
                if pipelined:
                    runtime.submit_register(
                        f"FROM S WHERE a0 == {round_}", f"q{round_}"
                    )
                else:
                    runtime.register(
                        f"FROM S WHERE a0 == {round_}",
                        query_id=f"q{round_}",
                    )
                schedule = zipf_schedule(
                    ["S", "T"], epochs=1, events_per_epoch=60,
                    epoch_seconds=0.01, seed=round_,
                )
                for __, stream, (ts, values) in timed_events(
                    schedule, SOURCES, seed=round_
                ):
                    runtime.process_batch(
                        stream, [StreamTuple(SOURCES[stream], values, ts)]
                    )
            if pipelined:
                runtime.collect_lifecycle()
            runtime.shard_stats()
            captured[label] = normalize_captured(runtime.captured)
        finally:
            runtime.close()
    assert pickle.dumps(captured["sync"]) == pickle.dumps(
        captured["pipelined"]
    )


def test_replay_divergence_is_detected():
    """verify_equivalence must fail loudly when live outputs are doctored
    — guarding against a vacuously-green equivalence check."""
    runtime = open_runtime(sources=SOURCES, capture_outputs=True)
    with ServeSession(runtime) as session:
        session.submit_register("FROM S WHERE a0 == 1", "q")
        session.submit_run("S", [(1, (1, 5)), (2, (1, 6))])
        session.drain()
        log = session.log
        session.finish()
    doctored = {"q": runtime.captured["q"][:-1]}  # drop one output
    with pytest.raises(ServeError, match="diverge"):
        verify_equivalence(doctored, log, SOURCES)
    # And the unmodified outputs pass.
    replayed = replay_log(log, SOURCES)
    assert normalize_captured(runtime.captured) == replayed
