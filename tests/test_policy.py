"""Rebalance policies: count levelling, adaptive throughput, oversized alerts."""

import logging

import pytest

from repro.engine.metrics import RunStats
from repro.shard import QueryCountPolicy, ShardedRuntime, ThroughputPolicy
from repro.shard.policy import RebalancePolicy
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_batched, drive_sharded

SCHEMA = Schema.numbered(2)


class FakeRuntime:
    """Minimal runtime facade for policy unit tests."""

    def __init__(
        self, placement, busy, outputs_by_query, components=None, heat=None
    ):
        self.n_shards = len(busy)
        self._placement = dict(placement)  # query_id -> shard
        self._busy = busy
        self._outputs = outputs_by_query
        self._components = components or {}
        self._heat = heat  # query_id -> busy seconds (telemetry signal)

    @property
    def active_queries(self):
        return list(self._placement)

    def shard_of(self, query_id):
        return self._placement[query_id]

    def shard_loads(self):
        loads = [0] * self.n_shards
        for shard in self._placement.values():
            loads[shard] += 1
        return loads

    def queries_on(self, shard):
        return [q for q, s in self._placement.items() if s == shard]

    def shard_stats(self):
        stats = []
        for shard, busy in enumerate(self._busy):
            entry = RunStats()
            entry.elapsed_seconds = busy
            entry.outputs_by_query = {
                q: n
                for q, n in self._outputs.items()
                if self._placement.get(q) == shard
            }
            stats.append(entry)
        return stats

    def component_queries(self, query_id):
        return self._components.get(query_id, [query_id])

    def shard_telemetry(self):
        heat = self._heat or {}
        return [
            {
                "shard": shard,
                "mop_stats": {},
                "query_heat": {
                    q: seconds
                    for q, seconds in heat.items()
                    if self._placement.get(q) == shard
                },
                "peak_state": 0,
            }
            for shard in range(self.n_shards)
        ]


class TestQueryCountPolicy:
    def test_levels_most_to_least_loaded(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0, "d": 1}, busy=[0, 0, 0], outputs_by_query={}
        )
        proposals = list(QueryCountPolicy().propose(runtime))
        assert proposals  # donor shard 0 (3 queries) -> shard 2 (0 queries)
        assert all(target == 2 for __, target in proposals)
        assert [q for q, __ in proposals] == ["a", "b", "c"]

    def test_no_move_when_levelled(self):
        runtime = FakeRuntime({"a": 0, "b": 1}, busy=[0, 0], outputs_by_query={})
        assert list(QueryCountPolicy().propose(runtime)) == []

    def test_oversized_component_skipped_and_alerted(self, caplog):
        # One 3-query component owns the whole donor: moving it would just
        # relocate the hot spot, so it is skipped and alerted.
        component = ["a", "b", "c"]
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0, "d": 1},
            busy=[0, 0],
            outputs_by_query={},
            components={q: component for q in component},
        )
        policy = QueryCountPolicy()
        with caplog.at_level(logging.WARNING, logger="repro.shard.policy"):
            assert list(policy.propose(runtime)) == []
        assert policy.oversized_alerts == 3  # every candidate hit the guard
        assert "oversized component" in caplog.text

    def test_movable_component_not_alerted(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0}, busy=[0, 0, 0], outputs_by_query={}
        )
        policy = QueryCountPolicy()
        assert list(policy.propose(runtime))
        assert policy.oversized_alerts == 0
        assert policy.split_proposals == []

    def test_oversized_component_becomes_one_split_proposal(self):
        # Three candidates hit the guard but they are the *same* component:
        # exactly one split proposal, naming the component and its anchor.
        component = ["a", "b", "c"]
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0, "d": 1},
            busy=[0, 0],
            outputs_by_query={},
            components={q: component for q in component},
        )
        policy = QueryCountPolicy()
        list(policy.propose(runtime))
        list(policy.propose(runtime))  # repeat proposals do not duplicate
        assert len(policy.split_proposals) == 1
        proposal = policy.split_proposals[0]
        assert proposal.query_ids == ("a", "b", "c")
        assert proposal.shard == 0
        assert proposal.size == 3
        assert proposal.size > proposal.per_shard_target


class TestThroughputPolicy:
    def test_moves_hottest_off_slowest(self):
        runtime = FakeRuntime(
            {"cold": 0, "warm": 0, "hot": 0, "other": 1},
            busy=[3.0, 0.5],
            outputs_by_query={"cold": 1, "warm": 50, "hot": 400, "other": 10},
        )
        proposals = list(ThroughputPolicy().propose(runtime))
        assert proposals[0] == ("hot", 1)
        assert [q for q, __ in proposals] == ["hot", "warm", "cold"]

    def test_deltas_not_cumulative_totals(self):
        runtime = FakeRuntime(
            {"a": 0, "c": 0, "b": 1},
            busy=[10.0, 1.0],
            outputs_by_query={"a": 100, "c": 5, "b": 10},
        )
        policy = ThroughputPolicy()
        assert list(policy.propose(runtime))  # first window: shard 0 is slow
        # Next window: shard 0 went idle; cumulative busy still 10 vs 1,
        # but the *delta* is zero, so no move is proposed.
        assert list(policy.propose(runtime)) == []

    def test_whole_shard_population_is_never_relocated(self):
        # A single-component donor: moving it would only move the hotspot.
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[10.0, 1.0], outputs_by_query={"a": 100}
        )
        assert list(ThroughputPolicy().propose(runtime)) == []

    def test_quiet_cluster_proposes_nothing(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[0.001, 0.001], outputs_by_query={}
        )
        policy = ThroughputPolicy(min_busy_seconds=0.1)
        assert list(policy.propose(runtime)) == []

    def test_min_ratio_guards_thrash(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[1.0, 0.9], outputs_by_query={"a": 5}
        )
        assert list(ThroughputPolicy(min_ratio=1.5).propose(runtime)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputPolicy(min_ratio=0.5)
        with pytest.raises(ValueError):
            ThroughputPolicy(heat="latency")
        with pytest.raises(NotImplementedError):
            RebalancePolicy().propose(None)

    def test_deltas_reset_when_shard_count_changes(self):
        # Warm the policy on a 2-shard cluster, then point it at a 3-shard
        # one: stored deltas are shard-indexed, so they must reset to the
        # cumulative baseline instead of zipping against a stale list.
        policy = ThroughputPolicy()
        warm = FakeRuntime(
            {"a": 0, "c": 0, "b": 1},
            busy=[10.0, 1.0],
            outputs_by_query={"a": 100, "c": 5, "b": 10},
        )
        assert list(policy.propose(warm))
        grown = FakeRuntime(
            {"a": 0, "c": 0, "b": 1, "d": 2},
            busy=[10.0, 1.0, 0.5],
            outputs_by_query={"a": 100, "c": 5, "b": 10, "d": 1},
        )
        # Same cumulative busy on shard 0 — a stale delta would be ~zero
        # and propose nothing; the reset treats 10.0s as fresh signal.
        proposals = list(policy.propose(grown))
        assert proposals and proposals[0][0] == "a"
        assert len(policy._previous_busy) == 3

    def test_min_busy_floor_applies_to_deltas_after_warmup(self):
        # Cumulative busy is far above the floor, but the per-window delta
        # is tiny: the floor must gate on the delta, not the total.
        policy = ThroughputPolicy(min_ratio=1.01, min_busy_seconds=0.5)
        first = FakeRuntime(
            {"a": 0, "c": 0, "b": 1},
            busy=[20.0, 1.0],
            outputs_by_query={"a": 100, "c": 5},
        )
        assert list(policy.propose(first))
        barely_warmer = FakeRuntime(
            {"a": 0, "c": 0, "b": 1},
            busy=[20.2, 1.0],
            outputs_by_query={"a": 100, "c": 5},
        )
        assert list(policy.propose(barely_warmer)) == []

    def test_oversized_component_alerted(self, caplog):
        # The donor's hottest component spans all its queries: moving it
        # would relocate the hotspot wholesale, so it is skipped + alerted.
        component = ["a", "c", "e"]
        runtime = FakeRuntime(
            {"a": 0, "c": 0, "e": 0, "b": 1},
            busy=[10.0, 0.1],
            outputs_by_query={"a": 100, "c": 50, "e": 10, "b": 1},
            components={q: component for q in component},
        )
        policy = ThroughputPolicy()
        with caplog.at_level(logging.WARNING, logger="repro.shard.policy"):
            assert list(policy.propose(runtime)) == []
        assert policy.oversized_alerts == 3
        assert "oversized component" in caplog.text

    def test_busy_heat_reranks_donor_candidates(self):
        # Output counts say "chatty" is hottest; sampled busy time says
        # "cruncher" (few outputs, heavy predicate work) is.  heat="busy"
        # must rank by the telemetry signal.
        placement = {"chatty": 0, "cruncher": 0, "idle": 0, "other": 1}
        outputs = {"chatty": 500, "cruncher": 3, "idle": 1, "other": 10}
        heat = {"chatty": 0.2, "cruncher": 5.0, "idle": 0.0, "other": 0.1}
        by_outputs = FakeRuntime(placement, [4.0, 0.5], outputs, heat=heat)
        proposals = list(ThroughputPolicy().propose(by_outputs))
        assert proposals[0][0] == "chatty"
        by_busy = FakeRuntime(placement, [4.0, 0.5], outputs, heat=heat)
        proposals = list(ThroughputPolicy(heat="busy").propose(by_busy))
        assert proposals[0][0] == "cruncher"

    def test_busy_heat_is_delta_based(self):
        placement = {"a": 0, "c": 0, "b": 1}
        outputs = {"a": 1, "c": 2, "b": 1}
        policy = ThroughputPolicy(heat="busy", min_ratio=1.01)
        first = FakeRuntime(
            placement, [5.0, 0.1], outputs, heat={"a": 4.0, "c": 1.0}
        )
        assert list(policy.propose(first))[0][0] == "a"
        # Since then only "c" accumulated busy time: the delta ranking must
        # flip even though cumulative heat still favours "a".
        second = FakeRuntime(
            placement, [9.0, 0.1], outputs, heat={"a": 4.0, "c": 4.5}
        )
        assert list(policy.propose(second))[0][0] == "c"

    def test_busy_heat_falls_back_without_telemetry(self):
        runtime = FakeRuntime(
            {"cold": 0, "hot": 0, "other": 1},
            busy=[3.0, 0.5],
            outputs_by_query={"cold": 1, "hot": 400, "other": 10},
        )
        runtime.shard_telemetry = None  # runtime without the accessor
        proposals = list(ThroughputPolicy(heat="busy").propose(runtime))
        assert proposals[0][0] == "hot"

    def test_busy_heat_empty_falls_back_to_outputs(self):
        # Telemetry present but the runtime is not observing: query_heat is
        # empty everywhere, so ranking falls back to output deltas.
        runtime = FakeRuntime(
            {"cold": 0, "hot": 0, "other": 1},
            busy=[3.0, 0.5],
            outputs_by_query={"cold": 1, "hot": 400, "other": 10},
        )
        proposals = list(ThroughputPolicy(heat="busy").propose(runtime))
        assert proposals[0][0] == "hot"


class TestDriverIntegration:
    def _workload(self):
        return ChurnWorkload(
            arrival_rate=0.05,
            mean_lifetime=150.0,
            horizon=400,
            initial_queries=5,
            seed=17,
        )

    @pytest.mark.parametrize(
        "policy_factory", [QueryCountPolicy, lambda: ThroughputPolicy(min_ratio=1.05)]
    )
    def test_policy_driven_serve_stays_byte_identical(self, policy_factory):
        from repro.runtime import QueryRuntime

        workload = self._workload()
        single = QueryRuntime(
            {"S": workload.schema, "T": workload.schema}, capture_outputs=True
        )
        applied_single = sum(
            1
            for __ in drive_batched(
                single, workload.stream_events(), workload.schedule()
            )
        )
        sharded = ShardedRuntime(
            {"S": workload.schema, "T": workload.schema},
            n_shards=2,
            capture_outputs=True,
        )
        policy = policy_factory()
        applied_sharded = sum(
            1
            for __ in drive_sharded(
                sharded,
                workload.stream_events(),
                workload.schedule(),
                rebalance_every=3,
                policy=policy,
            )
        )
        assert applied_single == applied_sharded
        assert sharded.stats.outputs_by_query == single.stats.outputs_by_query
        assert sharded.captured == single.captured

    def test_throughput_policy_rebalances_under_skewed_load(self):
        # Anchor two hot queries on shard 0 and keep shard 1 idle: the
        # busy-delta signal must trigger at least one component move.
        runtime = ShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        runtime.register("FROM S AGG avg(a1) OVER 30 BY a0 AS m", query_id="hot", shard=0)
        runtime.register("FROM S WHERE a0 == 1", query_id="warm", shard=0)
        policy = ThroughputPolicy(min_ratio=1.01)
        moved = 0
        for round_ in range(4):
            for ts in range(round_ * 50, round_ * 50 + 50):
                runtime.process("S", StreamTuple(SCHEMA, (ts % 3, ts), ts))
            for query_id, target in policy.propose(runtime):
                runtime.rebalance(query_id, target)
                moved += 1
                break
        assert moved >= 1
        assert runtime.rebalances == moved
        assert set(runtime._query_shard.values()) == {0, 1}
