"""Rebalance policies: count levelling, adaptive throughput, oversized alerts."""

import logging

import pytest

from repro.engine.metrics import RunStats
from repro.shard import QueryCountPolicy, ShardedRuntime, ThroughputPolicy
from repro.shard.policy import RebalancePolicy
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_batched, drive_sharded

SCHEMA = Schema.numbered(2)


class FakeRuntime:
    """Minimal runtime facade for policy unit tests."""

    def __init__(self, placement, busy, outputs_by_query, components=None):
        self.n_shards = len(busy)
        self._placement = dict(placement)  # query_id -> shard
        self._busy = busy
        self._outputs = outputs_by_query
        self._components = components or {}

    @property
    def active_queries(self):
        return list(self._placement)

    def shard_of(self, query_id):
        return self._placement[query_id]

    def shard_loads(self):
        loads = [0] * self.n_shards
        for shard in self._placement.values():
            loads[shard] += 1
        return loads

    def queries_on(self, shard):
        return [q for q, s in self._placement.items() if s == shard]

    def shard_stats(self):
        stats = []
        for shard, busy in enumerate(self._busy):
            entry = RunStats()
            entry.elapsed_seconds = busy
            entry.outputs_by_query = {
                q: n
                for q, n in self._outputs.items()
                if self._placement.get(q) == shard
            }
            stats.append(entry)
        return stats

    def component_queries(self, query_id):
        return self._components.get(query_id, [query_id])


class TestQueryCountPolicy:
    def test_levels_most_to_least_loaded(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0, "d": 1}, busy=[0, 0, 0], outputs_by_query={}
        )
        proposals = list(QueryCountPolicy().propose(runtime))
        assert proposals  # donor shard 0 (3 queries) -> shard 2 (0 queries)
        assert all(target == 2 for __, target in proposals)
        assert [q for q, __ in proposals] == ["a", "b", "c"]

    def test_no_move_when_levelled(self):
        runtime = FakeRuntime({"a": 0, "b": 1}, busy=[0, 0], outputs_by_query={})
        assert list(QueryCountPolicy().propose(runtime)) == []

    def test_oversized_component_skipped_and_alerted(self, caplog):
        # One 3-query component owns the whole donor: moving it would just
        # relocate the hot spot, so it is skipped and alerted.
        component = ["a", "b", "c"]
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0, "d": 1},
            busy=[0, 0],
            outputs_by_query={},
            components={q: component for q in component},
        )
        policy = QueryCountPolicy()
        with caplog.at_level(logging.WARNING, logger="repro.shard.policy"):
            assert list(policy.propose(runtime)) == []
        assert policy.oversized_alerts == 3  # every candidate hit the guard
        assert "oversized component" in caplog.text

    def test_movable_component_not_alerted(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 0, "c": 0}, busy=[0, 0, 0], outputs_by_query={}
        )
        policy = QueryCountPolicy()
        assert list(policy.propose(runtime))
        assert policy.oversized_alerts == 0


class TestThroughputPolicy:
    def test_moves_hottest_off_slowest(self):
        runtime = FakeRuntime(
            {"cold": 0, "warm": 0, "hot": 0, "other": 1},
            busy=[3.0, 0.5],
            outputs_by_query={"cold": 1, "warm": 50, "hot": 400, "other": 10},
        )
        proposals = list(ThroughputPolicy().propose(runtime))
        assert proposals[0] == ("hot", 1)
        assert [q for q, __ in proposals] == ["hot", "warm", "cold"]

    def test_deltas_not_cumulative_totals(self):
        runtime = FakeRuntime(
            {"a": 0, "c": 0, "b": 1},
            busy=[10.0, 1.0],
            outputs_by_query={"a": 100, "c": 5, "b": 10},
        )
        policy = ThroughputPolicy()
        assert list(policy.propose(runtime))  # first window: shard 0 is slow
        # Next window: shard 0 went idle; cumulative busy still 10 vs 1,
        # but the *delta* is zero, so no move is proposed.
        assert list(policy.propose(runtime)) == []

    def test_whole_shard_population_is_never_relocated(self):
        # A single-component donor: moving it would only move the hotspot.
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[10.0, 1.0], outputs_by_query={"a": 100}
        )
        assert list(ThroughputPolicy().propose(runtime)) == []

    def test_quiet_cluster_proposes_nothing(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[0.001, 0.001], outputs_by_query={}
        )
        policy = ThroughputPolicy(min_busy_seconds=0.1)
        assert list(policy.propose(runtime)) == []

    def test_min_ratio_guards_thrash(self):
        runtime = FakeRuntime(
            {"a": 0, "b": 1}, busy=[1.0, 0.9], outputs_by_query={"a": 5}
        )
        assert list(ThroughputPolicy(min_ratio=1.5).propose(runtime)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            ThroughputPolicy(min_ratio=0.5)
        with pytest.raises(NotImplementedError):
            RebalancePolicy().propose(None)


class TestDriverIntegration:
    def _workload(self):
        return ChurnWorkload(
            arrival_rate=0.05,
            mean_lifetime=150.0,
            horizon=400,
            initial_queries=5,
            seed=17,
        )

    @pytest.mark.parametrize(
        "policy_factory", [QueryCountPolicy, lambda: ThroughputPolicy(min_ratio=1.05)]
    )
    def test_policy_driven_serve_stays_byte_identical(self, policy_factory):
        from repro.runtime import QueryRuntime

        workload = self._workload()
        single = QueryRuntime(
            {"S": workload.schema, "T": workload.schema}, capture_outputs=True
        )
        applied_single = sum(
            1
            for __ in drive_batched(
                single, workload.stream_events(), workload.schedule()
            )
        )
        sharded = ShardedRuntime(
            {"S": workload.schema, "T": workload.schema},
            n_shards=2,
            capture_outputs=True,
        )
        policy = policy_factory()
        applied_sharded = sum(
            1
            for __ in drive_sharded(
                sharded,
                workload.stream_events(),
                workload.schedule(),
                rebalance_every=3,
                policy=policy,
            )
        )
        assert applied_single == applied_sharded
        assert sharded.stats.outputs_by_query == single.stats.outputs_by_query
        assert sharded.captured == single.captured

    def test_throughput_policy_rebalances_under_skewed_load(self):
        # Anchor two hot queries on shard 0 and keep shard 1 idle: the
        # busy-delta signal must trigger at least one component move.
        runtime = ShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        runtime.register("FROM S AGG avg(a1) OVER 30 BY a0 AS m", query_id="hot", shard=0)
        runtime.register("FROM S WHERE a0 == 1", query_id="warm", shard=0)
        policy = ThroughputPolicy(min_ratio=1.01)
        moved = 0
        for round_ in range(4):
            for ts in range(round_ * 50, round_ * 50 + 50):
                runtime.process("S", StreamTuple(SCHEMA, (ts % 3, ts), ts))
            for query_id, target in policy.propose(runtime):
                runtime.rebalance(query_id, target)
                moved += 1
                break
        assert moved >= 1
        assert runtime.rebalances == moved
        assert set(runtime._query_shard.values()) == {0, 1}
