"""Unit tests for the sliding-window aggregate operator."""

import pytest

from repro.errors import OperatorError
from repro.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    MonotonicExtremeAccumulator,
    SlidingWindowAggregate,
    SumCountAccumulator,
)
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("g", "v")


def feed(operator, rows):
    """rows of (ts, g, v) -> list of output dicts."""
    executor = operator.executor([SCHEMA])
    outputs = []
    for ts, g, v in rows:
        for out in executor.process(0, StreamTuple(SCHEMA, (g, v), ts)):
            outputs.append((out.ts, out.as_dict()))
    return outputs


class TestValidation:
    def test_unknown_function(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("median", "v", TimeWindow(5))

    def test_non_count_requires_target(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("sum", None, TimeWindow(5))

    def test_count_star_allowed(self):
        operator = SlidingWindowAggregate("count", None, TimeWindow(5))
        assert operator.target is None

    def test_duplicate_group_by(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("sum", "v", TimeWindow(5), ("g", "g"))

    def test_output_name_collision(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("sum", "v", TimeWindow(5), ("g",), output_name="g")

    def test_requires_time_window(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("sum", "v", 5)


class TestSemantics:
    def test_sum_with_expiry(self):
        operator = SlidingWindowAggregate("sum", "v", TimeWindow(2), (), "s")
        outputs = feed(operator, [(0, 0, 1), (1, 0, 2), (2, 0, 3), (4, 0, 4)])
        # window length 2 => tuples with ts >= current - 2; the window at
        # ts=4 covers ts 2..4, i.e. 3 + 4 = 7.
        assert [o["s"] for __, o in outputs] == [1, 3, 6, 7]

    def test_avg(self):
        operator = SlidingWindowAggregate("avg", "v", TimeWindow(10), (), "m")
        outputs = feed(operator, [(0, 0, 2), (1, 0, 4)])
        assert [o["m"] for __, o in outputs] == [2.0, 3.0]

    def test_count(self):
        operator = SlidingWindowAggregate("count", None, TimeWindow(1), (), "n")
        outputs = feed(operator, [(0, 0, 9), (1, 0, 9), (3, 0, 9)])
        assert [o["n"] for __, o in outputs] == [1, 2, 1]

    def test_min_max_monotonic(self):
        minimum = SlidingWindowAggregate("min", "v", TimeWindow(2), (), "lo")
        maximum = SlidingWindowAggregate("max", "v", TimeWindow(2), (), "hi")
        rows = [(0, 0, 5), (1, 0, 3), (2, 0, 4), (3, 0, 9), (5, 0, 1)]
        lows = [o["lo"] for __, o in feed(minimum, rows)]
        highs = [o["hi"] for __, o in feed(maximum, rows)]
        assert lows == [5, 3, 3, 3, 1]
        assert highs == [5, 5, 5, 9, 9]

    def test_group_by_isolation(self):
        operator = SlidingWindowAggregate("sum", "v", TimeWindow(10), ("g",), "s")
        outputs = feed(operator, [(0, 1, 10), (1, 2, 20), (2, 1, 5)])
        assert outputs[0][1] == {"g": 1, "s": 10}
        assert outputs[1][1] == {"g": 2, "s": 20}
        assert outputs[2][1] == {"g": 1, "s": 15}

    def test_emission_per_tuple(self):
        operator = SlidingWindowAggregate("sum", "v", TimeWindow(5))
        outputs = feed(operator, [(0, 0, 1), (0, 1, 2)])
        assert len(outputs) == 2

    def test_output_schema(self):
        operator = SlidingWindowAggregate("avg", "v", TimeWindow(5), ("g",), "m")
        out_schema = operator.output_schema([SCHEMA])
        assert out_schema.names == ("g", "m")
        assert out_schema.type_of("m") == "float"

    def test_state_size_tracks_window(self):
        operator = SlidingWindowAggregate("sum", "v", TimeWindow(1), (), "s")
        executor = operator.executor([SCHEMA])
        executor.process(0, StreamTuple(SCHEMA, (0, 1), 0))
        executor.process(0, StreamTuple(SCHEMA, (0, 1), 10))
        assert executor.state_size == 1  # the old tuple expired


class TestAccumulators:
    def test_sum_count_subtracts(self):
        acc = SumCountAccumulator()
        acc.insert(0, 5)
        acc.insert(1, 7)
        acc.expire(1)
        assert acc.partial() == (7, 1)
        assert len(acc) == 1

    def test_monotonic_max_dominance(self):
        acc = MonotonicExtremeAccumulator(maximum=True)
        for ts, v in [(0, 3), (1, 1), (2, 2)]:
            acc.insert(ts, v)
        assert acc.partial() == 3
        acc.expire(1)  # drop ts=0
        assert acc.partial() == 2

    def test_empty_partial_is_none(self):
        acc = MonotonicExtremeAccumulator(maximum=False)
        assert acc.partial() is None

    def test_combine_sum_count(self):
        spec = AGGREGATE_FUNCTIONS["avg"]
        combined = spec.combine([(10, 2), (20, 3)])
        assert combined == (30, 5)
        assert spec.finalize(combined) == 6.0

    def test_combine_extremes_skips_none(self):
        spec = AGGREGATE_FUNCTIONS["max"]
        assert spec.combine([None, 4, 2]) == 4
        assert spec.combine([None]) is None

    def test_finalize_empty_sum(self):
        spec = AGGREGATE_FUNCTIONS["sum"]
        assert spec.finalize((0, 0)) is None

    def test_finalize_count_zero(self):
        spec = AGGREGATE_FUNCTIONS["count"]
        assert spec.finalize((0, 0)) == 0
