"""Serve tier: protocol framing, session pump, ingest backpressure.

Socket tests bind ephemeral loopback ports; process-mode tests (idle
failure detection) fork real workers and are skipped where fork is
unavailable.  Byte-identical serve-vs-replay equivalence over the full
process fleet lives in ``test_serve_equivalence.py``.
"""

import socket
import threading
import time

import pytest

from repro import open_runtime
from repro.errors import ServeError
from repro.serve import (
    ArrivalLog,
    HeartbeatTimer,
    IngestServer,
    ServeClient,
    ServeSession,
    build_schedule,
    bursty_schedule,
    diurnal_schedule,
    drive_wall_clock,
    normalize_captured,
    replay_log,
    timed_events,
    verify_equivalence,
    zipf_schedule,
)
from repro.serve.protocol import (
    CREDIT,
    EVENTS,
    HELLO,
    MAX_MESSAGE,
    decode_payload,
    encode_message,
    read_exact,
    read_message,
)
from repro.shard import fork_available
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.numbered(2)
SOURCES = {"S": SCHEMA, "T": SCHEMA}


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


# -- protocol ---------------------------------------------------------------------


class TestProtocol:
    def test_round_trip(self):
        message = {"type": EVENTS, "stream": "S", "events": [[1, [2, 3]]]}
        framed = encode_message(message)
        assert decode_payload(framed[4:]) == message

    def test_oversize_message_rejected(self):
        with pytest.raises(ServeError, match="exceeds"):
            encode_message({"type": EVENTS, "blob": "x" * MAX_MESSAGE})

    def test_malformed_payloads(self):
        with pytest.raises(ServeError, match="malformed"):
            decode_payload(b"\xff\xfe not json")
        with pytest.raises(ServeError, match="'type' field"):
            decode_payload(b"[1, 2, 3]")
        with pytest.raises(ServeError, match="'type' field"):
            decode_payload(b'{"no_type": 1}')

    def test_read_message_over_socketpair(self):
        left, right = socket.socketpair()
        try:
            left.sendall(encode_message({"type": HELLO, "client": "t"}))
            assert read_message(right) == {"type": HELLO, "client": "t"}
        finally:
            left.close()
            right.close()

    def test_read_exact_clean_eof_is_none(self):
        left, right = socket.socketpair()
        left.close()
        try:
            assert read_exact(right, 4) is None
        finally:
            right.close()

    def test_read_exact_mid_message_eof_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(b"\x00\x00")
            left.close()
            with pytest.raises(ServeError, match="mid-message"):
                read_exact(right, 4)
        finally:
            right.close()


# -- schedules --------------------------------------------------------------------


class TestSchedules:
    @pytest.mark.parametrize(
        "builder", [zipf_schedule, diurnal_schedule, bursty_schedule]
    )
    def test_deterministic_given_seed(self, builder):
        one = builder(["S", "T"], epochs=6, events_per_epoch=100, seed=3)
        two = builder(["S", "T"], epochs=6, events_per_epoch=100, seed=3)
        other = builder(["S", "T"], epochs=6, events_per_epoch=100, seed=4)
        assert one.epochs == two.epochs
        assert one.epochs != other.epochs

    def test_zipf_skews_toward_first_stream(self):
        schedule = zipf_schedule(
            ["S", "T"], epochs=20, events_per_epoch=200, skew=2.0, seed=0
        )
        totals = {"S": 0, "T": 0}
        for epoch in schedule.epochs:
            for stream, count in epoch.items():
                totals[stream] += count
        assert totals["S"] > totals["T"]
        assert schedule.total_events == 20 * 200

    def test_build_schedule_unknown_shape(self):
        with pytest.raises(ServeError, match="unknown schedule shape"):
            build_schedule("square-wave", ["S"])

    def test_timed_events_sorted_and_deterministic(self):
        schedule = bursty_schedule(
            ["S", "T"], epochs=4, events_per_epoch=50, seed=1
        )
        one = timed_events(schedule, SOURCES, seed=5)
        two = timed_events(schedule, SOURCES, seed=5)
        assert one == two
        assert len(one) == schedule.total_events
        assert [e[0] for e in one] == sorted(e[0] for e in one)

    def test_timed_events_rejects_unknown_stream(self):
        schedule = zipf_schedule(["X"], epochs=1, events_per_epoch=5)
        with pytest.raises(ServeError, match="unknown stream 'X'"):
            timed_events(schedule, SOURCES)


# -- session pump -----------------------------------------------------------------


class TestServeSession:
    def test_end_to_end_matches_replay(self):
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        with ServeSession(runtime) as session:
            session.submit_register("FROM S WHERE a0 == 1", "q")
            session.submit_run("S", [(1, (1, 10)), (2, (0, 11)), (3, (1, 12))])
            session.submit_register("FROM T WHERE a0 == 2", "r")
            session.submit_run("T", [(4, (2, 13))])
            session.submit_unregister("q")
            session.submit_run("S", [(5, (1, 14))])
            report = session.finish()
        assert report.events == 5
        assert report.runs == 3
        assert report.lifecycle_ops == 3
        assert session.log.events == 5
        live = normalize_captured(runtime.captured)
        assert live == replay_log(session.log, SOURCES)
        # "q" was unregistered before the last run: only ts 1 and 3 match.
        assert [ts for ts, __ in live["q"]] == [1, 3]

    def test_unknown_stream_rejected(self):
        runtime = open_runtime(sources=SOURCES)
        with ServeSession(runtime) as session:
            with pytest.raises(ServeError, match="unknown stream 'X'"):
                session.submit_run("X", [(1, (1, 2))])
            assert session.try_submit_run is not None
            with pytest.raises(ServeError, match="unknown stream"):
                session.try_submit_run("X", [(1, (1, 2))])

    def test_try_submit_bounded_queue(self):
        runtime = open_runtime(sources=SOURCES)
        session = ServeSession(runtime, queue_runs=1)
        # Stall the pump with a slow item so the queue fills.
        original = runtime.process_batch

        def slow(stream, tuples):
            time.sleep(0.3)
            return original(stream, tuples)

        runtime.process_batch = slow
        try:
            session.submit_run("S", [(1, (1, 2))])
            results = [
                session.try_submit_run("S", [(t, (1, 2))]) for t in range(50)
            ]
            assert False in results  # saturation is observable, not fatal
        finally:
            session.finish()

    def test_queue_runs_validated(self):
        runtime = open_runtime(sources=SOURCES)
        with pytest.raises(ServeError, match="queue_runs"):
            ServeSession(runtime, queue_runs=0)

    def test_pump_error_surfaces_to_producers(self):
        runtime = open_runtime(sources=SOURCES)
        session = ServeSession(runtime)
        session.submit_register("THIS IS NOT A QUERY", "bad")
        assert wait_until(lambda: session._error is not None, timeout=5.0)
        with pytest.raises(ServeError, match="serve pump died"):
            session.submit_run("S", [(1, (1, 2))])
        with pytest.raises(ServeError, match="serve pump died"):
            session.finish()

    def test_drive_wall_clock_paces_and_coalesces(self):
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        schedule = zipf_schedule(
            ["S", "T"], epochs=3, events_per_epoch=40, seed=2
        )
        arrivals = timed_events(schedule, SOURCES, seed=2)
        with ServeSession(runtime) as session:
            session.submit_register("FROM S WHERE a0 == 1", "q")
            submitted = drive_wall_clock(session, arrivals, speedup=100.0)
            session.drain()
            assert submitted == len(arrivals)
            assert session.log.events == len(arrivals)
            # Coalescing batches runs but never reorders: per-stream event
            # order in the log equals arrival order.
            for stream in ("S", "T"):
                logged = [
                    event
                    for entry in session.log.entries
                    if entry[0] == "run" and entry[1] == stream
                    for event in entry[2]
                ]
                expected = [
                    (ts, tuple(values))
                    for __, s, (ts, values) in arrivals
                    if s == stream
                ]
                assert logged == expected
            session.finish()


class TestHeartbeatTimer:
    class _Beatable:
        def __init__(self, fail_after=None):
            self.beats = 0
            self.fail_after = fail_after

        def heartbeat(self):
            self.beats += 1
            if self.fail_after is not None and self.beats > self.fail_after:
                raise RuntimeError("worker fleet on fire")

    def test_beats_without_data(self):
        runtime = self._Beatable()
        with HeartbeatTimer(runtime, interval=0.01) as timer:
            assert wait_until(lambda: runtime.beats >= 5, timeout=5.0)
        assert timer.beats >= 5

    def test_beat_error_reraised_on_stop(self):
        runtime = self._Beatable(fail_after=1)
        timer = HeartbeatTimer(runtime, interval=0.01).start()
        assert wait_until(lambda: timer._error is not None, timeout=5.0)
        with pytest.raises(RuntimeError, match="on fire"):
            timer.stop()

    def test_interval_validated(self):
        with pytest.raises(ServeError, match="interval"):
            HeartbeatTimer(self._Beatable(), interval=0.0)


# -- socket ingest ----------------------------------------------------------------


class TestIngest:
    def test_push_over_socket_matches_replay(self):
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        session = ServeSession(runtime)
        session.submit_register("FROM S WHERE a0 == 1", "q")
        with IngestServer(session, port=0) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                assert sorted(client.streams) == ["S", "T"]
                client.send("S", [(1, (1, 5)), (2, (0, 6))])
                client.send("T", [(3, (1, 7))])
                accepted = client.close()
            assert accepted == 3
        session.drain()
        equivalence = verify_equivalence(
            runtime.captured, session.log, SOURCES
        )
        assert equivalence["identical"]
        session.finish()

    def test_unknown_stream_reported_to_client(self):
        runtime = open_runtime(sources=SOURCES)
        session = ServeSession(runtime)
        with IngestServer(session, port=0) as server:
            host, port = server.address
            client = ServeClient(host, port)
            client.send("NOPE", [(1, (1, 2))])
            with pytest.raises(ServeError, match="unknown stream"):
                client.close()
        session.finish()

    def test_slow_client_backpressure_bounds_memory(self):
        """A fast client against a slow runtime: the server never buffers
        more than the credit window and the client observes flow control."""
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        original = runtime.process_batch

        def slow(stream, tuples):
            time.sleep(0.02)
            return original(stream, tuples)

        runtime.process_batch = slow
        session = ServeSession(runtime, queue_runs=2)
        window = 16
        total = 240
        with IngestServer(
            session, port=0, window=window, max_run=8, flush_interval=0.005
        ) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for i in range(0, total, 4):
                    client.send(
                        "S", [(ts, (ts % 3, ts)) for ts in range(i, i + 4)]
                    )
                waits = client.credit_waits
                accepted = client.close()
            stats = server.stats()
        assert accepted == total
        assert waits > 0  # the client actually blocked on credits
        assert stats["buffered_high_water"] <= window
        session.drain()
        assert session.log.events == total
        session.finish()

    def test_two_client_fairness_bounds_latency_spread(self):
        """A fast pusher must not starve a slower client's ship latency.

        The pump is saturated (one-run queue, slowed runtime); one client
        hammers S while another trickles batches on T at a much lower
        rate.  The FIFO submission turnstile admits waiting connections
        round-robin, so the slow client's per-batch ship latency is
        bounded by the pump's service time — not by the aggressor's
        backlog, which is what the pre-fairness code degenerated to.
        """
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        original = runtime.process_batch

        def slowed(stream, tuples):
            time.sleep(0.005)
            return original(stream, tuples)

        runtime.process_batch = slowed
        session = ServeSession(runtime, queue_runs=1)
        window = 16
        fast_total = 480
        slow_batches, slow_batch = 12, 16
        with IngestServer(
            session, port=0, window=window, max_run=8, flush_interval=0.002
        ) as server:
            host, port = server.address
            failures = []

            def fast_pusher():
                try:
                    with ServeClient(host, port, client_id="fast") as fast:
                        for i in range(0, fast_total, 8):
                            fast.send(
                                "S",
                                [(ts, (ts % 3, ts)) for ts in range(i, i + 8)],
                            )
                except BaseException as error:  # surfaced by the main thread
                    failures.append(error)

            latencies = []
            thread = threading.Thread(target=fast_pusher)
            with ServeClient(host, port, client_id="slow") as trickle:
                thread.start()
                time.sleep(0.05)  # let the fast client saturate the pump
                for i in range(slow_batches):
                    started = time.monotonic()
                    # Batch == window: every send first waits out the
                    # previous batch's credits, so each sample spans one
                    # full ship round-trip under contention.
                    trickle.send(
                        "T",
                        [
                            (ts, (1, ts))
                            for ts in range(
                                i * slow_batch, (i + 1) * slow_batch
                            )
                        ],
                    )
                    latencies.append(time.monotonic() - started)
            thread.join()
            stats = server.stats()
        assert not failures
        assert stats["contended_submits"] > 0  # the turnstile arbitrated
        assert max(latencies) < 1.0
        session.drain()
        assert session.log.events == fast_total + slow_batches * slow_batch
        session.finish()

    def test_client_disconnect_mid_run_keeps_accepted_events(self):
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        session = ServeSession(runtime)
        session.submit_register("FROM S WHERE a0 == 1", "q")
        # Huge flush window: events sit buffered until the disconnect.
        with IngestServer(
            session, port=0, max_run=1024, flush_interval=30.0
        ) as server:
            host, port = server.address
            client = ServeClient(host, port)
            client.send("S", [(ts, (1, ts)) for ts in range(5)])
            client.abort()  # vanish without the bye handshake
            assert wait_until(
                lambda: server.stats()["disconnects_mid_run"] == 1
            )
            assert wait_until(
                lambda: server.stats()["accepted_events"] == 5
            )
        session.drain()
        # Accepted events are real events: logged, shipped, replayable.
        assert session.log.events == 5
        equivalence = verify_equivalence(
            runtime.captured, session.log, SOURCES
        )
        assert equivalence["identical"]
        session.finish()

    def test_concurrent_lifecycle_during_live_ingest(self):
        """register/unregister race live pushes; the log's total order
        makes the outcome replayable regardless of interleaving."""
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        session = ServeSession(runtime)
        stop = threading.Event()
        errors = []

        def churn_lifecycle():
            try:
                for round_ in range(12):
                    qid = f"q{round_}"
                    session.submit_register(
                        f"FROM S WHERE a0 == {round_ % 3}", qid
                    )
                    time.sleep(0.005)
                    if round_ % 2 == 0:
                        session.submit_unregister(qid)
            except BaseException as error:  # pragma: no cover
                errors.append(error)
            finally:
                stop.set()

        with IngestServer(session, port=0, flush_interval=0.002) as server:
            host, port = server.address
            thread = threading.Thread(target=churn_lifecycle)
            with ServeClient(host, port) as client:
                thread.start()
                ts = 0
                while not stop.is_set():
                    client.send(
                        "S", [(ts + k, ((ts + k) % 3, ts + k)) for k in range(4)]
                    )
                    ts += 4
                client.close()
            thread.join()
        assert not errors
        session.drain()
        report = session.finish()
        assert report.lifecycle_ops == 12 + 6
        equivalence = verify_equivalence(
            runtime.captured, session.log, SOURCES
        )
        assert equivalence["identical"]

    def test_server_reports_credit_flow(self):
        """Credits granted == events accepted: the window is conserved."""
        runtime = open_runtime(sources=SOURCES)
        session = ServeSession(runtime)
        with IngestServer(session, port=0, window=64) as server:
            host, port = server.address
            with ServeClient(host, port) as client:
                for i in range(10):
                    client.send("S", [(i, (i % 3, i))])
                client.close()
                assert client.credits == 64  # all credits returned
        session.finish()


# -- idle-period failure detection (process mode) ---------------------------------


@pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)
class TestIdleFailureDetection:
    FAST = {"command_timeout": 0.5, "max_retries": 60, "durable": True}

    def test_heartbeat_timer_recovers_worker_with_no_data_flowing(self):
        runtime = open_runtime(
            sources=SOURCES, process=True, capture_outputs=True,
            **self.FAST,
        )
        try:
            runtime.register("FROM S WHERE a0 == 1", query_id="q")
            runtime.process_batch("S", [StreamTuple(SCHEMA, (1, 7), 1)])
            runtime.shard_stats()
            shard = runtime.shard_of("q")
            with HeartbeatTimer(runtime, interval=0.05):
                runtime._workers[shard].process.kill()
                # No data arrives; only the timer can notice the death.
                assert wait_until(
                    lambda: runtime.crash_recoveries >= 1, timeout=10.0
                )
            # The recovered worker still serves the query.
            runtime.process_batch("S", [StreamTuple(SCHEMA, (1, 8), 2)])
            runtime.shard_stats()
            assert [t.ts for t in runtime.captured["q"]] == [1, 2]
        finally:
            runtime.close()

    def test_session_pump_heartbeats_while_idle(self):
        runtime = open_runtime(
            sources=SOURCES, process=True, capture_outputs=True,
            **self.FAST,
        )
        try:
            session = ServeSession(runtime, heartbeat_interval=0.05)
            session.submit_register("FROM S WHERE a0 == 1", "q")
            session.submit_run("S", [(1, (1, 7))])
            session.drain()
            shard = runtime.shard_of("q")
            runtime._workers[shard].process.kill()
            # The pump is idle — no producers — yet recovery happens.
            assert wait_until(
                lambda: runtime.crash_recoveries >= 1, timeout=10.0
            )
            session.submit_run("S", [(2, (1, 8))])
            report = session.finish()
            assert report.heartbeats > 0
            assert [ts for ts, __ in
                    normalize_captured(runtime.captured)["q"]] == [1, 2]
        finally:
            runtime.close()


def test_arrival_log_counters():
    log = ArrivalLog()
    log.record_register("FROM S WHERE a0 == 1", "q")
    log.record_run("S", [(1, (1, 2)), (2, (0, 3))])
    log.record_run("T", [(3, (2, 4))])
    log.record_unregister("q")
    assert log.events == 3
    assert log.runs == 2
    assert len(log.entries) == 4
