"""Equivalence of every optimized m-op against the naive reference (§2.2).

The m-op semantics contract: an optimized m-op must reproduce, per output
stream, exactly the multiset of tuples the one-by-one execution of its
implemented operators produces.  Each test builds the same logical workload
twice — once left naive, once rewritten by a specific rule set — feeds both
identical input, and compares per-query output multisets.
"""

import random

import pytest

from conftest import run_plan_collect
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.rules import (
    ChannelProjectionRule,
    ChannelSelectionRule,
    ChannelSequenceRule,
    CseRule,
    FragmentAggregateRule,
    IndexedSequenceRule,
    PrecisionJoinRule,
    PredicateIndexRule,
    SharedAggregateRule,
    SharedJoinRule,
    SharedSequenceRule,
    SharedWindowSequenceRule,
)
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, last, left, lit, right
from repro.operators.iterate import Iterate
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    TruePredicate,
    conjunction,
)
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


def random_tuples(count, seed, domain=5):
    rng = random.Random(seed)
    return [
        StreamTuple(SCHEMA, (rng.randrange(domain), rng.randrange(domain)), ts)
        for ts in range(count)
    ]


def compare(build, rules, sources_for, seeds=(0, 1)):
    """Build plan twice (naive vs rules-applied); outputs must match."""
    for seed in seeds:
        naive_plan, naive_handles = build()
        naive_outputs = run_plan_collect(
            naive_plan, sources_for(naive_plan, naive_handles, seed)
        )
        optimized_plan, optimized_handles = build()
        report = Optimizer(rules).optimize(optimized_plan)
        assert report.total_applications > 0, "rule under test did not fire"
        optimized_outputs = run_plan_collect(
            optimized_plan, sources_for(optimized_plan, optimized_handles, seed)
        )
        assert naive_outputs == optimized_outputs


def single_source(plan, handles, seed):
    source = handles[0]
    return [StreamSource(plan.channel_of(source), random_tuples(300, seed))]


def two_sources(plan, handles, seed):
    s, t = handles
    return [
        StreamSource(plan.channel_of(s), random_tuples(150, seed)),
        StreamSource(
            plan.channel_of(t),
            [t_.with_ts(t_.ts * 2 + 1) for t_ in random_tuples(150, seed + 100)],
        ),
    ]


class TestPredicateIndex:
    def test_equality_selections(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            for c in range(4):
                out = plan.add_operator(
                    Selection(Comparison(attr("a"), "==", lit(c))), [s],
                    query_id=f"q{c}",
                )
                plan.mark_output(out, f"q{c}")
            return plan, [s]

        compare(build, [PredicateIndexRule()], single_source)

    def test_mixed_indexable_and_scan(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            predicates = [
                Comparison(attr("a"), "==", lit(1)),
                Comparison(attr("a"), ">", lit(2)),   # not indexable
                Comparison(attr("b"), "==", lit(3)),  # different attribute
            ]
            for i, predicate in enumerate(predicates):
                out = plan.add_operator(Selection(predicate), [s], query_id=f"q{i}")
                plan.mark_output(out, f"q{i}")
            return plan, [s]

        compare(build, [PredicateIndexRule()], single_source)


class TestSharedAggregate:
    @pytest.mark.parametrize("function", ["sum", "count", "avg", "min", "max"])
    def test_different_group_bys_and_windows(self, function):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            target = None if function == "count" else "b"
            shapes = [((), 5), (("a",), 5), (("a",), 11), ((), 23)]
            for i, (group_by, window) in enumerate(shapes):
                out = plan.add_operator(
                    SlidingWindowAggregate(
                        function, target, TimeWindow(window), group_by, "out"
                    ),
                    [s],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s]

        compare(build, [SharedAggregateRule()], single_source)


class TestSharedJoin:
    def test_same_predicate_different_windows(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            predicate = Comparison(left("a"), "==", right("a"))
            for i, window in enumerate([3, 9, 27, 81]):
                out = plan.add_operator(
                    SlidingWindowJoin(predicate, TimeWindow(window)),
                    [s, t],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [SharedJoinRule()], two_sources)

    def test_nested_loop_shared_join(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            predicate = Comparison(left("b"), "<", right("b"))
            for i, window in enumerate([4, 16]):
                out = plan.add_operator(
                    SlidingWindowJoin(predicate, TimeWindow(window)),
                    [s, t],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [SharedJoinRule()], two_sources)


class TestSharedSequence:
    def test_same_definition_multiplexed(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            predicate = conjunction(
                [DurationWithin(20), Comparison(left("a"), "==", right("a"))]
            )
            for i in range(3):
                out = plan.add_operator(
                    Sequence(predicate), [s, t], query_id=f"q{i}"
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [SharedSequenceRule()], two_sources)


class TestIndexedSequence:
    def test_constant_guarded_sequences(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            for i in range(5):
                selected = plan.add_operator(
                    Selection(Comparison(attr("a"), "==", lit(i % 3))), [s],
                    query_id=f"q{i}",
                )
                predicate = conjunction(
                    [
                        DurationWithin(10 + i),
                        Comparison(right("a"), "==", lit(i % 4)),
                    ]
                )
                out = plan.add_operator(
                    Sequence(predicate), [selected, t], query_id=f"q{i}"
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [IndexedSequenceRule()], two_sources)


class TestSharedWindowSequence:
    def test_mu_window_variants(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            correlation = Comparison(left("a"), "==", right("a"))
            rebind = conjunction(
                [correlation, Comparison(right("b"), ">", last("b"))]
            )
            for i, window in enumerate([5, 17, 41]):
                forward = conjunction([DurationWithin(window), correlation])
                out = plan.add_operator(
                    Iterate(forward, rebind), [s, t], query_id=f"q{i}"
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [SharedWindowSequenceRule()], two_sources)

    def test_non_consuming_sequence_variants(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            t = plan.add_source("T", SCHEMA)
            correlation = Comparison(left("a"), "==", right("a"))
            for i, window in enumerate([5, 29]):
                predicate = conjunction([DurationWithin(window), correlation])
                out = plan.add_operator(
                    Sequence(predicate, consume_on_match=False),
                    [s, t],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s, t]

        compare(build, [SharedWindowSequenceRule()], two_sources)

    def test_consuming_sequences_not_merged(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        correlation = Comparison(left("a"), "==", right("a"))
        for i, window in enumerate([5, 29]):
            predicate = conjunction([DurationWithin(window), correlation])
            plan.add_operator(Sequence(predicate), [s, t], query_id=f"q{i}")
        report = Optimizer([SharedWindowSequenceRule()]).optimize(plan)
        assert report.total_applications == 0


def _channel_fixture_builder(make_consumer):
    """n sharable sources, same-definition consumers (channel rules)."""

    def build():
        plan = QueryPlan()
        sources = [
            plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(3)
        ]
        for i, source in enumerate(sources):
            out = plan.add_operator(make_consumer(), [source], query_id=f"q{i}")
            plan.mark_output(out, f"q{i}")
        return plan, sources

    return build


def channel_sources(plan, handles, seed):
    """Identical content on all sharable sources (paper's optimistic case)."""
    tuples = random_tuples(300, seed)
    channel = plan.channel_of(handles[0])
    if channel.is_singleton:
        return [
            StreamSource(plan.channel_of(stream), tuples, member_streams=[stream])
            for stream in handles
        ]
    return [StreamSource(channel, tuples)]


class TestChannelSelection:
    def test_same_predicate_over_channel(self):
        build = _channel_fixture_builder(
            lambda: Selection(Comparison(attr("a"), "==", lit(2)))
        )
        compare(build, [ChannelSelectionRule()], channel_sources)


class TestChannelProjection:
    def test_same_map_over_channel(self):
        build = _channel_fixture_builder(
            lambda: Projection([("total", attr("a") + attr("b"))])
        )
        compare(build, [ChannelProjectionRule()], channel_sources)


class TestFragmentAggregate:
    @pytest.mark.parametrize("function", ["sum", "avg", "max"])
    def test_same_aggregate_over_channel(self, function):
        build = _channel_fixture_builder(
            lambda: SlidingWindowAggregate(
                function, "b", TimeWindow(7), ("a",), "out"
            )
        )
        compare(build, [FragmentAggregateRule()], channel_sources)


class TestPrecisionJoin:
    def test_left_channelized_join(self):
        def build():
            plan = QueryPlan()
            sources = [
                plan.add_source(f"S{i}", SCHEMA, sharable_label="s")
                for i in range(3)
            ]
            t = plan.add_source("T", SCHEMA)
            predicate = Comparison(left("a"), "==", right("a"))
            for i, source in enumerate(sources):
                out = plan.add_operator(
                    SlidingWindowJoin(predicate, TimeWindow(9)),
                    [source, t],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, (sources, t)

        def sources_for(plan, handles, seed):
            sources, t = handles
            result = channel_sources(plan, sources, seed)
            result.append(
                StreamSource(
                    plan.channel_of(t),
                    [x.with_ts(x.ts * 2 + 1) for x in random_tuples(150, seed + 9)],
                    member_streams=[t],
                )
            )
            return result

        compare(build, [PrecisionJoinRule()], sources_for)


class TestChannelSequence:
    @pytest.mark.parametrize("kind", ["seq", "mu"])
    def test_channelized_event_operators(self, kind):
        correlation = Comparison(left("a"), "==", right("a"))
        forward = conjunction([DurationWithin(15), correlation])
        rebind = conjunction(
            [correlation, Comparison(right("b"), ">", last("b"))]
        )

        def build():
            plan = QueryPlan()
            sources = [
                plan.add_source(f"S{i}", SCHEMA, sharable_label="s")
                for i in range(3)
            ]
            t = plan.add_source("T", SCHEMA)
            for i, source in enumerate(sources):
                operator = (
                    Sequence(forward) if kind == "seq" else Iterate(forward, rebind)
                )
                out = plan.add_operator(
                    operator, [source, t], query_id=f"q{i}"
                )
                plan.mark_output(out, f"q{i}")
            return plan, (sources, t)

        def sources_for(plan, handles, seed):
            sources, t = handles
            result = channel_sources(plan, sources, seed)
            result.append(
                StreamSource(
                    plan.channel_of(t),
                    [x.with_ts(x.ts * 2 + 1) for x in random_tuples(150, seed + 9)],
                    member_streams=[t],
                )
            )
            return result

        compare(build, [ChannelSequenceRule()], sources_for)


class TestCse:
    def test_identical_pipelines_collapse(self):
        def build():
            plan = QueryPlan()
            s = plan.add_source("S", SCHEMA)
            for i in range(3):
                filtered = plan.add_operator(
                    Selection(Comparison(attr("a"), "==", lit(1))), [s],
                    query_id=f"q{i}",
                )
                out = plan.add_operator(
                    SlidingWindowAggregate("sum", "b", TimeWindow(5), (), "s"),
                    [filtered],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            return plan, [s]

        compare(build, [CseRule()], single_source)

    def test_cse_reduces_instance_count(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for i in range(5):
            out = plan.add_operator(
                Selection(Comparison(attr("a"), "==", lit(1))), [s],
                query_id=f"q{i}",
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([CseRule()]).optimize(plan)
        assert len(plan.instances()) == 1
        # all five queries share the surviving sink stream
        [(stream, query_ids)] = plan.sink_streams()
        assert sorted(query_ids) == [f"q{i}" for i in range(5)]
