"""Golden plan shapes for the paper's canonical workloads.

These lock in what the optimizer is expected to produce — a regression guard
for rule changes: Workload 1 must collapse to the two-m-op FR/AN pipeline,
Workload 3 (channels) must ride a single capacity-k channel, and the µ
workload must land in one shared-window m-op.
"""

import pytest

from repro.mops.channel_sequence import ChannelSequenceMOp
from repro.mops.predicate_index import PredicateIndexMOp
from repro.mops.shared_sequence import IndexedSequenceMOp
from repro.mops.shared_window_sequence import SharedWindowSequenceMOp
from repro.workloads.templates import (
    Workload1,
    Workload2,
    Workload3,
    WorkloadParameters,
)


class TestWorkload1Shape:
    @pytest.fixture
    def workload(self):
        return Workload1(WorkloadParameters(num_queries=40))

    @pytest.fixture
    def plan(self, workload):
        plan, __ = workload.rumor_plan()
        return plan

    def test_two_mops_total(self, plan):
        assert len(plan.mops) == 2

    def test_fr_side_is_predicate_index(self, plan):
        kinds = {type(mop) for mop in plan.mops}
        assert PredicateIndexMOp in kinds

    def test_an_side_is_indexed_sequence(self, plan, workload):
        an_mop = next(
            mop for mop in plan.mops if isinstance(mop, IndexedSequenceMOp)
        )
        assert an_mop.index_attribute == "a0"
        # CSE collapses queries whose full (θ1, window, θ3) definition repeats
        # (cascading off the deduplicated selections); the index m-op carries
        # one instance per *distinct* query definition, multiplexing sinks.
        distinct_queries = len(
            {
                (
                    workload.theta1_constants[i],
                    workload.windows[i],
                    workload.theta3_constants[i],
                )
                for i in range(workload.params.num_queries)
            }
        )
        assert len(an_mop.instances) == distinct_queries
        assert distinct_queries < workload.params.num_queries

    def test_cse_deduplicates_selections(self, plan):
        index_mop = next(
            mop for mop in plan.mops if isinstance(mop, PredicateIndexMOp)
        )
        constants = [
            inst.operator.predicate for inst in index_mop.instances
        ]
        # after CSE every remaining selection predicate is distinct
        assert len(set(constants)) == len(constants)


class TestWorkload2Shape:
    def test_mu_collapses_to_one_shared_window_mop(self):
        plan, __ = Workload2(
            WorkloadParameters(num_queries=60), variant="mu"
        ).rumor_plan()
        assert len(plan.mops) == 1
        assert isinstance(plan.mops[0], SharedWindowSequenceMOp)

    def test_seq_groups_by_window(self):
        workload = Workload2(WorkloadParameters(num_queries=60), variant="seq")
        plan, __ = workload.rumor_plan()
        distinct_windows = len(set(workload.windows))
        # consuming ; cannot share across windows: one m-op per distinct window
        assert len(plan.mops) == distinct_windows


class TestWorkload3Shape:
    def test_single_channel_of_full_capacity(self):
        workload = Workload3(WorkloadParameters(num_queries=50), capacity=8)
        plan, name_map = workload.rumor_plan(channels=True)
        channels = {
            plan.channel_of(name_map[name]).channel_id
            for name in workload.stream_names
        }
        assert len(channels) == 1
        assert plan.channel_of(name_map["S1"]).capacity == 8

    def test_shared_definitions_channelized(self):
        """Every definition appearing on ≥2 streams is merged into a channel
        m-op; definitions unique to one stream stay naive (no sharing
        opportunity, per the Fig. 3 column picture) but still read the
        channel via the decode step."""
        workload = Workload3(WorkloadParameters(num_queries=50), capacity=8)
        plan, __ = workload.rumor_plan(channels=True)
        sequence_mops = [
            mop for mop in plan.mops if isinstance(mop, ChannelSequenceMOp)
        ]
        assert sequence_mops
        naive_definitions = [
            instance.operator.definition()
            for mop in plan.mops
            if not isinstance(mop, ChannelSequenceMOp)
            for instance in mop.instances
        ]
        for definition in naive_definitions:
            streams = {
                instance.inputs[0].stream_id
                for mop in plan.mops
                for instance in mop.instances
                if instance.operator.definition() == definition
            }
            assert len(streams) == 1  # truly nothing to merge with

    def test_plain_plan_has_no_channels(self):
        workload = Workload3(WorkloadParameters(num_queries=50), capacity=8)
        plan, __ = workload.rumor_plan(channels=False)
        assert all(channel.is_singleton for channel in plan.channels())
