"""Wire-format edge cases and ShardedRunStats aggregate math.

The schema-interning protocol has two sneaky paths the round-trip suite
does not reach: token re-registration (a decoder that outlives one encoder
generation, as happens when schema frames are replayed to a respawned
worker) and schemas whose attribute names exercise full unicode
identifiers.  ShardedRunStats' wall-vs-busy arithmetic is pinned with
synthetic inputs so the aggregate definitions cannot drift silently.
"""

import pytest

from repro.engine.metrics import RunStats
from repro.shard import WireDecoder, WireEncoder
from repro.shard.stats import ShardedRunStats, merge_run_stats
from repro.shard.wire import RUN, SCHEMA
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


def singleton(schema, name="W"):
    return Channel.singleton(StreamDef(name, schema))


class TestSchemaInterning:
    def test_interleaved_schemas_get_distinct_tokens(self):
        schema_a = Schema.of_ints("a0", "a1")
        schema_b = Schema([("load", "float"), ("name", "str")])
        channel_a = singleton(schema_a, "A")
        channel_b = singleton(schema_b, "B")
        encoder = WireEncoder()
        decoder = WireDecoder([channel_a, channel_b])
        tokens = set()
        for round_ in range(3):  # A, B, A, B, ... — no re-emission after round 0
            for channel, schema, value in (
                (channel_a, schema_a, (round_, 1)),
                (channel_b, schema_b, (0.5, "x")),
            ):
                batch = [ChannelTuple(StreamTuple(schema, value, round_), 1)]
                frames = encoder.encode_run(channel, batch)
                if round_ == 0:
                    assert frames[0][0] == SCHEMA
                    tokens.add(frames[0][1])
                else:
                    assert [frame[0] for frame in frames] == [RUN]
                out_channel, out_batch = [
                    result
                    for result in map(decoder.decode, frames)
                    if result is not None
                ][0]
                assert out_channel is channel
                assert out_batch == batch
        assert len(tokens) == 2

    def test_schema_re_registration_overwrites_token(self):
        # A respawned worker's decoder replays schema frames from scratch;
        # a token arriving twice must (re)bind cleanly, last writer wins.
        schema_a = Schema.of_ints("a0")
        schema_b = Schema.of_ints("b0", "b1")
        channel = singleton(schema_b, "W")
        decoder = WireDecoder([channel])
        decoder.decode((SCHEMA, 0, (("a0", "int"),)))
        decoder.decode((SCHEMA, 0, (("b0", "int"), ("b1", "int"))))
        __, batch = decoder.decode((RUN, channel.channel_id, 0, [(3, 1, (7, 8))]))
        assert batch[0].tuple.schema == schema_b
        assert batch[0].tuple.schema != schema_a
        assert batch[0].tuple["b1"] == 8

    def test_unicode_attribute_names_round_trip(self):
        schema = Schema([("αβγ", "int"), ("überfluß", "float"), ("データ", "str")])
        channel = singleton(schema, "Ω")
        encoder = WireEncoder()
        decoder = WireDecoder([channel])
        batch = [
            ChannelTuple(StreamTuple(schema, (1, 2.5, "せん"), 0), 1),
            ChannelTuple(StreamTuple(schema, (2, -0.5, ""), 1), 1),
        ]
        decoded = None
        for frame in encoder.encode_run(channel, batch):
            result = decoder.decode(frame)
            if result is not None:
                decoded = result
        assert decoded[1] == batch
        assert decoded[1][0].tuple["データ"] == "せん"

    def test_empty_batches_do_not_disturb_interning(self):
        schema = Schema.of_ints("a0", "a1")
        channel = singleton(schema)
        encoder = WireEncoder()
        assert encoder.encode_run(channel, []) == []
        # The schema frame still arrives with the first *real* run.
        batch = [ChannelTuple(StreamTuple(schema, (1, 2), 0), 1)]
        assert [f[0] for f in encoder.encode_run(channel, batch)] == [SCHEMA, RUN]
        assert encoder.encode_run(channel, []) == []
        assert [f[0] for f in encoder.encode_run(channel, batch)] == [RUN]

    def test_distinct_equal_schemas_intern_separately_but_decode_equal(self):
        # Two structurally equal Schema objects are interned as two tokens
        # (identity-keyed for speed); decoding must still yield equal tuples.
        schema_a = Schema.of_ints("a0")
        schema_b = Schema.of_ints("a0")
        assert schema_a == schema_b and schema_a is not schema_b
        stream = StreamDef("W", schema_a)
        channel = Channel.singleton(stream)
        encoder = WireEncoder()
        decoder = WireDecoder([channel])
        batch_a = [ChannelTuple(StreamTuple(schema_a, (1,), 0), 1)]
        batch_b = [ChannelTuple(StreamTuple(schema_b, (1,), 0), 1)]
        frames_a = encoder.encode_run(channel, batch_a)
        frames_b = encoder.encode_run(channel, batch_b)
        assert [f[0] for f in frames_a] == [SCHEMA, RUN]
        assert [f[0] for f in frames_b] == [SCHEMA, RUN]
        assert frames_a[0][1] != frames_b[0][1]  # distinct tokens
        for frames, batch in ((frames_a, batch_a), (frames_b, batch_b)):
            decoded = [r for r in map(decoder.decode, frames) if r is not None]
            assert decoded[0][1] == batch


class TestShardedRunStatsMath:
    def _stats(self, input_events, output_events, elapsed):
        stats = RunStats()
        stats.input_events = input_events
        stats.physical_input_events = input_events
        stats.output_events = output_events
        stats.elapsed_seconds = elapsed
        stats.outputs_by_query = {"q": output_events}
        return stats

    def test_busy_sums_wall_does_not(self):
        run = ShardedRunStats(
            per_shard=[self._stats(100, 10, 0.2), self._stats(50, 5, 0.3)],
            wall_seconds=0.4,
            mode="process",
        )
        assert run.busy_seconds == pytest.approx(0.5)
        assert run.wall_seconds == pytest.approx(0.4)
        # Busy exceeding wall is the signature of true parallelism; the
        # two must never be conflated by the aggregate.
        assert run.busy_seconds > run.wall_seconds

    def test_aggregate_sums_disjoint_counters(self):
        run = ShardedRunStats(
            per_shard=[self._stats(100, 10, 0.2), self._stats(50, 5, 0.3)],
            wall_seconds=0.5,
        )
        aggregate = run.aggregate
        assert aggregate.input_events == 150
        assert aggregate.output_events == 15
        assert aggregate.elapsed_seconds == pytest.approx(0.5)
        assert aggregate.outputs_by_query == {"q": 15}
        merged = merge_run_stats(run.per_shard)
        assert merged.input_events == aggregate.input_events

    def test_throughput_uses_wall_not_busy(self):
        run = ShardedRunStats(
            per_shard=[self._stats(300, 0, 1.0), self._stats(300, 0, 1.0)],
            wall_seconds=1.2,
        )
        assert run.throughput == pytest.approx(600 / 1.2)

    def test_zero_wall_guard(self):
        run = ShardedRunStats(per_shard=[self._stats(10, 1, 0.1)])
        assert run.wall_seconds == 0.0
        assert run.throughput == 0.0

    def test_empty_run(self):
        run = ShardedRunStats()
        assert run.busy_seconds == 0.0
        assert run.aggregate.input_events == 0
        assert "0 shards" in str(run)
