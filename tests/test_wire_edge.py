"""Wire-format edge cases and ShardedRunStats aggregate math.

The schema-interning protocol has two sneaky paths the round-trip suite
does not reach: token re-registration (a decoder that outlives one encoder
generation, as happens when schema frames are replayed to a respawned
worker) and schemas whose attribute names exercise full unicode
identifiers.  ShardedRunStats' wall-vs-busy arithmetic is pinned with
synthetic inputs so the aggregate definitions cannot drift silently.

The columnar data plane rides the same wire: the property suite here
proves, over random runs (mixed value types, None, unicode, bools,
int64-overflowing ints, per-row masks), that the three data transports —
pickle ``run`` frames, ``crun`` queue frames and packed ring records —
decode to byte-identical rows, and that malformed frames of every kind
fail loudly as :class:`~repro.errors.ChannelError`.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.metrics import RunStats
from repro.errors import ChannelError
from repro.shard import WireDecoder, WireEncoder
from repro.shard.ring import RingBuffer
from repro.shard.stats import ShardedRunStats, merge_run_stats
from repro.shard.wire import (
    CRUN,
    RUN,
    SCHEMA,
    SCHEMA_RETIRE,
    decode_command,
    pack_run_record,
    unpack_run_record,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import ColumnBatch
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


def singleton(schema, name="W"):
    return Channel.singleton(StreamDef(name, schema))


class TestSchemaInterning:
    def test_interleaved_schemas_get_distinct_tokens(self):
        schema_a = Schema.of_ints("a0", "a1")
        schema_b = Schema([("load", "float"), ("name", "str")])
        channel_a = singleton(schema_a, "A")
        channel_b = singleton(schema_b, "B")
        encoder = WireEncoder()
        decoder = WireDecoder([channel_a, channel_b])
        tokens = set()
        for round_ in range(3):  # A, B, A, B, ... — no re-emission after round 0
            for channel, schema, value in (
                (channel_a, schema_a, (round_, 1)),
                (channel_b, schema_b, (0.5, "x")),
            ):
                batch = [ChannelTuple(StreamTuple(schema, value, round_), 1)]
                frames = encoder.encode_run(channel, batch)
                if round_ == 0:
                    assert frames[0][0] == SCHEMA
                    tokens.add(frames[0][1])
                else:
                    assert [frame[0] for frame in frames] == [RUN]
                out_channel, out_batch = [
                    result
                    for result in map(decoder.decode, frames)
                    if result is not None
                ][0]
                assert out_channel is channel
                assert out_batch == batch
        assert len(tokens) == 2

    def test_schema_re_registration_overwrites_token(self):
        # A respawned worker's decoder replays schema frames from scratch;
        # a token arriving twice must (re)bind cleanly, last writer wins.
        schema_a = Schema.of_ints("a0")
        schema_b = Schema.of_ints("b0", "b1")
        channel = singleton(schema_b, "W")
        decoder = WireDecoder([channel])
        decoder.decode((SCHEMA, 0, (("a0", "int"),)))
        decoder.decode((SCHEMA, 0, (("b0", "int"), ("b1", "int"))))
        __, batch = decoder.decode((RUN, channel.channel_id, 0, [(3, 1, (7, 8))]))
        assert batch[0].tuple.schema == schema_b
        assert batch[0].tuple.schema != schema_a
        assert batch[0].tuple["b1"] == 8

    def test_unicode_attribute_names_round_trip(self):
        schema = Schema([("αβγ", "int"), ("überfluß", "float"), ("データ", "str")])
        channel = singleton(schema, "Ω")
        encoder = WireEncoder()
        decoder = WireDecoder([channel])
        batch = [
            ChannelTuple(StreamTuple(schema, (1, 2.5, "せん"), 0), 1),
            ChannelTuple(StreamTuple(schema, (2, -0.5, ""), 1), 1),
        ]
        decoded = None
        for frame in encoder.encode_run(channel, batch):
            result = decoder.decode(frame)
            if result is not None:
                decoded = result
        assert decoded[1] == batch
        assert decoded[1][0].tuple["データ"] == "せん"

    def test_empty_batches_do_not_disturb_interning(self):
        schema = Schema.of_ints("a0", "a1")
        channel = singleton(schema)
        encoder = WireEncoder()
        assert encoder.encode_run(channel, []) == []
        # The schema frame still arrives with the first *real* run.
        batch = [ChannelTuple(StreamTuple(schema, (1, 2), 0), 1)]
        assert [f[0] for f in encoder.encode_run(channel, batch)] == [SCHEMA, RUN]
        assert encoder.encode_run(channel, []) == []
        assert [f[0] for f in encoder.encode_run(channel, batch)] == [RUN]

    def test_distinct_equal_schemas_intern_separately_but_decode_equal(self):
        # Two structurally equal Schema objects are interned as two tokens
        # (identity-keyed for speed); decoding must still yield equal tuples.
        schema_a = Schema.of_ints("a0")
        schema_b = Schema.of_ints("a0")
        assert schema_a == schema_b and schema_a is not schema_b
        stream = StreamDef("W", schema_a)
        channel = Channel.singleton(stream)
        encoder = WireEncoder()
        decoder = WireDecoder([channel])
        batch_a = [ChannelTuple(StreamTuple(schema_a, (1,), 0), 1)]
        batch_b = [ChannelTuple(StreamTuple(schema_b, (1,), 0), 1)]
        frames_a = encoder.encode_run(channel, batch_a)
        frames_b = encoder.encode_run(channel, batch_b)
        assert [f[0] for f in frames_a] == [SCHEMA, RUN]
        assert [f[0] for f in frames_b] == [SCHEMA, RUN]
        assert frames_a[0][1] != frames_b[0][1]  # distinct tokens
        for frames, batch in ((frames_a, batch_a), (frames_b, batch_b)):
            decoded = [r for r in map(decoder.decode, frames) if r is not None]
            assert decoded[0][1] == batch


class TestShardedRunStatsMath:
    def _stats(self, input_events, output_events, elapsed):
        stats = RunStats()
        stats.input_events = input_events
        stats.physical_input_events = input_events
        stats.output_events = output_events
        stats.elapsed_seconds = elapsed
        stats.outputs_by_query = {"q": output_events}
        return stats

    def test_busy_sums_wall_does_not(self):
        run = ShardedRunStats(
            per_shard=[self._stats(100, 10, 0.2), self._stats(50, 5, 0.3)],
            wall_seconds=0.4,
            mode="process",
        )
        assert run.busy_seconds == pytest.approx(0.5)
        assert run.wall_seconds == pytest.approx(0.4)
        # Busy exceeding wall is the signature of true parallelism; the
        # two must never be conflated by the aggregate.
        assert run.busy_seconds > run.wall_seconds

    def test_aggregate_sums_disjoint_counters(self):
        run = ShardedRunStats(
            per_shard=[self._stats(100, 10, 0.2), self._stats(50, 5, 0.3)],
            wall_seconds=0.5,
        )
        aggregate = run.aggregate
        assert aggregate.input_events == 150
        assert aggregate.output_events == 15
        assert aggregate.elapsed_seconds == pytest.approx(0.5)
        assert aggregate.outputs_by_query == {"q": 15}
        merged = merge_run_stats(run.per_shard)
        assert merged.input_events == aggregate.input_events

    def test_throughput_uses_wall_not_busy(self):
        run = ShardedRunStats(
            per_shard=[self._stats(300, 0, 1.0), self._stats(300, 0, 1.0)],
            wall_seconds=1.2,
        )
        assert run.throughput == pytest.approx(600 / 1.2)

    def test_zero_wall_guard(self):
        run = ShardedRunStats(per_shard=[self._stats(10, 1, 0.1)])
        assert run.wall_seconds == 0.0
        assert run.throughput == 0.0

    def test_empty_run(self):
        run = ShardedRunStats()
        assert run.busy_seconds == 0.0
        assert run.aggregate.input_events == 0
        assert "0 shards" in str(run)


# -- columnar data plane -------------------------------------------------------------

INT64_MIN, INT64_MAX = -(1 << 63), (1 << 63) - 1

#: Per-cell values spanning every packing class: in-range ints (packed
#: 'q'), floats (packed 'd'), and the object-column fallbacks — bools
#: (deliberately *not* packed as ints), int64-overflowing ints, unicode
#: strings and None.  NaN is excluded so row equality stays meaningful;
#: byte identity is asserted via pickled fingerprints on top.
cell_values = st.one_of(
    st.integers(INT64_MIN, INT64_MAX),
    st.integers(INT64_MAX + 1, INT64_MAX + (1 << 16)),
    st.booleans(),
    st.floats(allow_nan=False),
    st.text(max_size=6),
    st.none(),
)


@st.composite
def packable_runs(draw):
    """A run of channel tuples sharing one schema, random per-row masks."""
    width = draw(st.integers(1, 4))
    count = draw(st.integers(1, 25))
    schema = Schema.of_ints(*[f"c{i}" for i in range(width)])
    uniform = draw(st.booleans())
    shared_mask = draw(st.integers(1, INT64_MAX))
    rows = []
    for ts in range(count):
        values = tuple(draw(cell_values) for __ in range(width))
        mask = shared_mask if uniform else draw(st.integers(1, INT64_MAX))
        rows.append(ChannelTuple(StreamTuple(schema, values, ts), mask))
    return schema, rows


def _fingerprint(rows):
    """Byte-exact content digest: each cell pickled *separately*, so a
    bool decoding as 1, or an int as 1.0, breaks the fingerprint even
    though ``==`` would pass.  Per-cell pickling keeps the digest free of
    cross-cell memoization (two cells sharing one str object is an
    accident of construction, not part of the wire contract)."""
    return [
        (
            ct.membership,
            ct.tuple.ts,
            tuple(pickle.dumps(value) for value in ct.tuple.values),
        )
        for ct in rows
    ]


def _drain(frames, decoder):
    decoded = [r for r in map(decoder.decode, frames) if r is not None]
    assert len(decoded) == 1
    return decoded[0]


class TestColumnarTransportProperty:
    @given(run=packable_runs())
    @settings(max_examples=60, deadline=None)
    def test_three_transports_decode_byte_identical(self, run):
        schema, rows = run
        channel = singleton(schema)
        oracle = _fingerprint(rows)
        # Pickle wire (the oracle transport).
        __, pickle_rows = _drain(
            WireEncoder().encode_run(channel, rows), WireDecoder([channel])
        )
        assert _fingerprint(pickle_rows) == oracle
        # Columnar packing must accept every single-schema run.
        packed = ColumnBatch.from_channel_tuples(rows)
        assert packed is not None
        encoder = WireEncoder()
        decoder = WireDecoder([channel])
        frames = encoder.encode_run_columns(channel, packed)
        # crun queue frame.
        __, crun_batch = _drain(frames, decoder)
        assert _fingerprint(crun_batch.channel_tuples()) == oracle
        # Packed ring record (the actual byte codec).
        token = frames[-1][2]
        parts, total = pack_run_record(channel.channel_id, token, packed)
        record = b"".join(bytes(part) for part in parts)
        assert len(record) == total
        __, ring_batch = decoder.decode_ring(record)
        assert _fingerprint(ring_batch.channel_tuples()) == oracle
        assert ring_batch.channel_tuples() == rows

    @given(run=packable_runs(), cut=st.integers(0, 24))
    @settings(max_examples=25, deadline=None)
    def test_slice_and_take_rows_preserve_content(self, run, cut):
        schema, rows = run
        packed = ColumnBatch.from_channel_tuples(rows)
        cut = min(cut, packed.count)
        head = packed.slice(0, cut).channel_tuples()
        tail = packed.slice(cut, packed.count).channel_tuples()
        assert _fingerprint(head + tail) == _fingerprint(rows)
        reversed_rows = packed.take_rows(
            list(range(packed.count - 1, -1, -1))
        ).channel_tuples()
        assert _fingerprint(reversed_rows) == _fingerprint(rows[::-1])

    def test_mixed_schema_runs_stay_on_the_pickle_wire(self):
        schema_a = Schema.of_ints("a0")
        schema_b = Schema.of_ints("a0")  # equal but distinct object
        rows = [
            ChannelTuple(StreamTuple(schema_a, (1,), 0), 1),
            ChannelTuple(StreamTuple(schema_b, (2,), 1), 1),
        ]
        assert ColumnBatch.from_channel_tuples(rows) is None
        assert ColumnBatch.from_rows(schema_a, [ct.tuple for ct in rows], 1) is None

    def test_oversized_mask_falls_back(self):
        schema = Schema.of_ints("a0")
        rows = [ChannelTuple(StreamTuple(schema, (1,), 0), 1 << 70)]
        assert ColumnBatch.from_channel_tuples(rows) is None

    def test_bools_survive_as_bools(self):
        schema = Schema.of_ints("flag", "n")
        channel = singleton(schema)
        rows = [ChannelTuple(StreamTuple(schema, (True, 1), 0), 1)]
        packed = ColumnBatch.from_channel_tuples(rows)
        # The flag column must be an object column: int64 packing would
        # conflate True with 1 (== equal, not byte-identical).
        assert packed.columns[0][0] == "o"
        assert packed.columns[1][0] == "q"
        out = packed.channel_tuples()[0].tuple.values
        assert out[0] is True and type(out[1]) is int

    def test_empty_run_is_not_packable(self):
        schema = Schema.of_ints("a0")
        assert ColumnBatch.from_channel_tuples([]) is None
        assert ColumnBatch.from_rows(schema, [], 1) is None


class TestMalformedFramesFailLoudly:
    def setup_method(self):
        self.schema = Schema.of_ints("a0", "a1")
        self.channel = singleton(self.schema)
        self.decoder = WireDecoder([self.channel])
        encoder = WireEncoder()
        batch = [ChannelTuple(StreamTuple(self.schema, (1, 2), 0), 1)]
        frames = encoder.encode_run(self.channel, batch)
        for frame in frames:
            self.decoder.decode(frame)
        self.token = frames[0][1]  # the schema frame's token

    def test_short_run_entry_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed wire run entry"):
            self.decoder.decode(
                (RUN, self.channel.channel_id, self.token, [(1, 2)])
            )

    def test_long_run_entry_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed wire run entry"):
            self.decoder.decode(
                (RUN, self.channel.channel_id, self.token, [(1, 1, (1, 2), 0, "x")])
            )

    def test_non_sequence_run_entry_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed wire run entry"):
            self.decoder.decode(
                (RUN, self.channel.channel_id, self.token, [17])
            )

    def test_short_command_frame_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed command frame"):
            decode_command(("stats",))

    def test_non_tuple_command_frame_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed command frame"):
            decode_command("stats")

    def test_malformed_crun_payload_raises_channel_error(self):
        with pytest.raises(ChannelError, match="malformed columnar run"):
            self.decoder.decode(
                (CRUN, self.channel.channel_id, self.token, (1, 2))
            )

    def test_truncated_ring_record_raises_channel_error(self):
        with pytest.raises(ChannelError):
            unpack_run_record(b"\x01\x02\x03")

    def test_garbage_ring_record_raises_channel_error(self):
        batch = ColumnBatch.from_channel_tuples(
            [ChannelTuple(StreamTuple(self.schema, (1, 2), 0), 1)]
        )
        parts, total = pack_run_record(
            self.channel.channel_id, self.token, batch
        )
        record = b"".join(bytes(part) for part in parts)
        with pytest.raises(ChannelError):
            unpack_run_record(record[: total - 3])

    def test_unknown_schema_token_raises_channel_error(self):
        with pytest.raises(ChannelError, match="unknown schema"):
            self.decoder.decode(
                (CRUN, self.channel.channel_id, self.token + 999, (0, None, 1, ()))
            )


class TestSchemaRetireSoak:
    def test_interning_stays_bounded_under_schema_churn(self):
        """The satellite-2 soak: one schema generation per round, retired
        each round — encoder table, replay prefix and decoder table all
        stay at the live-schema count while tokens stay monotonic."""
        encoder = WireEncoder()
        decoder = WireDecoder([])
        tokens_seen = []
        for round_ in range(64):
            schema = Schema.of_ints("a0", "a1")
            channel = singleton(schema, f"W{round_}")
            decoder.add_channel(channel)
            batch = [ChannelTuple(StreamTuple(schema, (round_, 1), 0), 1)]
            frames = encoder.encode_run(channel, batch)
            assert frames[0][0] == SCHEMA
            tokens_seen.append(frames[0][1])
            __, decoded = _drain(frames, decoder)
            assert decoded == batch
            assert encoder.interned_schemas == 1
            retire = encoder.retire_schemas([])
            assert retire == (SCHEMA_RETIRE, (tokens_seen[-1],))
            assert decoder.decode(retire) is None
            assert encoder.interned_schemas == 0
            assert encoder.schema_frames() == []
            with pytest.raises(ChannelError, match="unknown schema"):
                decoder.decode(
                    (RUN, channel.channel_id, tokens_seen[-1], [(0, 1, (1, 2))])
                )
        # Tokens are never reused: retirement cannot alias in-flight frames.
        assert len(set(tokens_seen)) == 64
        assert tokens_seen == sorted(tokens_seen)

    def test_retire_keeps_live_schemas_and_their_frames(self):
        live_schema = Schema.of_ints("keep")
        dead_schema = Schema.of_ints("drop")
        live_channel = singleton(live_schema, "L")
        dead_channel = singleton(dead_schema, "D")
        encoder = WireEncoder()
        encoder.encode_run(
            live_channel, [ChannelTuple(StreamTuple(live_schema, (1,), 0), 1)]
        )
        encoder.encode_run(
            dead_channel, [ChannelTuple(StreamTuple(dead_schema, (2,), 0), 1)]
        )
        assert encoder.interned_schemas == 2
        frame = encoder.retire_schemas([live_schema])
        assert frame is not None and len(frame[1]) == 1
        replay = encoder.schema_frames()
        assert len(replay) == 1
        assert replay[0][2] == (("keep", "int"),)
        # Nothing left to retire; a reappearing schema re-interns fresh.
        assert encoder.retire_schemas([live_schema]) is None
        frames = encoder.encode_run(
            dead_channel, [ChannelTuple(StreamTuple(dead_schema, (3,), 0), 1)]
        )
        assert frames[0][0] == SCHEMA
        assert frames[0][1] not in frame[1]  # fresh token, never reused


class TestRingBuffer:
    def _record(self, payload: bytes):
        return [payload], len(payload)

    def test_write_read_round_trip_with_wraparound(self):
        ring = RingBuffer(capacity=64)
        for round_ in range(40):  # 40 * 24 bytes forces many wraps
            payload = bytes([round_ % 251]) * 24
            parts, total = self._record(payload)
            assert ring.try_write(parts, total)
            assert ring.used == total
            assert ring.read(total) == payload
            assert ring.used == 0

    def test_multi_part_record_spans_the_boundary(self):
        ring = RingBuffer(capacity=32)
        assert ring.try_write([b"x" * 20], 20)
        assert ring.read(20) == b"x" * 20
        # Next record starts at offset 20 and wraps.
        parts = [b"abc", b"defghij", b"k" * 14]
        assert ring.try_write(parts, 24)
        assert ring.read(24) == b"abcdefghij" + b"k" * 14

    def test_full_ring_returns_false_not_blocks(self):
        ring = RingBuffer(capacity=32)
        assert ring.try_write([b"a" * 30], 30)
        assert not ring.try_write([b"b" * 10], 10, wait_seconds=0.01)
        # Space reclaimed by the reader makes the same write succeed.
        ring.read(30)
        assert ring.try_write([b"b" * 10], 10)

    def test_oversized_record_rejected_without_waiting(self):
        ring = RingBuffer(capacity=16)
        assert not ring.try_write([b"z" * 17], 17, wait_seconds=10.0)
        assert ring.used == 0

    def test_read_returns_owned_bytes(self):
        ring = RingBuffer(capacity=64)
        ring.try_write([b"hello"], 5)
        first = ring.read(5)
        ring.try_write([b"world"], 5)
        assert first == b"hello"  # unaffected by later writes

    def test_state_round_trip_rebuilds_view_over_shared_arena(self):
        # The spawn-style hop serializes via __getstate__ (the memoryview
        # cannot cross); __setstate__ rebuilds it over the *same* arena,
        # so a clone writes bytes the original reads.
        ring = RingBuffer(capacity=64)
        state = ring.__getstate__()
        assert "_view" not in state
        clone = RingBuffer.__new__(RingBuffer)
        clone.__setstate__(state)
        assert clone.try_write([b"abc"], 3)
        assert ring.read(3) == b"abc"
