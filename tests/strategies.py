"""Shared hypothesis strategies and plan/workload builders.

Extracted from the ad-hoc generators of ``test_batch_equivalence.py`` so
every equivalence suite — batched vs per-tuple, sharded-engine, and the
process-mode runtime — draws from the same distribution of plans, event
interleavings and churn schedules.

Strategies generate plain data (event entry tuples, workload parameters);
builders turn them into plans / StreamTuples.  Keeping the two separate
lets hypothesis shrink on the data while the builders stay deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass

from hypothesis import strategies as st

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.errors import LifecycleError
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.shard.proc import WorkerFaults
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import TEMPLATES, ChurnWorkload, drive_sharded

#: The two-attribute schema every generated event uses.
EVENT_SCHEMA = Schema.of_ints("a0", "a1")

#: Batch-size axis shared by the batched / sharded / process suites.
max_batches = st.integers(1, 16)


def event_entries(
    n_streams: int = 2,
    min_size: int = 1,
    max_size: int = 40,
    a0_max: int = 3,
    a1_max: int = 5,
):
    """Random event interleavings as ``(stream index, a0, a1)`` entries.

    Timestamps are implicit: entry ``i`` fires at ts ``i``, so the global
    order is total and identical however the entries are later split into
    per-stream sources.
    """
    return st.lists(
        st.tuples(
            st.integers(0, n_streams - 1),
            st.integers(0, a0_max),
            st.integers(0, a1_max),
        ),
        min_size=min_size,
        max_size=max_size,
    )


def split_entries(
    entries, n_streams: int, schema: Schema = EVENT_SCHEMA
) -> list[list[StreamTuple]]:
    """Turn entry tuples into per-stream StreamTuple lists (ts = position)."""
    by_stream: list[list[StreamTuple]] = [[] for __ in range(n_streams)]
    for ts, (target, a0, a1) in enumerate(entries):
        by_stream[target].append(StreamTuple(schema, (a0, a1), ts))
    return by_stream


# -- plan builders ------------------------------------------------------------------


def mixed_plan():
    """Selections (→ predicate index) + a sequence + a multi-query sink."""
    schema = EVENT_SCHEMA
    plan = QueryPlan()
    s = plan.add_source("S", schema)
    t = plan.add_source("T", schema)
    sel1 = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="q_sel1"
    )
    plan.mark_output(sel1, "q_sel1")
    sel2 = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(2))), [s], query_id="q_sel2"
    )
    plan.mark_output(sel2, "q_sel2")
    seq = plan.add_operator(
        Sequence(
            conjunction(
                [DurationWithin(6), Comparison(right("a0"), "==", lit(1))]
            )
        ),
        [sel1, t],
        query_id="q_seq",
    )
    plan.mark_output(seq, "q_seq")
    Optimizer().optimize(plan)
    return plan, (s, t)


def two_component_plan():
    """The mixed plan (S, T component) plus an independent U component."""
    schema = EVENT_SCHEMA
    plan = QueryPlan()
    s = plan.add_source("S", schema)
    t = plan.add_source("T", schema)
    u = plan.add_source("U", schema)
    sel1 = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="q_sel1"
    )
    plan.mark_output(sel1, "q_sel1")
    sel2 = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(2))), [s], query_id="q_sel2"
    )
    plan.mark_output(sel2, "q_sel2")
    seq = plan.add_operator(
        Sequence(
            conjunction(
                [DurationWithin(6), Comparison(right("a0"), "==", lit(1))]
            )
        ),
        [sel1, t],
        query_id="q_seq",
    )
    plan.mark_output(seq, "q_seq")
    other = plan.add_operator(
        Selection(Comparison(attr("a0"), ">", lit(0))), [u], query_id="q_u"
    )
    plan.mark_output(other, "q_u")
    Optimizer().optimize(plan)
    return plan, (s, t, u)


# -- churn schedules ----------------------------------------------------------------


def churn_workloads(
    max_horizon: int = 400,
    min_initial: int = 4,
    max_initial: int = 7,
    templates: tuple = TEMPLATES,
):
    """Random-but-reproducible Poisson churn schedules (small, CI-sized).

    Every draw is a fully deterministic :class:`ChurnWorkload` — the
    randomness lives in the drawn parameters and seed, so failures shrink
    to a concrete reproducible workload.  ``templates`` selects the query
    pool (the checkpoint suites pass the 4-template pool including the
    stateful ``join`` family).
    """
    return st.builds(
        ChurnWorkload,
        arrival_rate=st.sampled_from([0.02, 0.04, 0.06]),
        mean_lifetime=st.sampled_from([80.0, 150.0, 300.0]),
        horizon=st.sampled_from([max(200, max_horizon - 200), max_horizon]),
        initial_queries=st.integers(min_initial, max_initial),
        seed=st.integers(0, 10_000),
        templates=st.just(tuple(templates)),
    )


# -- crash schedules ----------------------------------------------------------------


@dataclass(frozen=True)
class CrashSchedule:
    """A seeded crash point × checkpoint interval for one durable serve.

    ``kind`` names what the doomed worker is doing when it dies: ``"data"``
    (mid-stream, between two run frames — no RPC is watching), a lifecycle
    command (``"register"`` / ``"unregister"``), or ``"checkpoint"`` (the
    crash lands mid-snapshot).  ``when="after"`` is the nastier half-open
    window: the work is applied but the reply never leaves.  ``occurrence``
    is the 1-based count of that kind on the target shard — crash points
    past the end of a short schedule simply never fire, which is itself a
    valid draw (the checkpointed serve must stay byte-identical with zero
    crashes too).
    """

    shard: int
    kind: str
    occurrence: int
    when: str
    checkpoint_every: int  # batches between checkpoint rounds; 0 = WAL only

    def worker_faults(self) -> dict:
        return {
            self.shard: WorkerFaults(
                crash_on=(self.kind, self.occurrence), when=self.when
            )
        }


def crash_schedules(
    n_shards: int = 2,
    max_occurrence: int = 40,
    checkpoint_intervals: tuple = (0, 4, 16),
):
    """Seeded crash points × checkpoint intervals (pair with
    :func:`churn_workloads` for the full crash × churn product)."""
    return st.builds(
        CrashSchedule,
        shard=st.integers(0, n_shards - 1),
        kind=st.sampled_from(["data", "register", "unregister", "checkpoint"]),
        occurrence=st.integers(1, max_occurrence),
        when=st.sampled_from(["before", "after"]),
        checkpoint_every=st.sampled_from(checkpoint_intervals),
    )


@dataclass(frozen=True)
class CoordinatorCrashSchedule:
    """A seeded *coordinator* death × checkpoint interval for one serve.

    ``point`` names what the coordinator is doing when it dies: ``"batch"``
    (around the journal append of a data chunk — ``when="before"`` loses
    the chunk entirely, ``"after"`` journals it but never ships it),
    ``"register"`` / ``"unregister"`` (around the lifecycle journal
    append; the worker already applied the command, so ``"before"`` leaves
    a worker ahead of the journal), or ``"ckpt-round"`` (right after a
    checkpoint round is initiated — replies will never be collected).
    Occurrences past the end of a short serve never fire; a draw that
    never fires must still end byte-identical.
    """

    point: str
    occurrence: int
    when: str
    checkpoint_every: int

    def coordinator_faults(self):
        from repro.shard.coordlog import CoordinatorFaults

        return CoordinatorFaults(
            crash_on=(self.point, self.occurrence), when=self.when
        )


def coordinator_crash_schedules(
    max_occurrence: int = 40,
    checkpoint_intervals: tuple = (2, 4, 16),
):
    """Seeded coordinator crash points × checkpoint intervals.

    The ``ckpt-round`` point only has a ``"before"`` window (the round is
    enqueued or it is not), so ``when`` is forced there.
    """

    def build(point, occurrence, when, checkpoint_every):
        if point == "ckpt-round":
            when = "before"
        return CoordinatorCrashSchedule(
            point=point,
            occurrence=occurrence,
            when=when,
            checkpoint_every=checkpoint_every,
        )

    return st.builds(
        build,
        point=st.sampled_from(
            ["batch", "register", "unregister", "ckpt-round"]
        ),
        occurrence=st.integers(1, max_occurrence),
        when=st.sampled_from(["before", "after"]),
        checkpoint_every=st.sampled_from(checkpoint_intervals),
    )


def serve_churn_with_rebalance(runtime, workload: ChurnWorkload, rebalance_after: int):
    """Drive a churn schedule with one deterministic mid-stream rebalance.

    From applied lifecycle event ``rebalance_after`` onwards, the first
    boundary where the most- and least-loaded shards differ moves one
    query's component between them (exactly once).  The decision depends
    only on ``shard_loads``/``queries_on``, which the in-process and
    process-mode runtimes expose identically — so serving the same
    workload through both produces the same move, and their outputs can
    be compared byte-for-byte.

    Returns ``(applied lifecycle events, moved query ids)``.
    """
    applied = 0
    moved: list[str] = []
    for __ in drive_sharded(
        runtime, workload.stream_events(), workload.schedule()
    ):
        applied += 1
        if moved or applied < rebalance_after:
            continue
        loads = runtime.shard_loads()
        donor = max(range(len(loads)), key=lambda i: (loads[i], -i))
        target = min(range(len(loads)), key=lambda i: (loads[i], i))
        if donor == target:
            continue
        for query_id in list(runtime.queries_on(donor)):
            try:
                result = runtime.rebalance(query_id, target)
            except LifecycleError:
                continue
            moved = sorted(
                result if isinstance(result, list) else result.query_ids
            )
            break
    return applied, moved
