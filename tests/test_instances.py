"""Unit tests for the instance store backing ``;`` / ``µ`` / automata."""

from repro.operators.instances import Instance, InstanceStore
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("k")


def make_instance(ts, key=None, mask=1):
    return Instance(StreamTuple(SCHEMA, (key or 0,), ts), key=key, mask=mask)


class TestUnindexedStore:
    def test_insert_and_scan(self):
        store = InstanceStore(indexed=False)
        first, second = make_instance(0), make_instance(1)
        store.insert(first)
        store.insert(second)
        assert list(store.scan()) == [first, second]
        assert len(store) == 2

    def test_kill_removes_from_scan(self):
        store = InstanceStore(indexed=False)
        first, second = make_instance(0), make_instance(1)
        store.insert(first)
        store.insert(second)
        store.kill(first)
        assert list(store.scan()) == [second]
        assert len(store) == 1

    def test_double_kill_counts_once(self):
        store = InstanceStore(indexed=False)
        instance = make_instance(0)
        store.insert(instance)
        store.kill(instance)
        store.kill(instance)
        assert len(store) == 0

    def test_expire_by_start_ts(self):
        store = InstanceStore(indexed=False)
        old, new = make_instance(0), make_instance(10)
        store.insert(old)
        store.insert(new)
        store.expire(5)
        assert list(store.scan()) == [new]
        assert not old.alive


class TestIndexedStore:
    def test_probe_by_key(self):
        store = InstanceStore(indexed=True)
        a = make_instance(0, key=1)
        b = make_instance(1, key=2)
        store.insert(a)
        store.insert(b)
        assert list(store.probe(1)) == [a]
        assert list(store.probe(2)) == [b]
        assert list(store.probe(3)) == []

    def test_probe_skips_dead(self):
        store = InstanceStore(indexed=True)
        a = make_instance(0, key=1)
        b = make_instance(1, key=1)
        store.insert(a)
        store.insert(b)
        store.kill(a)
        assert list(store.probe(1)) == [b]

    def test_expired_instances_not_probed(self):
        store = InstanceStore(indexed=True)
        old = make_instance(0, key=1)
        new = make_instance(10, key=1)
        store.insert(old)
        store.insert(new)
        store.expire(5)
        assert list(store.probe(1)) == [new]

    def test_empty_bucket_cleaned_on_probe(self):
        store = InstanceStore(indexed=True)
        a = make_instance(0, key=1)
        store.insert(a)
        store.kill(a)
        assert list(store.probe(1)) == []
        # second probe takes the fast path (bucket removed)
        assert list(store.probe(1)) == []

    def test_mask_carried(self):
        instance = make_instance(0, key=1, mask=0b101)
        assert instance.mask == 0b101
