"""Crash-recovery equivalence: restore + replay is byte-identical.

The acceptance contract of the durable checkpoint subsystem: under
deterministic worker crashes at arbitrary points — mid-batch (between two
data frames, where no RPC is watching), mid-lifecycle, mid-checkpoint —
a durable :class:`ProcessShardedRuntime`'s captured outputs, per-query
counters and operator state after recovery are **byte-identical** to a
fault-free in-process :class:`ShardedRuntime` serving the same schedule.

Two layers:

- a hypothesis property over the full product of random churn schedules ×
  seeded crash points × checkpoint intervals (``strategies.crash_schedules``
  — satellite of ISSUE 5), with the 4-template query pool so sequences,
  shared aggregates *and* joins ride through restores;
- deterministic per-family tests (window sequence / shared aggregate /
  join / merged shapes) pinning a mid-stream crash with a known checkpoint
  cadence, plus recovery-report assertions closing the PR-4 silent-loss
  gap: state loss is now structured, logged and test-visible.
"""

import pytest
from hypothesis import given, settings

from repro.shard import ProcessShardedRuntime, ShardedRuntime, WorkerFaults, fork_available
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import drive_sharded
from strategies import churn_workloads, crash_schedules

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.of_ints("a0", "a1")
FAST = {"command_timeout": 0.25, "max_retries": 60}

#: One representative query per stateful operator family (ISSUE 5 demands
#: window sequence, shared aggregate and join at minimum).
FAMILIES = {
    "window-sequence": [
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP"
    ],
    "shared-aggregate": [
        "FROM S AGG sum(a1) OVER 30 BY a0 AS m",
        "FROM S AGG sum(a1) OVER 50 AS total",
    ],
    "join": ["FROM S JOIN T ON left.a0 == right.a0 WITHIN 20"],
    "iterate": [
        "FROM S MU T FORWARD left.a0 == right.a0 REBIND right.a1 >= last.a1"
    ],
    "merged-sequence": [
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP",
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP",
    ],
}

ALL_TEMPLATES = ("select", "sequence", "aggregate", "join")


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


def settle(proc: ProcessShardedRuntime):
    """Force crash detection: data frames are fire-and-forget, so a worker
    killed mid-stream is only provably dead after a synchronous RPC has
    drained its queue (the STATS round-trip blocks until the worker either
    answers or is reaped)."""
    return proc.collect_stats()


def assert_identical(proc: ProcessShardedRuntime, reference: ShardedRuntime):
    stats = settle(proc)
    assert proc.captured == reference.captured
    assert stats.outputs_by_query == reference.stats.outputs_by_query
    assert stats.input_events == reference.stats.input_events
    assert stats.output_events == reference.stats.output_events
    assert sorted(proc.active_queries) == sorted(reference.active_queries)
    assert proc.state_size == reference.state_size


class TestCrashRecoveryProperty:
    @given(
        workload=churn_workloads(max_horizon=300, templates=ALL_TEMPLATES),
        crash=crash_schedules(),
    )
    @settings(max_examples=5, deadline=None)
    def test_durable_serve_survives_seeded_crashes(self, workload, crash):
        """Random churn × crash point × checkpoint interval: the durable
        process serve ends byte-identical to the fault-free in-process one,
        whether or not the drawn crash actually fired."""
        sources = {"S": workload.schema, "T": workload.schema}
        reference = ShardedRuntime(sources, n_shards=2, capture_outputs=True)
        for __ in drive_sharded(
            reference, workload.stream_events(), workload.schedule()
        ):
            pass
        proc = ProcessShardedRuntime(
            sources,
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=crash.checkpoint_every,
            worker_faults=crash.worker_faults(),
            **FAST,
        )
        try:
            for __ in drive_sharded(
                proc, workload.stream_events(), workload.schedule()
            ):
                pass
            assert_identical(proc, reference)
            if proc.crash_recoveries:
                report = proc.recovery_log[0]
                assert not report.state_lost, "durable recovery dropped state"
        finally:
            proc.close()


class TestFamilyCrashRecovery:
    @pytest.mark.parametrize("family", sorted(FAMILIES))
    @pytest.mark.parametrize("checkpoint_every", [2, 10])
    def test_mid_stream_crash_restores_byte_identical(
        self, family, checkpoint_every
    ):
        """Acceptance: a worker killed mid-batch (between two data frames)
        restores from its last checkpoint and replays the log suffix; the
        post-recovery serve is byte-identical for every stateful family."""
        queries = FAMILIES[family]
        reference = ShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        for index, text in enumerate(queries):
            reference.register(text, query_id=f"q{index}", shard=0)
        if len(queries) > 1:
            reference.reoptimize(shard=0)
        feed(reference, 0, 140)

        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=checkpoint_every,
            worker_faults={0: WorkerFaults(crash_on=("data", 35))},
            **FAST,
        )
        try:
            for index, text in enumerate(queries):
                proc.register(text, query_id=f"q{index}", shard=0)
            if len(queries) > 1:
                proc.reoptimize(shard=0)
            feed(proc, 0, 140)
            settle(proc)
            assert proc.crash_recoveries == 1, "the seeded crash must fire"
            report = proc.recovery_log[0]
            assert not report.state_lost
            assert report.checkpoint_version is not None
            assert sorted(report.queries_restored) == [
                f"q{index}" for index in range(len(queries))
            ]
            assert_identical(proc, reference)
        finally:
            proc.close()

    def test_restore_replays_less_than_wal_only(self):
        """The point of checkpointing: with a checkpoint the replay window
        is the log suffix, not the log origin."""

        def crash_and_recover(checkpoint_every):
            proc = ProcessShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA},
                n_shards=2,
                capture_outputs=True,
                durable=True,
                checkpoint_every=checkpoint_every,
                worker_faults={0: WorkerFaults(crash_on=("data", 50))},
                **FAST,
            )
            try:
                proc.register(FAMILIES["shared-aggregate"][0], query_id="q0", shard=0)
                feed(proc, 0, 140)
                settle(proc)
                assert proc.crash_recoveries == 1
                return proc.recovery_log[0]
            finally:
                proc.close()

        wal_only = crash_and_recover(0)
        checkpointed = crash_and_recover(8)
        assert wal_only.checkpoint_version is None
        assert checkpointed.checkpoint_version is not None
        assert 0 < checkpointed.tuples_replayed < wal_only.tuples_replayed


class TestRecoveryReports:
    """The PR-4 silent-loss gap, closed: recovery always reports."""

    def test_blank_recovery_reports_state_lost(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            worker_faults={0: WorkerFaults(crash_on=("data", 20))},
            **FAST,
        )
        try:
            proc.register(FAMILIES["window-sequence"][0], query_id="q0", shard=0)
            feed(proc, 0, 80)
            settle(proc)
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            assert report.state_lost
            assert report.queries_lost_state == ["q0"]
            assert report.queries_restored == []
            assert report.tuples_replayed == 0
            assert not report.durable
            assert "DROPPED" in str(report)
        finally:
            proc.close()

    def test_blank_recovery_logs_a_warning(self, caplog):
        import logging

        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            worker_faults={0: WorkerFaults(crash_on=("register", 2))},
            **FAST,
        )
        try:
            proc.register("FROM S WHERE a0 == 1", query_id="q0", shard=0)
            with caplog.at_level(logging.WARNING, logger="repro.shard.proc"):
                proc.register("FROM S WHERE a0 == 2", query_id="q1", shard=0)
            assert any(
                "DROPPED" in record.message for record in caplog.records
            ), "silent state loss: no warning was emitted"
        finally:
            proc.close()

    def test_durable_recovery_reports_restore(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=5,
            worker_faults={0: WorkerFaults(crash_on=("data", 30))},
            **FAST,
        )
        try:
            proc.register(FAMILIES["window-sequence"][0], query_id="q0", shard=0)
            feed(proc, 0, 100)
            settle(proc)
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            assert not report.state_lost
            assert report.durable
            assert report.queries_restored == ["q0"]
            assert report.state_restored > 0
            assert report.tuples_replayed > 0
            assert report.elapsed_seconds > 0
            assert "restored" in str(report)
        finally:
            proc.close()
