"""Edge-case tests for the channel m-ops: partial membership, fragments.

The equivalence suite feeds the paper's optimistic pattern (every channel
tuple belongs to all streams); these tests exercise the general case —
tuples belonging to arbitrary subsets — where fragment bookkeeping and mask
translation actually earn their keep.
"""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.rules import (
    ChannelSelectionRule,
    ChannelSequenceRule,
    FragmentAggregateRule,
    PrecisionJoinRule,
)
from repro.engine.executor import StreamEngine
from repro.mops.masking import MaskTranslator
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, left, lit, right
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.channel import ChannelTuple
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


def channel_plan(consumer_factory, count=3, rules=None):
    """count sharable sources -> same-definition consumers, optimized."""
    plan = QueryPlan()
    sources = [
        plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(count)
    ]
    for i, source in enumerate(sources):
        out = plan.add_operator(consumer_factory(), [source], query_id=f"q{i}")
        plan.mark_output(out, f"q{i}")
    Optimizer(rules).optimize(plan)
    return plan, sources


def run_masked(plan, sources, masked_tuples):
    """masked_tuples: (mask, values, ts). Feeds one channel source."""
    channel = plan.channel_of(sources[0])
    engine = StreamEngine(plan, capture_outputs=True)
    for mask, values, ts in masked_tuples:
        engine.process(channel, ChannelTuple(StreamTuple(SCHEMA, values, ts), mask))
    return engine.captured


class TestChannelSelectionPartialMasks:
    def test_membership_respected(self):
        plan, sources = channel_plan(
            lambda: Selection(Comparison(attr("a"), "==", lit(1))),
            rules=[ChannelSelectionRule()],
        )
        captured = run_masked(
            plan,
            sources,
            [
                (0b001, (1, 0), 0),  # only q0's stream
                (0b110, (1, 0), 1),  # q1 and q2
                (0b111, (0, 0), 2),  # fails the predicate entirely
            ],
        )
        assert len(captured.get("q0", [])) == 1
        assert len(captured.get("q1", [])) == 1
        assert len(captured.get("q2", [])) == 1
        assert captured["q1"][0].ts == 1


class TestFragmentAggregatePartialMasks:
    def test_per_query_windows_see_only_their_tuples(self):
        plan, sources = channel_plan(
            lambda: SlidingWindowAggregate("sum", "b", TimeWindow(100), (), "s"),
            count=2,
            rules=[FragmentAggregateRule()],
        )
        captured = run_masked(
            plan,
            sources,
            [
                (0b01, (0, 10), 0),  # only q0
                (0b10, (0, 5), 1),   # only q1
                (0b11, (0, 1), 2),   # both
            ],
        )
        q0 = [t["s"] for t in captured["q0"]]
        q1 = [t["s"] for t in captured["q1"]]
        assert q0 == [10, 11]       # emits at ts 0 and ts 2
        assert q1 == [5, 6]         # emits at ts 1 and ts 2

    def test_fragment_expiry(self):
        plan, sources = channel_plan(
            lambda: SlidingWindowAggregate("sum", "b", TimeWindow(2), (), "s"),
            count=2,
            rules=[FragmentAggregateRule()],
        )
        captured = run_masked(
            plan,
            sources,
            [
                (0b01, (0, 10), 0),
                (0b11, (0, 1), 10),  # the ts=0 tuple has long expired
            ],
        )
        assert [t["s"] for t in captured["q0"]] == [10, 1]

    def test_shared_value_single_emission(self):
        """Queries with identical fragment views share one channel tuple."""
        plan, sources = channel_plan(
            lambda: SlidingWindowAggregate("sum", "b", TimeWindow(100), (), "s"),
            count=3,
            rules=[FragmentAggregateRule()],
        )
        channel = plan.channel_of(sources[0])
        engine = StreamEngine(plan)
        stats = engine.process(
            channel, ChannelTuple(StreamTuple(SCHEMA, (0, 4), 0), 0b111)
        )
        # one physical output tuple decodes to three logical outputs
        assert stats.output_events == 3
        assert stats.physical_events == 2  # the input tuple + one output


class TestChannelSequencePartialMasks:
    def test_instance_mask_propagates(self):
        correlation = Comparison(left("a"), "==", right("a"))

        def build():
            plan = QueryPlan()
            sources = [
                plan.add_source(f"S{i}", SCHEMA, sharable_label="s")
                for i in range(2)
            ]
            t = plan.add_source("T", SCHEMA)
            for i, source in enumerate(sources):
                out = plan.add_operator(
                    Sequence(conjunction([DurationWithin(50), correlation])),
                    [source, t],
                    query_id=f"q{i}",
                )
                plan.mark_output(out, f"q{i}")
            Optimizer([ChannelSequenceRule()]).optimize(plan)
            return plan, sources, t

        plan, sources, t = build()
        channel = plan.channel_of(sources[0])
        t_channel = plan.channel_of(t)
        engine = StreamEngine(plan, capture_outputs=True)
        # instance belongs only to q1
        engine.process(channel, ChannelTuple(StreamTuple(SCHEMA, (5, 0), 0), 0b10))
        engine.process(
            t_channel, ChannelTuple(StreamTuple(SCHEMA, (5, 1), 1), 1)
        )
        assert "q0" not in engine.captured
        assert len(engine.captured["q1"]) == 1


class TestPrecisionJoinMasks:
    def test_pair_ownership_exact(self):
        """A pair is owned by query k iff both sides belong to k's streams."""
        plan = QueryPlan()
        lefts = [
            plan.add_source(f"L{i}", SCHEMA, sharable_label="l") for i in range(2)
        ]
        rights = [
            plan.add_source(f"R{i}", SCHEMA, sharable_label="r") for i in range(2)
        ]
        predicate = Comparison(left("a"), "==", right("a"))
        for i in range(2):
            out = plan.add_operator(
                SlidingWindowJoin(predicate, TimeWindow(50)),
                [lefts[i], rights[i]],
                query_id=f"q{i}",
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([PrecisionJoinRule()]).optimize(plan)
        left_channel = plan.channel_of(lefts[0])
        right_channel = plan.channel_of(rights[0])
        assert left_channel.capacity == 2
        assert right_channel.capacity == 2

        engine = StreamEngine(plan, capture_outputs=True)
        # left tuple belongs to q0 only; right tuple to both
        engine.process(
            left_channel, ChannelTuple(StreamTuple(SCHEMA, (7, 0), 0), 0b01)
        )
        engine.process(
            right_channel, ChannelTuple(StreamTuple(SCHEMA, (7, 1), 1), 0b11)
        )
        assert len(engine.captured.get("q0", [])) == 1
        assert "q1" not in engine.captured


class TestMaskTranslator:
    def test_translation_table(self):
        plan = QueryPlan()
        sources = [
            plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(3)
        ]
        for i, source in enumerate(sources):
            out = plan.add_operator(
                Selection(Comparison(attr("a"), "==", lit(1))), [source],
                query_id=f"q{i}",
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([ChannelSelectionRule()]).optimize(plan)
        mop = plan.mops[0]
        from repro.core.mop import OutputCollector

        collector = OutputCollector(plan, mop.output_streams)
        translator = MaskTranslator(
            plan.channel_of(sources[0]), mop.instances, collector
        )
        assert translator.consumed_mask == 0b111
        translated = translator.translate(0b101)
        assert len(translated) == 1
        __, out_mask = translated[0]
        assert out_mask.bit_count() == 2
