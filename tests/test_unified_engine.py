"""The unification claim (§4.1): RE, EE, and hybrid queries in ONE engine.

"We are able to unify REs and EEs, and efficiently process a large number of
RE queries, EE queries, and hybrid queries in a single engine."  This test
registers all three query classes over shared sources in a single plan,
optimizes once, and verifies (a) cross-class sharing happened and (b) the
optimized plan is output-equivalent to the naive plan.
"""

import random

import pytest

from conftest import run_plan_collect
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, last, left, lit, right
from repro.operators.iterate import Iterate
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    conjunction,
)
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


def build_mixed_plan():
    """RE queries (join + aggregates), EE queries (;, µ), hybrid pipelines."""
    plan = QueryPlan()
    s = plan.add_source("S", SCHEMA)
    t = plan.add_source("T", SCHEMA)

    # --- RE: two shared-window joins and two aggregate dashboards -------------
    join_predicate = Comparison(left("a"), "==", right("a"))
    for i, window in enumerate([5, 25]):
        out = plan.add_operator(
            SlidingWindowJoin(join_predicate, TimeWindow(window)), [s, t],
            query_id=f"join{i}",
        )
        plan.mark_output(out, f"join{i}")
    for i, group_by in enumerate([(), ("a",)]):
        out = plan.add_operator(
            SlidingWindowAggregate("avg", "b", TimeWindow(20), group_by, "m"),
            [s],
            query_id=f"agg{i}",
        )
        plan.mark_output(out, f"agg{i}")

    # --- EE: constant-guarded sequences (Workload-1 style) ---------------------
    for i in range(3):
        selected = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(i))), [s],
            query_id=f"seq{i}",
        )
        out = plan.add_operator(
            Sequence(
                conjunction(
                    [DurationWithin(30), Comparison(right("a"), "==", lit(i + 1))]
                )
            ),
            [selected, t],
            query_id=f"seq{i}",
        )
        plan.mark_output(out, f"seq{i}")

    # --- hybrid: smooth + pattern (Query 1 shape over the synthetic stream) ----
    correlation = Comparison(left("a"), "==", right("a"))
    increasing = Comparison(right("m"), ">", last("m"))
    for i in range(2):
        smoothed = plan.add_operator(
            SlidingWindowAggregate("avg", "b", TimeWindow(10), ("a",), "m"),
            [s],
            query_id=f"hybrid{i}",
        )
        started = plan.add_operator(
            Selection(Comparison(attr("m"), "<", lit(4.0 - 0.01 * i))),
            [smoothed],
            query_id=f"hybrid{i}",
        )
        out = plan.add_operator(
            Iterate(
                conjunction([correlation, increasing]),
                conjunction([correlation, increasing]),
            ),
            [started, smoothed],
            query_id=f"hybrid{i}",
        )
        plan.mark_output(out, f"hybrid{i}")
    return plan, s, t


def sources_for(plan, s, t, seed=0):
    rng = random.Random(seed)
    s_tuples = [
        StreamTuple(SCHEMA, (rng.randrange(5), rng.randrange(8)), 2 * i)
        for i in range(250)
    ]
    t_tuples = [
        StreamTuple(SCHEMA, (rng.randrange(5), rng.randrange(8)), 2 * i + 1)
        for i in range(250)
    ]
    return [
        StreamSource(plan.channel_of(s), s_tuples),
        StreamSource(plan.channel_of(t), t_tuples),
    ]


class TestUnifiedEngine:
    def test_cross_class_sharing_happens(self):
        plan, s, t = build_mixed_plan()
        report = Optimizer().optimize(plan)
        applied = report.by_rule()
        assert applied.get("cse")          # the duplicate hybrid α collapsed
        assert applied.get("sσ")           # EE start filters share an index
        assert applied.get("s⋈")           # RE joins share buffers
        assert applied.get("sα")           # RE dashboards share the scan

    def test_all_query_classes_produce_output(self):
        plan, s, t = build_mixed_plan()
        Optimizer().optimize(plan)
        outputs = run_plan_collect(plan, sources_for(plan, s, t))
        produced = {q for q, c in outputs.items() if c}
        # every class is represented among producing queries
        assert any(q.startswith("join") for q in produced)
        assert any(q.startswith("agg") for q in produced)
        assert any(q.startswith("seq") for q in produced)
        assert any(q.startswith("hybrid") for q in produced)

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_naive_equals_optimized(self, seed):
        naive_plan, s1, t1 = build_mixed_plan()
        naive = run_plan_collect(naive_plan, sources_for(naive_plan, s1, t1, seed))
        optimized_plan, s2, t2 = build_mixed_plan()
        Optimizer().optimize(optimized_plan)
        optimized = run_plan_collect(
            optimized_plan, sources_for(optimized_plan, s2, t2, seed)
        )
        assert naive == optimized

    def test_single_engine_one_pass(self):
        """One engine instance serves all nine queries in one event pass."""
        from repro.engine.executor import StreamEngine

        plan, s, t = build_mixed_plan()
        Optimizer().optimize(plan)
        engine = StreamEngine(plan)
        stats = engine.run(sources_for(plan, s, t))
        assert stats.input_events == 500
        assert len(stats.outputs_by_query) >= 6
