"""Tests for CSV trace I/O and row-count windows."""

import io

import pytest

from repro.errors import OperatorError, SchemaError
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.window import RowWindow, TimeWindow
from repro.streams.io import read_trace, read_trace_file, write_trace, write_trace_file
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("pid", "load")


def sample_tuples():
    return [
        StreamTuple(SCHEMA, (0, 17), 0),
        StreamTuple(SCHEMA, (1, 3), 0),
        StreamTuple(SCHEMA, (0, 21), 1),
    ]


class TestTraceRoundtrip:
    def test_write_read_stream(self):
        buffer = io.StringIO()
        assert write_trace(sample_tuples(), buffer) == 3
        buffer.seek(0)
        loaded = list(read_trace(buffer, SCHEMA))
        assert loaded == sample_tuples()

    def test_write_read_file(self, tmp_path):
        path = str(tmp_path / "trace.csv")
        write_trace_file(sample_tuples(), path)
        assert read_trace_file(path, SCHEMA) == sample_tuples()

    def test_schema_inference(self):
        buffer = io.StringIO("pid,load,ts\n0,1.5,0\n1,2.5,3\n")
        loaded = list(read_trace(buffer))
        assert loaded[0].schema.type_of("pid") == "int"
        assert loaded[0].schema.type_of("load") == "float"
        assert loaded[1].ts == 3

    def test_extra_columns_ignored_with_schema(self):
        buffer = io.StringIO("pid,junk,load,ts\n0,x,9,1\n")
        loaded = list(read_trace(buffer, SCHEMA))
        assert loaded[0].as_dict() == {"pid": 0, "load": 9}

    def test_missing_ts_column(self):
        buffer = io.StringIO("pid,load\n0,1\n")
        with pytest.raises(SchemaError, match="ts"):
            list(read_trace(buffer))

    def test_missing_schema_column(self):
        buffer = io.StringIO("pid,ts\n0,1\n")
        with pytest.raises(SchemaError, match="missing column"):
            list(read_trace(buffer, SCHEMA))

    def test_mixed_schemas_rejected_on_write(self):
        other = Schema.of_ints("x")
        tuples = [sample_tuples()[0], StreamTuple(other, (1,), 0)]
        with pytest.raises(SchemaError, match="share one schema"):
            write_trace(tuples, io.StringIO())

    def test_empty_trace(self):
        buffer = io.StringIO()
        assert write_trace([], buffer) == 0
        buffer.seek(0)
        assert list(read_trace(buffer)) == []

    def test_perfmon_roundtrip(self, tmp_path):
        from repro.workloads.perfmon import PerfmonDataset

        dataset = PerfmonDataset(processes=3, duration_seconds=5, seed=1)
        original = list(dataset.generate())
        path = str(tmp_path / "d.csv")
        write_trace_file(original, path)
        assert read_trace_file(path) == original


class TestRowWindowAggregate:
    def feed(self, operator, rows):
        executor = operator.executor([SCHEMA])
        outputs = []
        for ts, pid, load in rows:
            for out in executor.process(0, StreamTuple(SCHEMA, (pid, load), ts)):
                outputs.append(out.as_dict())
        return outputs

    def test_last_n_rows(self):
        operator = SlidingWindowAggregate("sum", "load", RowWindow(2), (), "s")
        outputs = self.feed(
            operator, [(0, 0, 1), (1, 0, 2), (2, 0, 3), (3, 0, 4)]
        )
        assert [o["s"] for o in outputs] == [1, 3, 5, 7]

    def test_row_window_per_group(self):
        operator = SlidingWindowAggregate("sum", "load", RowWindow(2), ("pid",), "s")
        outputs = self.feed(
            operator, [(0, 1, 10), (1, 2, 100), (2, 1, 20), (3, 1, 30)]
        )
        assert outputs == [
            {"pid": 1, "s": 10},
            {"pid": 2, "s": 100},
            {"pid": 1, "s": 30},
            {"pid": 1, "s": 50},
        ]

    def test_row_window_independent_of_ts_gaps(self):
        operator = SlidingWindowAggregate("avg", "load", RowWindow(3), (), "m")
        outputs = self.feed(operator, [(0, 0, 3), (1000, 0, 6), (9999, 0, 9)])
        assert outputs[-1]["m"] == 6.0

    def test_row_window_min_max(self):
        operator = SlidingWindowAggregate("max", "load", RowWindow(2), (), "hi")
        outputs = self.feed(operator, [(0, 0, 9), (1, 0, 1), (2, 0, 2)])
        assert [o["hi"] for o in outputs] == [9, 9, 2]

    def test_invalid_window_type(self):
        with pytest.raises(OperatorError):
            SlidingWindowAggregate("sum", "load", 17)

    def test_row_window_not_shared_by_s_alpha(self):
        """sα covers time windows only; row-window aggregates stay separate."""
        from repro.core.plan import QueryPlan
        from repro.core.rules import SharedAggregateRule

        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        plan.add_operator(
            SlidingWindowAggregate("sum", "load", RowWindow(5), (), "a"), [source]
        )
        plan.add_operator(
            SlidingWindowAggregate("sum", "load", RowWindow(9), (), "a"), [source]
        )
        assert SharedAggregateRule().apply(plan) == 0

    def test_time_and_row_definitions_distinct(self):
        time_based = SlidingWindowAggregate("sum", "load", TimeWindow(5), (), "s")
        row_based = SlidingWindowAggregate("sum", "load", RowWindow(5), (), "s")
        assert time_based.definition() != row_based.definition()
