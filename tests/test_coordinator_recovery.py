"""Coordinator crash-recovery equivalence: the fleet survives its head.

The acceptance contract of the coordinator durability subsystem (ISSUE 7):
kill the coordinator at any of its commit points — around a batch journal
append, around a lifecycle journal append, mid-checkpoint-round — and a
successor coordinator must end **byte-identical** to a fault-free
in-process serve of the same schedule, on *both* recovery paths:

- **re-adoption** (:meth:`ProcessShardedRuntime.readopt`): the workers
  survived the coordinator; the successor handshakes them (``hello``),
  reconciles each against the journal, rolls back unjournaled effects and
  re-ships journaled-but-unshipped data;
- **cold start** (:meth:`ProcessShardedRuntime.from_journal`): total loss —
  the fleet is respawned from journaled checkpoints + WAL suffixes.

Two layers, mirroring ``test_checkpoint_recovery.py``:

- a hypothesis property over random churn schedules × seeded coordinator
  crash points × checkpoint intervals × recovery path
  (``strategies.coordinator_crash_schedules`` — satellite of ISSUE 7);
- deterministic per-commit-point tests pinning every (point, when) window
  on both paths, plus journal guard-rail tests.
"""

import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoordinatorCrashError, JournalError
from repro.lang.compiler import as_logical
from repro.shard import (
    CoordinatorFaults,
    CoordinatorLog,
    ProcessShardedRuntime,
    ShardedRuntime,
    fork_available,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnEvent, drive_sharded, resume_tail
from strategies import churn_workloads, coordinator_crash_schedules

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.of_ints("a0", "a1")
FAST = {"command_timeout": 0.25, "max_retries": 60}

ALL_TEMPLATES = ("select", "sequence", "aggregate", "join")


def stream_events(first, last):
    """The shared deterministic feed: alternating S/T, ts = position."""
    return [
        ("S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts))
        for ts in range(first, last)
    ]


def register_event(at, query_id, text):
    return ChurnEvent(
        at=at, kind="register", query_id=query_id, query=as_logical(text, query_id)
    )


#: Deterministic two-shard serve: a keyed aggregate and a stateful join
#: (auto-placement puts q0 on shard 0, q1 on shard 1 — same tie-breaks in
#: both runtimes), with one mid-stream unregister so every crash point has
#: lifecycle traffic on both sides of it.
CHURN = [
    register_event(0, "q0", "FROM S AGG sum(a1) OVER 30 BY a0 AS m"),
    register_event(0, "q1", "FROM S JOIN T ON left.a0 == right.a0 WITHIN 20"),
    ChurnEvent(at=100, kind="unregister", query_id="q1"),
]
STREAMS = stream_events(0, 140)


def settle(proc: ProcessShardedRuntime):
    return proc.collect_stats()


def assert_identical(proc: ProcessShardedRuntime, reference: ShardedRuntime):
    stats = settle(proc)
    assert proc.captured == reference.captured
    assert stats.outputs_by_query == reference.stats.outputs_by_query
    assert stats.input_events == reference.stats.input_events
    assert stats.output_events == reference.stats.output_events
    assert sorted(proc.active_queries) == sorted(reference.active_queries)
    assert proc.state_size == reference.state_size


def serve_reference(streams, churn, schema=SCHEMA):
    reference = ShardedRuntime(
        {"S": schema, "T": schema}, n_shards=2, capture_outputs=True
    )
    for __ in drive_sharded(reference, streams, churn):
        pass
    return reference


def crash_and_recover(journal_dir, faults, mode, streams=STREAMS, churn=CHURN):
    """Serve the schedule until ``faults`` kills the coordinator, recover a
    successor via ``mode`` ("readopt" | "cold"), serve the journal-computed
    tail, and return the successor (caller closes it)."""
    proc = ProcessShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA},
        n_shards=2,
        capture_outputs=True,
        checkpoint_every=4,
        journal=journal_dir,
        coordinator_faults=faults,
        **FAST,
    )
    try:
        for __ in drive_sharded(proc, streams, churn):
            pass
    except CoordinatorCrashError:
        pass
    else:
        pytest.fail(f"coordinator fault {faults.crash_on} never fired")
    if mode == "readopt":
        handoff = proc.detach()
        successor = ProcessShardedRuntime.readopt(journal_dir, handoff)
    else:
        proc.abandon()
        successor = ProcessShardedRuntime.from_journal(journal_dir)
    stream_tail, churn_tail = resume_tail(
        streams, churn, successor.input_positions(), successor.lifecycle_ops
    )
    for __ in drive_sharded(successor, stream_tail, churn_tail):
        pass
    return successor


#: Every injectable (point, occurrence, when) window of the deterministic
#: serve.  batch#30 lands mid-stream with both queries active; the
#: register/unregister windows straddle the lifecycle journal appends;
#: ckpt-round#2 dies with snapshot RPCs in flight (before-only: the round
#: is enqueued or it is not).
CRASH_POINTS = [
    ("batch", 30, "before"),
    ("batch", 30, "after"),
    ("register", 2, "before"),
    ("register", 2, "after"),
    ("unregister", 1, "before"),
    ("unregister", 1, "after"),
    ("ckpt-round", 2, "before"),
]


class TestCoordinatorCrashPoints:
    """Every commit-point window × both recovery paths, deterministically."""

    @pytest.mark.parametrize("point,occurrence,when", CRASH_POINTS)
    @pytest.mark.parametrize("mode", ["readopt", "cold"])
    def test_recovery_is_byte_identical(
        self, tmp_path, point, occurrence, when, mode
    ):
        reference = serve_reference(STREAMS, CHURN)
        faults = CoordinatorFaults(crash_on=(point, occurrence), when=when)
        successor = crash_and_recover(str(tmp_path), faults, mode)
        try:
            assert faults.fired
            assert_identical(successor, reference)
        finally:
            successor.close()

    def test_readopt_adopts_without_respawning(self, tmp_path):
        """A clean handoff (no crash mid-commit) re-adopts every worker in
        place: same incarnations, no checkpoint restores."""
        reference = serve_reference(STREAMS, CHURN)
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            checkpoint_every=4,
            journal=str(tmp_path),
            observe=True,
            **FAST,
        )
        for __ in drive_sharded(proc, stream_events(0, 70), CHURN[:2]):
            pass
        incarnations = {
            shard: handle.incarnation for shard, handle in proc._workers.items()
        }
        handoff = proc.detach()
        successor = ProcessShardedRuntime.readopt(
            str(tmp_path), handoff, observe=True
        )
        try:
            stream_tail, churn_tail = resume_tail(
                STREAMS, CHURN, successor.input_positions(), successor.lifecycle_ops
            )
            for __ in drive_sharded(successor, stream_tail, churn_tail):
                pass
            assert_identical(successor, reference)
            assert {
                shard: handle.incarnation
                for shard, handle in successor._workers.items()
            } == incarnations
            assert [e["kind"] for e in successor.events.topology()] == ["readopt"]
        finally:
            successor.close()

    def test_cold_start_emits_topology_event(self, tmp_path):
        reference = serve_reference(STREAMS, CHURN)
        faults = CoordinatorFaults(crash_on=("batch", 30), when="after")
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            checkpoint_every=4,
            journal=str(tmp_path),
            coordinator_faults=faults,
            **FAST,
        )
        with pytest.raises(CoordinatorCrashError):
            for __ in drive_sharded(proc, STREAMS, CHURN):
                pass
        proc.abandon()
        successor = ProcessShardedRuntime.from_journal(str(tmp_path), observe=True)
        try:
            stream_tail, churn_tail = resume_tail(
                STREAMS, CHURN, successor.input_positions(), successor.lifecycle_ops
            )
            for __ in drive_sharded(successor, stream_tail, churn_tail):
                pass
            assert_identical(successor, reference)
            assert [e["kind"] for e in successor.events.topology()] == ["cold_start"]
        finally:
            successor.close()


class TestCoordinatorCrashProperty:
    @given(
        workload=churn_workloads(max_horizon=300, templates=ALL_TEMPLATES),
        crash=coordinator_crash_schedules(),
        mode=st.sampled_from(["readopt", "cold"]),
    )
    @settings(max_examples=5, deadline=None)
    def test_recovered_serve_is_byte_identical(self, workload, crash, mode):
        """Random churn × coordinator crash point × checkpoint interval ×
        recovery path: the resumed serve ends byte-identical to the
        fault-free in-process one — and a draw whose crash never fires must
        end byte-identical without any recovery at all."""
        streams = list(workload.stream_events())
        churn = list(workload.schedule())
        reference = serve_reference(streams, churn, schema=workload.schema)
        with tempfile.TemporaryDirectory() as journal_dir:
            faults = crash.coordinator_faults()
            proc = ProcessShardedRuntime(
                {"S": workload.schema, "T": workload.schema},
                n_shards=2,
                capture_outputs=True,
                checkpoint_every=crash.checkpoint_every,
                journal=journal_dir,
                coordinator_faults=faults,
                **FAST,
            )
            crashed = False
            try:
                try:
                    for __ in drive_sharded(proc, streams, churn):
                        pass
                except CoordinatorCrashError:
                    crashed = True
                if not crashed:
                    assert_identical(proc, reference)
                    return
            finally:
                if not crashed:
                    proc.close()
            if mode == "readopt":
                handoff = proc.detach()
                successor = ProcessShardedRuntime.readopt(journal_dir, handoff)
            else:
                proc.abandon()
                successor = ProcessShardedRuntime.from_journal(journal_dir)
            try:
                stream_tail, churn_tail = resume_tail(
                    streams,
                    churn,
                    successor.input_positions(),
                    successor.lifecycle_ops,
                )
                for __ in drive_sharded(successor, stream_tail, churn_tail):
                    pass
                assert_identical(successor, reference)
            finally:
                successor.close()


class TestJournalGuards:
    def test_from_journal_needs_a_journal(self, tmp_path):
        with pytest.raises(JournalError, match="nothing to resume"):
            ProcessShardedRuntime.from_journal(str(tmp_path))

    def test_input_positions_need_a_journal(self):
        proc = ProcessShardedRuntime({"S": SCHEMA}, n_shards=1, **FAST)
        try:
            with pytest.raises(JournalError, match="coordinator journal"):
                proc.input_positions()
            assert proc.lifecycle_ops == 0
        finally:
            proc.close()

    def test_resume_survives_journal_compaction(self, tmp_path):
        """A journal that auto-compacted mid-serve (snapshot + truncated
        tail) cold-starts exactly like an append-only one."""
        reference = serve_reference(STREAMS, CHURN)
        log = CoordinatorLog(str(tmp_path), compact_every=16)
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            checkpoint_every=4,
            journal=log,
            **FAST,
        )
        for __ in drive_sharded(proc, STREAMS, CHURN):
            pass
        proc.abandon()
        successor = ProcessShardedRuntime.from_journal(str(tmp_path))
        try:
            stream_tail, churn_tail = resume_tail(
                STREAMS, CHURN, successor.input_positions(), successor.lifecycle_ops
            )
            assert stream_tail == [] and churn_tail == []
            assert_identical(successor, reference)
        finally:
            successor.close()
