"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema2() -> Schema:
    """Two integer attributes a0, a1."""
    return Schema.numbered(2)


@pytest.fixture
def schema3() -> Schema:
    return Schema.numbered(3)


@pytest.fixture
def schema10() -> Schema:
    """The paper's synthetic schema (§5.1)."""
    return Schema.numbered(10)


def make_tuple(schema: Schema, values, ts: int) -> StreamTuple:
    return StreamTuple(schema, values, ts)


def make_tuples(schema: Schema, rows) -> list[StreamTuple]:
    """Rows of (ts, *values) -> StreamTuples."""
    return [StreamTuple(schema, row[1:], row[0]) for row in rows]


def random_tuples(schema: Schema, count: int, seed: int, domain: int = 10):
    """Deterministic pseudo-random tuples with consecutive timestamps."""
    rng = random.Random(seed)
    width = len(schema)
    return [
        StreamTuple(schema, tuple(rng.randrange(domain) for __ in range(width)), ts)
        for ts in range(count)
    ]


def outputs_as_multiset(tuples):
    """Canonical form for output comparison (order-insensitive multiset)."""
    from collections import Counter

    return Counter((t.ts, tuple(t.values)) for t in tuples)


def run_plan_collect(plan, sources):
    """Run a plan and return {query_id: multiset of outputs}."""
    from repro.engine.executor import StreamEngine

    engine = StreamEngine(plan, capture_outputs=True)
    engine.run(sources)
    return {
        query_id: outputs_as_multiset(tuples)
        for query_id, tuples in engine.captured.items()
    }
