"""Unit tests for the query plan graph and its rewrite primitives."""

import pytest

from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.mops.naive import NaiveMOp
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef

SCHEMA = Schema.of_ints("a")


def selection(const):
    return Selection(Comparison(attr("a"), "==", lit(const)))


class TestConstruction:
    def test_add_source_gets_singleton_channel(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        channel = plan.channel_of(source)
        assert channel.is_singleton
        assert channel.streams == (source,)

    def test_add_operator_wires_consumers(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out = plan.add_operator(selection(1), [source], query_id="q")
        consumers = plan.consumers_of(source)
        assert len(consumers) == 1
        assert consumers[0][1].output is out

    def test_add_operator_foreign_stream_rejected(self):
        plan = QueryPlan()
        foreign = StreamDef("X", SCHEMA)
        with pytest.raises(PlanError):
            plan.add_operator(selection(1), [foreign])

    def test_mark_output_accumulates_queries(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out = plan.add_operator(selection(1), [source])
        plan.mark_output(out, "q1")
        plan.mark_output(out, "q2")
        assert plan.sinks[out.stream_id] == ["q1", "q2"]

    def test_producer_tracking(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out = plan.add_operator(selection(1), [source])
        assert plan.producer_mop_of(source) is None
        assert plan.producer_mop_of(out) is plan.mops[0]


class TestReplaceMops:
    def test_replace_with_union(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [source], query_id="q1")
        plan.add_operator(selection(2), [source], query_id="q2")
        old = list(plan.mops)
        instances = [inst for mop in old for inst in mop.instances]
        merged = NaiveMOp(instances)
        plan.replace_mops(old, merged)
        assert plan.mops == [merged]
        assert all(inst.owner is merged for inst in instances)
        plan.validate()

    def test_replace_requires_exact_union(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [source])
        plan.add_operator(selection(2), [source])
        partial = NaiveMOp(plan.mops[0].instances)
        with pytest.raises(PlanError, match="union"):
            plan.replace_mops(list(plan.mops), partial)


class TestChannelize:
    def _two_outputs(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out1 = plan.add_operator(selection(1), [source])
        out2 = plan.add_operator(selection(2), [source])
        # put both outputs on the same producing m-op
        old = list(plan.mops)
        instances = [inst for mop in old for inst in mop.instances]
        plan.replace_mops(old, NaiveMOp(instances))
        return plan, out1, out2

    def test_channelize_same_producer(self):
        plan, out1, out2 = self._two_outputs()
        channel = plan.channelize([out1, out2])
        assert plan.channel_of(out1) is channel
        assert plan.channel_of(out2) is channel
        assert channel.capacity == 2

    def test_channelize_different_producers_rejected(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out1 = plan.add_operator(selection(1), [source])
        out2 = plan.add_operator(selection(2), [source])
        with pytest.raises(PlanError, match="same m-op"):
            plan.channelize([out1, out2])

    def test_channelize_sources_need_label(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA)
        s2 = plan.add_source("S2", SCHEMA)
        with pytest.raises(PlanError, match="sharable label"):
            plan.channelize([s1, s2])

    def test_channelize_labeled_sources(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="s")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="s")
        channel = plan.channelize([s1, s2])
        assert channel.capacity == 2

    def test_rechannelize_rejected(self):
        plan, out1, out2 = self._two_outputs()
        plan.channelize([out1, out2])
        with pytest.raises(PlanError, match="already encoded"):
            plan.channelize([out1, out2])

    def test_channelize_needs_two(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="s")
        with pytest.raises(PlanError):
            plan.channelize([s1])


class TestCse:
    def test_eliminate_duplicate_rewires(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        keep = plan.add_operator(selection(1), [source], query_id="q1")
        drop = plan.add_operator(selection(1), [source], query_id="q2")
        downstream = plan.add_operator(selection(2), [drop], query_id="q2")
        plan.mark_output(drop, "q2")
        keep_instance = plan.producer_instance_of(keep)
        drop_instance = plan.producer_instance_of(drop)
        plan.eliminate_duplicate(drop_instance, keep_instance)
        # the downstream selection now reads the representative
        consumer = plan.producer_instance_of(downstream)
        assert consumer.inputs[0] is keep
        # the sink moved over
        assert "q2" in plan.sinks[keep.stream_id]
        plan.validate()

    def test_eliminate_requires_same_definition(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        keep = plan.add_operator(selection(1), [source])
        drop = plan.add_operator(selection(2), [source])
        with pytest.raises(PlanError, match="identical operator definitions"):
            plan.eliminate_duplicate(
                plan.producer_instance_of(drop), plan.producer_instance_of(keep)
            )

    def test_eliminate_requires_same_inputs(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA)
        s2 = plan.add_source("S2", SCHEMA)
        keep = plan.add_operator(selection(1), [s1])
        drop = plan.add_operator(selection(1), [s2])
        with pytest.raises(PlanError, match="identical input streams"):
            plan.eliminate_duplicate(
                plan.producer_instance_of(drop), plan.producer_instance_of(keep)
            )


class TestValidate:
    def test_valid_plan_passes(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [source])
        plan.validate()

    def test_describe_renders(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [source])
        text = plan.describe()
        assert "m-ops" in text
        assert "S@S" in text
