"""Unit tests for stream descriptors and channels."""

import pytest

from repro.errors import ChannelError, SchemaError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a", "b")


def make_streams(schema, count, label=None):
    return [StreamDef(f"S{i}", schema, sharable_label=label) for i in range(count)]


class TestStreamDef:
    def test_identity_not_name_based(self, schema):
        first = StreamDef("S", schema)
        second = StreamDef("S", schema)
        assert first != second
        assert first.stream_id != second.stream_id

    def test_source_flag(self, schema):
        stream = StreamDef("S", schema)
        assert stream.is_source
        stream.producer = object()
        assert not stream.is_source


class TestChannelConstruction:
    def test_singleton(self, schema):
        stream = StreamDef("S", schema)
        channel = Channel.singleton(stream)
        assert channel.capacity == 1
        assert channel.is_singleton
        assert channel.full_mask == 1

    def test_multi_stream(self, schema):
        streams = make_streams(schema, 3)
        channel = Channel(streams)
        assert channel.capacity == 3
        assert channel.full_mask == 0b111

    def test_empty_rejected(self):
        with pytest.raises(ChannelError):
            Channel([])

    def test_duplicate_stream_rejected(self, schema):
        stream = StreamDef("S", schema)
        with pytest.raises(ChannelError):
            Channel([stream, stream])

    def test_incompatible_schemas_rejected(self, schema):
        other = StreamDef("T", Schema.of_ints("x"))
        with pytest.raises(SchemaError):
            Channel([StreamDef("S", schema), other])


class TestMembership:
    def test_position_of(self, schema):
        streams = make_streams(schema, 3)
        channel = Channel(streams)
        assert channel.position_of(streams[1]) == 1

    def test_position_of_foreign_stream(self, schema):
        channel = Channel(make_streams(schema, 2))
        foreign = StreamDef("X", schema)
        with pytest.raises(ChannelError):
            channel.position_of(foreign)

    def test_mask_roundtrip(self, schema):
        streams = make_streams(schema, 4)
        channel = Channel(streams)
        subset = [streams[0], streams[2]]
        mask = channel.mask_of(subset)
        assert mask == 0b101
        assert channel.streams_of(mask) == subset

    def test_mask_of_empty_rejected(self, schema):
        channel = Channel(make_streams(schema, 2))
        with pytest.raises(ChannelError):
            channel.mask_of([])

    def test_streams_of_out_of_range(self, schema):
        channel = Channel(make_streams(schema, 2))
        with pytest.raises(ChannelError):
            channel.streams_of(0b100)
        with pytest.raises(ChannelError):
            channel.streams_of(0)


class TestEncodeDecode:
    def test_encode_decode(self, schema):
        streams = make_streams(schema, 3)
        channel = Channel(streams)
        tuple_ = StreamTuple(schema, (1, 2), 0)
        encoded = channel.encode(tuple_, [streams[1]])
        assert encoded.membership == 0b010
        assert channel.decode(encoded) == [streams[1]]

    def test_encode_all(self, schema):
        streams = make_streams(schema, 3)
        channel = Channel(streams)
        encoded = channel.encode_all(StreamTuple(schema, (1, 2), 0))
        assert encoded.membership == channel.full_mask

    def test_iter_members(self, schema):
        streams = make_streams(schema, 3)
        channel = Channel(streams)
        encoded = ChannelTuple(StreamTuple(schema, (1, 2), 0), 0b101)
        assert list(channel.iter_members(encoded)) == [streams[0], streams[2]]

    def test_channel_tuple_requires_nonzero_mask(self, schema):
        with pytest.raises(ChannelError):
            ChannelTuple(StreamTuple(schema, (1, 2), 0), 0)

    def test_channel_tuple_equality(self, schema):
        t = StreamTuple(schema, (1, 2), 0)
        assert ChannelTuple(t, 1) == ChannelTuple(t, 1)
        assert ChannelTuple(t, 1) != ChannelTuple(t, 2)

    def test_channel_tuple_ts_passthrough(self, schema):
        t = StreamTuple(schema, (1, 2), 42)
        assert ChannelTuple(t, 1).ts == 42
