"""Cross-shard relay: split components serve byte-identically.

The relay contract: when the planner cuts an oversized component at a
bridge channel, the sharded engine — inline or process workers, local or
router feed, columnar or pickle plane — produces outputs byte-identical
to the single batched engine (per-query content, timestamps *and* order),
and aggregate input accounting still counts every source event exactly
once (relayed tuples are deducted, not double-counted).
"""

import pytest

from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.errors import ChannelError
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.shard import ShardedEngine, fork_available
from repro.shard.relay import (
    BufferedRunSource,
    RelayInbox,
    deduct_relay_inputs,
)
from repro.shard.wire import RelayCodec
from repro.engine.metrics import RunStats
from repro.streams.channel import ChannelTuple
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.numbered(2)


def bridge_plan(passthrough=False):
    """σ over S feeding both a sink and a sequence with T — one component
    the planner cuts at the derived (bridge) channel for n_shards >= 2."""
    plan = QueryPlan()
    s = plan.add_source("S", SCHEMA)
    t = plan.add_source("T", SCHEMA)
    sel = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="q_sel"
    )
    plan.mark_output(sel, "q_sel")
    seq = plan.add_operator(
        Sequence(
            conjunction(
                [DurationWithin(5), Comparison(right("a0"), "==", lit(1))]
            )
        ),
        [sel, t],
        query_id="q_seq",
    )
    plan.mark_output(seq, "q_seq")
    if passthrough:
        plan.mark_output(t, "q_raw")
    return plan, (s, t)


def bridge_tuples(count=240):
    """Strictly interleaved distinct timestamps across S and T, so the
    merge order (and therefore sequence pairing) is fully determined."""
    per_source = [[], []]
    for ts in range(count):
        per_source[ts % 2].append(StreamTuple(SCHEMA, (ts % 3, ts), ts))
    return per_source


def make_sources(plan, handles, per_source):
    return [
        StreamSource(plan.channel_of(stream), tuples)
        for stream, tuples in zip(handles, per_source)
    ]


def single_run(passthrough=False, count=240):
    plan, handles = bridge_plan(passthrough)
    engine = StreamEngine(plan, capture_outputs=True)
    stats = engine.run(make_sources(plan, handles, bridge_tuples(count)))
    return stats, engine.captured


def assert_equivalent(single, sharded, run):
    stats, captured = single
    aggregate = run.aggregate
    assert aggregate.outputs_by_query == stats.outputs_by_query
    assert aggregate.output_events == stats.output_events
    assert aggregate.input_events == stats.input_events
    assert aggregate.physical_input_events == stats.physical_input_events
    assert aggregate.physical_events == stats.physical_events
    assert sharded.captured == captured


class TestInlineRelayEquivalence:
    @pytest.mark.parametrize("feed", ["local", "router"])
    @pytest.mark.parametrize("data_plane", ["columnar", "pickle"])
    def test_split_bridge_matches_single_engine(self, feed, data_plane):
        single = single_run()
        assert single[0].output_events > 0
        plan, handles = bridge_plan()
        sharded = ShardedEngine(
            plan, 2, parallel=False, feed=feed, capture_outputs=True,
            data_plane=data_plane, max_batch=64,
        )
        assert sharded.shard_plan.relays, "bridge component must split"
        assert sharded.shard_plan.effective_shards == 2
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert run.mode == "inline"
        assert_equivalent(single, sharded, run)

    def test_split_false_keeps_component_whole(self):
        single = single_run()
        plan, handles = bridge_plan()
        sharded = ShardedEngine(
            plan, 2, parallel=False, capture_outputs=True, split=False
        )
        assert sharded.shard_plan.relays == []
        assert sharded.shard_plan.effective_shards == 1
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert_equivalent(single, sharded, run)

    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_passthrough_query_beside_split_component(self, feed):
        # The pass-through sink (directly on source T) used to abort
        # partitioning; now it rides T's shard and its captured outputs
        # must match the single engine even while the component splits.
        single = single_run(passthrough=True)
        assert single[1]["q_raw"], "pass-through must capture"
        plan, handles = bridge_plan(passthrough=True)
        sharded = ShardedEngine(
            plan, 2, parallel=False, feed=feed, capture_outputs=True
        )
        assert sharded.shard_plan.relays
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert_equivalent(single, sharded, run)

    def test_repeat_runs_reuse_taps(self):
        # Engines and taps persist across run() calls; a second drain must
        # not double-ship or double-count.
        plan, handles = bridge_plan()
        single_plan, single_handles = bridge_plan()
        engine = StreamEngine(single_plan, capture_outputs=True)
        sharded = ShardedEngine(plan, 2, parallel=False, capture_outputs=True)
        for offset in (0, 1000):
            tuples = [[], []]
            for ts in range(offset, offset + 120):
                tuples[ts % 2].append(StreamTuple(SCHEMA, (ts % 3, ts), ts))
            engine.run(make_sources(single_plan, single_handles, tuples))
            sharded.run(make_sources(plan, handles, tuples))
        assert sharded.captured == engine.captured


@pytest.mark.skipif(not fork_available(), reason="needs fork start method")
class TestProcessRelayEquivalence:
    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_cross_worker_streaming_relay(self, feed):
        # worker_cap=2 forces the two fragments onto different worker
        # processes, so the relay crosses a real mp.Queue mid-drain.
        single = single_run()
        plan, handles = bridge_plan()
        sharded = ShardedEngine(
            plan, 2, parallel=True, feed=feed, capture_outputs=True,
            worker_cap=2,
        )
        assert sharded.shard_plan.relays
        assert len(sharded._worker_slots()) == 2
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert run.mode == "process"
        assert_equivalent(single, sharded, run)

    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_single_worker_hosts_both_fragments(self, feed):
        # worker_cap=1: both fragments in one worker, relay frames buffer
        # in-process — the 1-CPU default topology.
        single = single_run()
        plan, handles = bridge_plan()
        sharded = ShardedEngine(
            plan, 2, parallel=True, feed=feed, capture_outputs=True,
            worker_cap=1,
        )
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert run.mode == "process"
        assert_equivalent(single, sharded, run)

    def test_pickle_plane_cross_worker(self):
        single = single_run()
        plan, handles = bridge_plan()
        sharded = ShardedEngine(
            plan, 2, parallel=True, feed="router", capture_outputs=True,
            worker_cap=2, data_plane="pickle",
        )
        run = sharded.run(make_sources(plan, handles, bridge_tuples()))
        assert_equivalent(single, sharded, run)


class TestRelayPrimitives:
    def _channel(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        return plan.channel_of(s)

    def _run(self, channel, first, last):
        return [
            ChannelTuple(StreamTuple(SCHEMA, (0, ts), ts), 1)
            for ts in range(first, last)
        ]

    def test_buffered_source_rechunks_and_counts(self):
        channel = self._channel()
        runs = [(channel, self._run(channel, 0, 10))]
        source = BufferedRunSource(runs)
        chunks = list(source.iter_runs(4))
        assert [len(batch) for __, batch in chunks] == [4, 4, 2]
        assert source.delivered == 10
        source = BufferedRunSource(runs, channel=channel)
        assert len(list(source)) == 10
        assert source.delivered == 10

    def test_codec_round_trip_and_gap_detection(self):
        channel = self._channel()
        sender = RelayCodec(7, channel)
        receiver = RelayCodec(7, channel)
        frames = sender.encode(self._run(channel, 0, 5))
        decoded = [receiver.decode(frame) for frame in frames]
        batches = [batch for batch in decoded if batch is not None]
        assert sum(len(batch) for __, batch in batches) == 5
        receiver.decode_eof(sender.encode_eof())
        # Skipping a frame is a sequence gap, not silent data loss.
        fresh = RelayCodec(7, channel)
        frames = sender.encode(self._run(channel, 5, 8))
        with pytest.raises(ChannelError):
            fresh.decode(frames[-1])

    def test_inbox_demuxes_edges_and_detects_starvation(self):
        import queue as queue_module

        channel = self._channel()
        feed = queue_module.Queue()
        sender_a = RelayCodec(1, channel)
        sender_b = RelayCodec(2, channel)
        codecs = {
            1: RelayCodec(1, channel),
            2: RelayCodec(2, channel),
        }
        for frame in sender_a.encode(self._run(channel, 0, 3)):
            feed.put(frame)
        for frame in sender_b.encode(self._run(channel, 3, 6)):
            feed.put(frame)
        feed.put(sender_a.encode_eof())
        inbox = RelayInbox(feed, codecs, timeout=0.05)
        # Edge 2's frames buffer while edge 1 drains, and vice versa.
        __, batch_b = inbox.next_batch(2)
        assert [ct.ts for ct in batch_b.channel_tuples()] == [3, 4, 5]
        __, batch_a = inbox.next_batch(1)
        assert [ct.ts for ct in batch_a.channel_tuples()] == [0, 1, 2]
        assert inbox.next_batch(1) is None
        # Edge 2 never got its EOF: the starvation bound turns a would-be
        # deadlock into an error.
        with pytest.raises(ChannelError, match="starved"):
            inbox.next_batch(2)

    def test_deduct_relay_inputs(self):
        stats = RunStats()
        stats.input_events = 10
        stats.physical_input_events = 10
        stats.physical_events = 25
        deduct_relay_inputs(stats, 4)
        assert stats.input_events == 6
        assert stats.physical_input_events == 6
        assert stats.physical_events == 21
