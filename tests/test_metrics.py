"""RunStats extensions: per-query output latency and migration accounting."""

from __future__ import annotations

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.runtime import QueryRuntime
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.numbered(2)


def _plan_and_source(count=50):
    plan = QueryPlan()
    s = plan.add_source("S", SCHEMA)
    for constant, query_id in ((0, "q0"), (1, "q1")):
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(constant))),
            [s],
            query_id=query_id,
        )
        plan.mark_output(out, query_id)
    Optimizer().optimize(plan)
    tuples = [StreamTuple(SCHEMA, (ts % 3, ts), ts) for ts in range(count)]
    source = StreamSource(plan.channel_of(s), tuples, member_streams=[s])
    return plan, source


class TestOutputLatency:
    def test_latency_tracked_per_query(self):
        plan, source = _plan_and_source()
        engine = StreamEngine(plan, track_latency=True)
        stats = engine.run([source])
        assert set(stats.latency_by_query) == {"q0", "q1"}
        for query_id in ("q0", "q1"):
            assert stats.latency_by_query[query_id] > 0.0
            assert stats.mean_latency(query_id) > 0.0
            # Mean latency cannot exceed the total accumulated latency.
            assert stats.mean_latency(query_id) <= stats.latency_by_query[query_id]

    def test_latency_off_by_default(self):
        plan, source = _plan_and_source()
        stats = StreamEngine(plan).run([source])
        assert stats.latency_by_query == {}
        assert stats.mean_latency("q0") == 0.0

    def test_mean_latency_zero_without_outputs(self):
        stats = RunStats()
        assert stats.mean_latency("ghost") == 0.0


class TestMergeAndAbsorb:
    def _stats(self, outputs, latency, migrations):
        stats = RunStats(output_events=outputs, migrations=migrations)
        stats.outputs_by_query = {"q": outputs}
        stats.latency_by_query = {"q": latency}
        return stats

    def test_merge_combines_latency_and_migrations(self):
        merged = self._stats(2, 0.5, 1).merge(self._stats(3, 0.25, 2))
        assert merged.migrations == 3
        assert merged.latency_by_query == {"q": 0.75}
        assert merged.mean_latency("q") == 0.75 / 5

    def test_absorb_matches_merge(self):
        a = self._stats(2, 0.5, 1)
        b = self._stats(3, 0.25, 2)
        merged = a.merge(b)
        a.absorb(b)
        assert a.migrations == merged.migrations
        assert a.outputs_by_query == merged.outputs_by_query
        assert a.latency_by_query == merged.latency_by_query


class TestMigrationCounter:
    def test_runtime_counts_migrations(self):
        runtime = QueryRuntime({"S": SCHEMA}, track_latency=True)
        runtime.register("FROM S WHERE a0 == 1", query_id="q1")
        runtime.register("FROM S WHERE a0 == 2", query_id="q2")
        runtime.unregister("q1")
        assert runtime.stats.migrations == 3
        assert len(runtime.migration_log) == 3

    def test_runtime_latency_flows_into_cumulative_stats(self):
        runtime = QueryRuntime({"S": SCHEMA}, track_latency=True)
        runtime.register("FROM S WHERE a0 == 1", query_id="q1")
        for ts in range(30):
            runtime.process("S", StreamTuple(SCHEMA, (ts % 3, ts), ts))
        assert runtime.stats.outputs_by_query["q1"] > 0
        assert runtime.stats.mean_latency("q1") > 0.0
