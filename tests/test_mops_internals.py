"""White-box tests for m-op internals not covered by the equivalence suite."""

import pytest

from repro.core.mop import OutputCollector
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.rules import (
    ChannelSequenceRule,
    IndexedSequenceRule,
    PredicateIndexRule,
    SharedJoinRule,
)
from repro.engine.executor import StreamEngine
from repro.errors import PlanError
from repro.mops.predicate_index import PredicateIndexMOp
from repro.mops.shared_join import SharedJoinMOp
from repro.mops.shared_sequence import IndexedSequenceMOp, guard_constant
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, last, left, lit, right
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    TruePredicate,
    conjunction,
)
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.channel import ChannelTuple
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


class TestMOpConstructorValidation:
    def test_predicate_index_rejects_non_selection(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        out = plan.add_operator(
            SlidingWindowAggregate("sum", "b", TimeWindow(5), (), "x"), [s]
        )
        instance = plan.producer_instance_of(out)
        with pytest.raises(PlanError, match="selections only"):
            PredicateIndexMOp([instance])

    def test_shared_join_rejects_mixed_predicates(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        first = plan.add_operator(
            SlidingWindowJoin(Comparison(left("a"), "==", right("a")), TimeWindow(5)),
            [s, t],
        )
        second = plan.add_operator(
            SlidingWindowJoin(Comparison(left("b"), "==", right("b")), TimeWindow(5)),
            [s, t],
        )
        instances = [
            plan.producer_instance_of(first),
            plan.producer_instance_of(second),
        ]
        with pytest.raises(PlanError, match="same join predicate"):
            SharedJoinMOp(instances)

    def test_indexed_sequence_requires_guard(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        out = plan.add_operator(Sequence(TruePredicate()), [s, t])
        instance = plan.producer_instance_of(out)
        with pytest.raises(PlanError, match="constant equality"):
            IndexedSequenceMOp([instance], "a")


class TestGuardConstant:
    def test_extracts_right_side_constant(self):
        operator = Sequence(
            conjunction(
                [DurationWithin(5), Comparison(right("a"), "==", lit(42))]
            )
        )
        assert guard_constant(operator, "a") == 42
        assert guard_constant(operator, "b") is None

    def test_left_side_constant_not_a_guard(self):
        operator = Sequence(Comparison(left("a"), "==", lit(42)))
        assert guard_constant(operator, "a") is None


class TestIndexedSequenceDefinitionGroups:
    def test_same_definition_different_left_streams_share_executor(self):
        """Queries with equal definitions but distinct σθ1 prefixes share one
        instance store inside the AN m-op (the merged-Cayuga-state image)."""
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        predicate = conjunction(
            [DurationWithin(50), Comparison(right("a"), "==", lit(7))]
        )
        for i, const in enumerate([1, 2]):  # different θ1 constants
            selected = plan.add_operator(
                Selection(Comparison(attr("a"), "==", lit(const))), [s],
                query_id=f"q{i}",
            )
            out = plan.add_operator(
                Sequence(predicate), [selected, t], query_id=f"q{i}"
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([PredicateIndexRule(), IndexedSequenceRule()]).optimize(plan)
        an_mop = next(
            mop for mop in plan.mops if isinstance(mop, IndexedSequenceMOp)
        )
        executor = an_mop.make_executor(plan)
        assert len(executor._groups) == 1  # one definition group

        # attribution: a start from q0's prefix only produces q0 output
        engine = StreamEngine(plan, capture_outputs=True)
        source_channel = plan.channel_of(s)
        t_channel = plan.channel_of(t)
        engine.process(
            source_channel, ChannelTuple(StreamTuple(SCHEMA, (1, 0), 0), 1)
        )  # passes q0's θ1 only
        engine.process(
            t_channel, ChannelTuple(StreamTuple(SCHEMA, (7, 1), 1), 1)
        )
        assert len(engine.captured.get("q0", [])) == 1
        assert "q1" not in engine.captured


class TestSharedJoinRouting:
    def test_window_routing_suffix(self):
        """A match at distance d reaches exactly the queries with w >= d."""
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        predicate = Comparison(left("a"), "==", right("a"))
        for i, window in enumerate([2, 5, 20]):
            out = plan.add_operator(
                SlidingWindowJoin(predicate, TimeWindow(window)), [s, t],
                query_id=f"q{i}",
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([SharedJoinRule()]).optimize(plan)
        engine = StreamEngine(plan, capture_outputs=True)
        engine.run(
            [
                StreamSource(
                    plan.channel_of(s), [StreamTuple(SCHEMA, (1, 0), 0)]
                ),
                StreamSource(
                    plan.channel_of(t), [StreamTuple(SCHEMA, (1, 0), 4)]
                ),
            ]
        )
        # distance 4: q0 (w=2) misses; q1 (w=5) and q2 (w=20) match
        assert "q0" not in engine.captured
        assert len(engine.captured["q1"]) == 1
        assert len(engine.captured["q2"]) == 1


class TestChannelSequenceSharedKill:
    def test_broken_pattern_kills_for_all_members(self):
        """µ instances are shared: a break removes the pattern for every
        member query at once (same definition ⇒ identical behaviour)."""
        correlation = Comparison(left("a"), "==", right("a"))
        increasing = Comparison(right("b"), ">", last("b"))
        from repro.operators.iterate import Iterate

        plan = QueryPlan()
        sources = [
            plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(2)
        ]
        t = plan.add_source("T", SCHEMA)
        for i, source in enumerate(sources):
            out = plan.add_operator(
                Iterate(
                    conjunction([correlation, increasing]),
                    conjunction([correlation, increasing]),
                ),
                [source, t],
                query_id=f"q{i}",
            )
            plan.mark_output(out, f"q{i}")
        Optimizer([ChannelSequenceRule()]).optimize(plan)
        channel = plan.channel_of(sources[0])
        t_channel = plan.channel_of(t)
        engine = StreamEngine(plan, capture_outputs=True)
        engine.process(channel, ChannelTuple(StreamTuple(SCHEMA, (1, 10), 0), 0b11))
        engine.process(t_channel, ChannelTuple(StreamTuple(SCHEMA, (1, 12), 1), 1))
        engine.process(t_channel, ChannelTuple(StreamTuple(SCHEMA, (1, 3), 2), 1))
        engine.process(t_channel, ChannelTuple(StreamTuple(SCHEMA, (1, 99), 3), 1))
        # one extension before the break, then nothing
        assert len(engine.captured["q0"]) == 1
        assert len(engine.captured["q1"]) == 1


class TestCollectorRouteErrors:
    def test_route_unknown_stream_raises(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        out = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(1))), [s]
        )
        collector = OutputCollector(plan, [out])
        foreign = plan.add_source("X", SCHEMA)
        with pytest.raises(KeyError):
            collector.route(foreign)
