"""Unit tests for repro.streams.tuples."""

import pytest

from repro.errors import SchemaError
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a", "b")


class TestConstruction:
    def test_basic(self, schema):
        t = StreamTuple(schema, (1, 2), 5)
        assert t["a"] == 1
        assert t["b"] == 2
        assert t.ts == 5

    def test_width_mismatch(self, schema):
        with pytest.raises(SchemaError, match="value count"):
            StreamTuple(schema, (1,), 0)

    def test_from_dict(self, schema):
        t = StreamTuple.from_dict(schema, {"a": 1, "b": 2}, 3)
        assert t.values == (1, 2)

    def test_from_dict_missing(self, schema):
        with pytest.raises(SchemaError, match="missing attribute"):
            StreamTuple.from_dict(schema, {"a": 1}, 0)

    def test_from_dict_extra(self, schema):
        with pytest.raises(SchemaError, match="unknown attributes"):
            StreamTuple.from_dict(schema, {"a": 1, "b": 2, "c": 3}, 0)


class TestAccess(object):
    def test_get_with_default(self, schema):
        t = StreamTuple(schema, (1, 2), 0)
        assert t.get("a") == 1
        assert t.get("zzz", -1) == -1

    def test_as_dict(self, schema):
        t = StreamTuple(schema, (1, 2), 0)
        assert t.as_dict() == {"a": 1, "b": 2}

    def test_iter(self, schema):
        assert list(StreamTuple(schema, (1, 2), 0)) == [1, 2]


class TestIdentity:
    def test_equality_includes_ts(self, schema):
        assert StreamTuple(schema, (1, 2), 0) == StreamTuple(schema, (1, 2), 0)
        assert StreamTuple(schema, (1, 2), 0) != StreamTuple(schema, (1, 2), 1)

    def test_hash_consistent(self, schema):
        assert hash(StreamTuple(schema, (1, 2), 0)) == hash(
            StreamTuple(schema, (1, 2), 0)
        )


class TestDerivation:
    def test_with_ts(self, schema):
        t = StreamTuple(schema, (1, 2), 0).with_ts(9)
        assert t.ts == 9
        assert t.values == (1, 2)

    def test_project(self, schema):
        t = StreamTuple(schema, (1, 2), 0).project(["b"])
        assert t.values == (2,)
        assert t.schema.names == ("b",)

    def test_prefixed(self, schema):
        t = StreamTuple(schema, (1, 2), 0).prefixed("s_")
        assert t.schema.names == ("s_a", "s_b")

    def test_concat_takes_later_ts(self, schema):
        left = StreamTuple(schema.prefixed("l_"), (1, 2), 3)
        right = StreamTuple(schema, (4, 5), 7)
        combined = left.concat(right)
        assert combined.ts == 7
        assert combined.values == (1, 2, 4, 5)

    def test_concat_explicit_ts(self, schema):
        left = StreamTuple(schema.prefixed("l_"), (1, 2), 3)
        right = StreamTuple(schema, (4, 5), 7)
        assert left.concat(right, ts=100).ts == 100

    def test_padded_to(self, schema):
        wide = Schema.of_ints("a", "b", "c")
        t = StreamTuple(schema, (1, 2), 0).padded_to(wide)
        assert t.values == (1, 2, None)
