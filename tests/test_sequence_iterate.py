"""Unit tests for the Cayuga ``;`` and ``µ`` operators."""

import pytest

from repro.errors import OperatorError
from repro.operators.expressions import last, left, lit, right
from repro.operators.iterate import Iterate
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    TruePredicate,
    conjunction,
)
from repro.operators.sequence import Sequence
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("k", "v")


def run_binary(executor, events):
    """events: (side, ts, k, v); returns output tuples."""
    outputs = []
    for side, ts, k, v in events:
        outputs.extend(executor.process(side, StreamTuple(SCHEMA, (k, v), ts)))
    return outputs


class TestSequence:
    def test_basic_match(self):
        operator = Sequence(Comparison(left("k"), "==", right("k")))
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(executor, [(0, 0, 1, 10), (1, 1, 1, 20)])
        assert len(outputs) == 1
        assert outputs[0].as_dict() == {"s_k": 1, "s_v": 10, "k": 1, "v": 20}
        assert outputs[0].ts == 1

    def test_consume_on_match(self):
        operator = Sequence(Comparison(left("k"), "==", right("k")))
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 10), (1, 1, 1, 20), (1, 2, 1, 30)]
        )
        assert len(outputs) == 1  # the instance was consumed by the first match

    def test_keep_on_match(self):
        operator = Sequence(
            Comparison(left("k"), "==", right("k")), consume_on_match=False
        )
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 10), (1, 1, 1, 20), (1, 2, 1, 30)]
        )
        assert len(outputs) == 2

    def test_non_matching_event_leaves_instance(self):
        operator = Sequence(Comparison(left("k"), "==", right("k")))
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 10), (1, 1, 2, 99), (1, 2, 1, 20)]
        )
        assert len(outputs) == 1

    def test_duration_expires_instances(self):
        operator = Sequence(
            conjunction(
                [DurationWithin(3), Comparison(left("k"), "==", right("k"))]
            )
        )
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(executor, [(0, 0, 1, 10), (1, 10, 1, 20)])
        assert outputs == []
        assert executor.state_size == 0  # expired, not lingering

    def test_constant_guard_prefilters_events(self):
        operator = Sequence(
            conjunction(
                [
                    Comparison(right("v"), "==", lit(7)),
                    Comparison(left("k"), "==", right("k")),
                ]
            )
        )
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 0), (1, 1, 1, 5), (1, 2, 1, 7)]
        )
        assert len(outputs) == 1

    def test_event_before_instance_never_matches(self):
        operator = Sequence(TruePredicate())
        executor = operator.executor([SCHEMA, SCHEMA])
        # right event first, then left — no instance yet, so no match
        outputs = run_binary(executor, [(1, 0, 1, 1), (0, 1, 1, 1)])
        assert outputs == []

    def test_multiple_instances_matched_together(self):
        operator = Sequence(Comparison(left("k"), "==", right("k")))
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 1), (0, 1, 1, 2), (1, 2, 1, 9)]
        )
        assert len(outputs) == 2


class TestIterate:
    @pytest.fixture
    def ramp_operator(self):
        correlation = Comparison(left("k"), "==", right("k"))
        increasing = Comparison(right("v"), ">", last("v"))
        return Iterate(
            conjunction([correlation, increasing]),
            conjunction([correlation, increasing]),
        )

    def test_monotone_run_emits_prefixes(self, ramp_operator):
        executor = ramp_operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor,
            [(0, 0, 1, 10), (1, 1, 1, 12), (1, 2, 1, 15), (1, 3, 1, 20)],
        )
        assert [o["v"] for o in outputs] == [12, 15, 20]
        assert all(o["s_v"] == 10 for o in outputs)

    def test_broken_run_kills_instance(self, ramp_operator):
        executor = ramp_operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor,
            [(0, 0, 1, 10), (1, 1, 1, 12), (1, 2, 1, 5), (1, 3, 1, 50)],
        )
        # v=5 breaks the run; v=50 has no instance left
        assert [o["v"] for o in outputs] == [12]

    def test_uncorrelated_events_skip_instance(self, ramp_operator):
        executor = ramp_operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor,
            [(0, 0, 1, 10), (1, 1, 2, 0), (1, 2, 1, 12)],
        )
        # the k=2 event must not break the k=1 instance
        assert [o["v"] for o in outputs] == [12]

    def test_last_advances_with_rebind(self, ramp_operator):
        executor = ramp_operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor,
            [(0, 0, 1, 10), (1, 1, 1, 20), (1, 2, 1, 15)],
        )
        # 15 < last (20) even though 15 > start (10): run is broken
        assert [o["v"] for o in outputs] == [20]

    def test_last_requires_matching_schemas(self):
        other = Schema.of_ints("x")
        operator = Iterate(
            Comparison(right("k"), ">", last("k")), TruePredicate()
        )
        with pytest.raises(OperatorError, match="schemas differ"):
            operator.executor([other, SCHEMA])

    def test_forward_without_rebind_consumes(self):
        # forward fires, rebind never does: the instance moves on (deleted).
        operator = Iterate(
            Comparison(left("k"), "==", right("k")),
            Comparison(right("v"), "<", lit(0)),
        )
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(
            executor, [(0, 0, 1, 1), (1, 1, 1, 5), (1, 2, 1, 6)]
        )
        assert len(outputs) == 1

    def test_duration_window_bounds_lifetime(self):
        correlation = Comparison(left("k"), "==", right("k"))
        operator = Iterate(
            conjunction([DurationWithin(2), correlation]), correlation
        )
        executor = operator.executor([SCHEMA, SCHEMA])
        outputs = run_binary(executor, [(0, 0, 1, 1), (1, 10, 1, 2)])
        assert outputs == []

    def test_output_schema(self, ramp_operator):
        schema = ramp_operator.output_schema([SCHEMA, SCHEMA])
        assert schema.names == ("s_k", "s_v", "k", "v")

    def test_definition_equality(self):
        p = Comparison(left("k"), "==", right("k"))
        q = Comparison(right("v"), ">", last("v"))
        assert Iterate(p, q) == Iterate(p, q)
        assert Iterate(p, q) != Iterate(q, p)
