"""Sharded engine: output equality with the single engine, all modes/feeds.

The sharded contract extends the batched one: for every plan and every
mode (inline / process workers) and feed (local split / wire-routed), the
union of per-shard outputs — per-query counts, content, timestamps *and*
order — equals the single batched engine's, and aggregate input accounting
matches (each source event counted exactly once).
"""

import numpy as np
import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.errors import PlanError
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.shard import ShardedEngine, SourceRouter, fork_available
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.synthetic import synthetic_schema
from repro.workloads.zipf import ZipfSampler


def partitionable_plan(num_sources=3, queries_per_source=8, optimize=True):
    schema = synthetic_schema()
    rng = np.random.default_rng(5)
    plan = QueryPlan()
    sources = [plan.add_source(f"S{i}", schema) for i in range(num_sources)]
    for i, source in enumerate(sources):
        constants = ZipfSampler(0, 49, 1.5, rng).sample(queries_per_source)
        for j, constant in enumerate(constants):
            query_id = f"q{i}_{j}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(int(constant)))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    if optimize:
        Optimizer().optimize(plan)
    return plan, sources


def interleaved_tuples(num_sources, count, seed=6):
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 50, size=(count, len(schema)))
    per_source = [[] for __ in range(num_sources)]
    for ts in range(count):
        per_source[ts % num_sources].append(
            StreamTuple(schema, tuple(int(v) for v in values[ts]), ts)
        )
    return per_source


def make_sources(plan, sources, per_source):
    return [
        StreamSource(plan.channel_of(stream), tuples)
        for stream, tuples in zip(sources, per_source)
    ]


def single_engine_run(plan_factory, sources_factory):
    plan, handles = plan_factory()
    engine = StreamEngine(plan, capture_outputs=True)
    stats = engine.run(sources_factory(plan, handles))
    return stats, engine.captured


def assert_sharded_equivalent(single, sharded_engine, sharded_stats):
    stats, captured = single
    aggregate = sharded_stats.aggregate
    assert aggregate.outputs_by_query == stats.outputs_by_query
    assert aggregate.output_events == stats.output_events
    assert aggregate.input_events == stats.input_events
    assert sharded_engine.captured == captured


class TestShardedEquivalence:
    @pytest.mark.parametrize("optimize", [False, True])
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_inline_modes_match_single_engine(self, optimize, n_shards, feed):
        per_source = interleaved_tuples(3, 400)
        factory = lambda: partitionable_plan(optimize=optimize)
        sources_factory = lambda plan, handles: make_sources(
            plan, handles, per_source
        )
        single = single_engine_run(factory, sources_factory)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, n_shards, parallel=False, feed=feed, capture_outputs=True,
            max_batch=64,
        )
        run = sharded.run(sources_factory(plan, handles))
        assert run.mode == "inline"
        assert len(run.per_shard) == n_shards
        assert_sharded_equivalent(single, sharded, run)

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_process_workers_match_single_engine(self, feed):
        per_source = interleaved_tuples(3, 200)
        factory = lambda: partitionable_plan()
        sources_factory = lambda plan, handles: make_sources(
            plan, handles, per_source
        )
        single = single_engine_run(factory, sources_factory)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, 3, parallel=True, feed=feed, capture_outputs=True
        )
        run = sharded.run(sources_factory(plan, handles))
        assert run.mode == "process"
        assert_sharded_equivalent(single, sharded, run)

    def test_stateful_sequence_component(self):
        # A component with window state (sequence) next to a stateless one.
        schema = Schema.numbered(2)

        def factory():
            plan = QueryPlan()
            s = plan.add_source("S", schema)
            t = plan.add_source("T", schema)
            u = plan.add_source("U", schema)
            sel = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(1))),
                [s],
                query_id="q_seq",
            )
            seq = plan.add_operator(
                Sequence(
                    conjunction(
                        [DurationWithin(7), Comparison(right("a0"), ">", lit(0))]
                    )
                ),
                [sel, t],
                query_id="q_seq",
            )
            plan.mark_output(seq, "q_seq")
            other = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(2))),
                [u],
                query_id="q_u",
            )
            plan.mark_output(other, "q_u")
            Optimizer().optimize(plan)
            return plan, (s, t, u)

        tuples = [[], [], []]
        for ts in range(120):
            tuples[ts % 3].append(StreamTuple(schema, (ts % 4, ts), ts))
        sources_factory = lambda plan, handles: make_sources(
            plan, handles, tuples
        )
        single = single_engine_run(factory, sources_factory)
        assert single[0].output_events > 0
        plan, handles = factory()
        sharded = ShardedEngine(plan, 2, parallel=False, capture_outputs=True)
        run = sharded.run(sources_factory(plan, handles))
        assert_sharded_equivalent(single, sharded, run)
        assert sharded.shard_plan.effective_shards == 2

    @pytest.mark.parametrize("feed", ["local", "router"])
    def test_unconsumed_source_still_counted(self, feed):
        # A source no query reads: the single engine still counts its
        # events, so the sharded aggregate must too — on both feeds (the
        # router cannot ship runs for a channel no decoder knows, so it
        # counts them coordinator-side instead of crashing).
        schema = Schema.numbered(1)

        def factory():
            plan = QueryPlan()
            s = plan.add_source("S", schema)
            dead = plan.add_source("DEAD", schema)
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(0))),
                [s],
                query_id="q",
            )
            plan.mark_output(out, "q")
            return plan, (s, dead)

        tuples = [
            [StreamTuple(schema, (ts % 2,), 2 * ts) for ts in range(20)],
            [StreamTuple(schema, (9,), 2 * ts + 1) for ts in range(20)],
        ]
        sources_factory = lambda plan, handles: make_sources(
            plan, handles, tuples
        )
        single = single_engine_run(factory, sources_factory)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, 2, parallel=False, feed=feed, capture_outputs=True
        )
        run = sharded.run(sources_factory(plan, handles))
        assert run.aggregate.input_events == single[0].input_events == 40
        assert run.aggregate.outputs_by_query == single[0].outputs_by_query

    @pytest.mark.skipif(not fork_available(), reason="needs fork start method")
    def test_worker_failure_raises_not_hangs(self):
        # A source whose iterable raises mid-stream inside the worker must
        # surface as a PlanError with the shard's traceback, not deadlock
        # the coordinator.
        schema = synthetic_schema()

        def exploding():
            yield StreamTuple(schema, tuple(range(10)), 0)
            raise RuntimeError("boom in worker")

        plan, handles = partitionable_plan(num_sources=2)
        sources = [
            StreamSource(plan.channel_of(handles[0]), exploding()),
            StreamSource(
                plan.channel_of(handles[1]),
                [StreamTuple(schema, tuple(range(10)), 1)],
            ),
        ]
        sharded = ShardedEngine(plan, 2, parallel=True, feed="local")
        with pytest.raises(PlanError, match="boom in worker"):
            sharded.run(sources)


class TestSourceRouter:
    def test_routes_by_channel_with_stable_fallback(self):
        router = SourceRouter({10: 1, 11: 0}, 2)
        assert router.shard_of_channel(10) == 1
        assert router.shard_of_channel(11) == 0
        assert router.shard_of_channel(999) == router.shard_of_channel(999)
        assert 0 <= router.shard_of_channel(999) < 2

    def test_rejects_bad_shard_count(self):
        with pytest.raises(PlanError):
            SourceRouter({}, 0)

    def test_split_sources_partitions_by_owner(self):
        plan, handles = partitionable_plan(num_sources=2)
        per_source = interleaved_tuples(2, 10)
        sources = make_sources(plan, handles, per_source)
        sharded = ShardedEngine(plan, 2, parallel=False)
        split = sharded.router.split_sources(sources)
        assert sorted(len(bucket) for bucket in split) == [1, 1]


class TestShardedRunStats:
    def test_wall_and_busy_seconds(self):
        plan, handles = partitionable_plan(num_sources=2)
        per_source = interleaved_tuples(2, 100)
        sharded = ShardedEngine(plan, 2, parallel=False)
        run = sharded.run(make_sources(plan, handles, per_source))
        assert run.wall_seconds > 0
        assert run.busy_seconds > 0
        assert run.throughput > 0
        assert "2 shards" in str(run)

    def test_config_validation(self):
        plan, __ = partitionable_plan(num_sources=2)
        with pytest.raises(PlanError):
            ShardedEngine(plan, 2, feed="bogus")
        with pytest.raises(PlanError):
            ShardedEngine(plan, 2, parallel="yes")
