"""The CI perf-regression gate must pass, fail and diagnose correctly."""

import importlib.util
import json
import pathlib

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
_spec = importlib.util.spec_from_file_location(
    "compare_bench", REPO_ROOT / "benchmarks" / "compare_bench.py"
)
_module = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_module)
compare, iter_speedups, main = _module.compare, _module.iter_speedups, _module.main


def throughput_results(headline=5.0, zipf=5.0, churn=1.0):
    return {
        "headline": {"optimized_zipf_batched_speedup": headline},
        "workloads": {
            "zipf": {
                "plans": {
                    "optimized": {"batched_speedup": zipf},
                    "naive": {"batched_speedup": 2.0},
                }
            },
            "churn": {"modes": {"batched_speedup": churn}},
        },
    }


def shard_results(headline=3.0):
    return {
        "headline": {"sharded_4x_speedup": headline},
        "workloads": {
            "partitionable_zipf": {
                "cells": {
                    "single_batched": {"events_per_sec": 1.0},
                    "sharded_4": {"speedup_vs_single_batched": headline},
                }
            }
        },
    }


class TestIterSpeedups:
    def test_extracts_throughput_metrics(self):
        metrics = dict(iter_speedups(throughput_results()))
        assert metrics["headline.optimized_zipf_batched_speedup"] == 5.0
        assert metrics["zipf.optimized.batched_speedup"] == 5.0
        assert metrics["zipf.naive.batched_speedup"] == 2.0
        assert metrics["churn.batched_speedup"] == 1.0

    def test_extracts_shard_metrics(self):
        metrics = dict(iter_speedups(shard_results()))
        assert metrics["headline.sharded_4x_speedup"] == 3.0
        assert (
            metrics["partitionable_zipf.sharded_4.speedup_vs_single_batched"]
            == 3.0
        )


class TestCompare:
    def test_identical_passes(self):
        assert compare(throughput_results(), throughput_results(), 0.8) == []

    def test_small_drop_within_tolerance(self):
        current = throughput_results(headline=4.2, zipf=4.2)
        assert compare(throughput_results(), current, 0.8) == []

    def test_regression_fails_with_reason(self):
        current = throughput_results(headline=1.0, zipf=1.0)
        failures = compare(throughput_results(), current, 0.8)
        assert len(failures) == 2
        assert "measured 1.00x" in failures[0]
        assert "required" in failures[0]

    def test_missing_metric_fails(self):
        current = throughput_results()
        del current["headline"]["optimized_zipf_batched_speedup"]
        failures = compare(throughput_results(), current, 0.8)
        assert any("missing" in failure for failure in failures)

    def test_empty_baseline_fails(self):
        assert compare({}, throughput_results(), 0.8)

    def test_improvement_always_passes(self):
        current = throughput_results(headline=50.0, zipf=50.0, churn=9.0)
        assert compare(throughput_results(), current, 0.8) == []


class TestMain:
    def _write(self, path, data):
        with open(path, "w") as handle:
            json.dump(data, handle)
        return str(path)

    def test_pass_exit_zero(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", throughput_results())
        current = self._write(tmp_path / "cur.json", throughput_results())
        assert main([baseline, current]) == 0

    def test_regression_exit_one(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", throughput_results())
        current = self._write(
            tmp_path / "cur.json", throughput_results(headline=0.5, zipf=0.5)
        )
        assert main([baseline, current]) == 1

    def test_min_ratio_flag(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", throughput_results())
        current = self._write(
            tmp_path / "cur.json", throughput_results(headline=2.6, zipf=2.6)
        )
        assert main([baseline, current, "--min-ratio", "0.5"]) == 0
        assert main([baseline, current, "--min-ratio", "0.9"]) == 1

    def test_unreadable_file_exit_one(self, tmp_path):
        baseline = self._write(tmp_path / "base.json", throughput_results())
        assert main([baseline, str(tmp_path / "absent.json")]) == 1

    def test_real_committed_baseline_is_gateable(self):
        with open(REPO_ROOT / "BENCH_throughput.smoke.baseline.json") as handle:
            baseline = json.load(handle)
        metrics = dict(iter_speedups(baseline))
        assert "headline.optimized_zipf_batched_speedup" in metrics
        assert compare(baseline, baseline, 0.8) == []
