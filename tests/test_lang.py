"""Unit tests for the query-language front end (parser, builder, compiler)."""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.errors import ParseError, QueryLanguageError
from repro.lang.ast import (
    AggregateNode,
    IterateNode,
    JoinNode,
    LogicalQuery,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.lang.builder import from_stream
from repro.lang.compiler import compile_query
from repro.lang.parser import parse_predicate, parse_query
from repro.operators.expressions import AttrRef, LAST, LEFT, RIGHT, attr, lit
from repro.operators.predicates import Comparison, DurationWithin, Or
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


class TestPredicateParsing:
    def test_comparison(self):
        predicate = parse_predicate("a == 5")
        assert predicate == Comparison(AttrRef(LEFT, "a"), "==", lit(5))

    def test_sides(self):
        predicate = parse_predicate("left.a == right.b")
        assert predicate == Comparison(AttrRef(LEFT, "a"), "==", AttrRef(RIGHT, "b"))

    def test_last_side(self):
        predicate = parse_predicate("right.v > last.v")
        assert predicate == Comparison(AttrRef(RIGHT, "v"), ">", AttrRef(LAST, "v"))

    def test_within(self):
        assert parse_predicate("WITHIN 100") == DurationWithin(100)

    def test_conjunction_flattens(self):
        predicate = parse_predicate("a == 1 AND b == 2 AND WITHIN 5")
        from repro.operators.predicates import conjuncts

        assert len(conjuncts(predicate)) == 3

    def test_or_and_not(self):
        predicate = parse_predicate("NOT a == 1 OR b == 2")
        assert isinstance(predicate, Or)

    def test_parenthesized(self):
        predicate = parse_predicate("(a == 1 OR b == 2) AND b == 3")
        from repro.operators.predicates import And

        assert isinstance(predicate, And)

    def test_arithmetic(self):
        predicate = parse_predicate("a * 2 + 1 < b")
        assert predicate.lhs.op == "+"  # precedence: (a*2)+1

    def test_float_literal(self):
        predicate = parse_predicate("a < 1.5")
        assert predicate.rhs == lit(1.5)

    def test_trailing_garbage(self):
        with pytest.raises(ParseError, match="trailing"):
            parse_predicate("a == 1 banana")

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_predicate("a == $")

    def test_keywords_case_insensitive(self):
        assert parse_predicate("a == 1 and b == 2") == parse_predicate(
            "a == 1 AND b == 2"
        )


class TestQueryParsing:
    def test_from_where(self):
        query = parse_query("FROM S WHERE a == 1", "q")
        assert isinstance(query.root, SelectNode)
        assert query.root.input == SourceNode("S")

    def test_aggregate_clause(self):
        query = parse_query("FROM S AGG avg(b) OVER 60 BY a AS m", "q")
        node = query.root
        assert isinstance(node, AggregateNode)
        assert node.function == "avg"
        assert node.window == 60
        assert node.group_by == ("a",)
        assert node.output_name == "m"

    def test_count_star(self):
        query = parse_query("FROM S AGG count(*) OVER 5", "q")
        assert query.root.target is None

    def test_join_clause(self):
        query = parse_query(
            "FROM S JOIN T ON left.a == right.a WITHIN 50", "q"
        )
        assert isinstance(query.root, JoinNode)
        assert query.root.window == 50

    def test_seq_clause(self):
        query = parse_query("FROM S SEQ T MATCHING WITHIN 5 AND right.a == 2", "q")
        assert isinstance(query.root, SequenceNode)
        assert query.root.consume_on_match

    def test_seq_keep(self):
        query = parse_query("FROM S SEQ T MATCHING right.a == 2 KEEP", "q")
        assert not query.root.consume_on_match

    def test_mu_clause(self):
        query = parse_query(
            "FROM S MU T FORWARD left.a == right.a REBIND right.b > last.b", "q"
        )
        assert isinstance(query.root, IterateNode)

    def test_subquery_source(self):
        query = parse_query("FROM (FROM S WHERE a == 1) SEQ T MATCHING TRUE", "q")
        assert isinstance(query.root.left, SelectNode)

    def test_select_items(self):
        query = parse_query("FROM S SELECT a, a + b AS total", "q")
        assert query.root.items[0][0] == "a"
        assert query.root.items[1][0] == "total"

    def test_computed_select_needs_alias(self):
        with pytest.raises(ParseError, match="AS"):
            parse_query("FROM S SELECT a + b", "q")

    def test_sources_listing(self):
        query = parse_query("FROM S SEQ T MATCHING TRUE", "q")
        assert query.sources() == ["S", "T"]

    def test_empty_query_id_rejected(self):
        with pytest.raises(QueryLanguageError):
            LogicalQuery("", SourceNode("S"))


class TestBuilder:
    def test_builder_matches_parser(self):
        parsed = parse_query("FROM S WHERE a == 1 AGG sum(b) OVER 5 AS s", "q")
        built = (
            from_stream("S")
            .where(Comparison(attr("a"), "==", lit(1)))
            .aggregate("sum", "b", over=5, name="s")
            .named("q")
        )
        assert built.root == parsed.root

    def test_builder_binary_steps(self):
        pattern = (
            from_stream("S")
            .followed_by(from_stream("T"), matching=DurationWithin(9))
            .named("q")
        )
        assert isinstance(pattern.root, SequenceNode)

    def test_invalid_other_type(self):
        with pytest.raises(QueryLanguageError):
            from_stream("S").join("T", on=DurationWithin(1), within=5)


class TestCompiler:
    def test_compile_and_run(self):
        query = parse_query("FROM S WHERE a == 1 SELECT b", "q")
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        compile_query(query, plan, {"S": source})
        Optimizer().optimize(plan)
        engine = StreamEngine(plan, capture_outputs=True)
        engine.run(
            [
                StreamSource(
                    plan.channel_of(source),
                    [StreamTuple(SCHEMA, (ts % 2, ts), ts) for ts in range(6)],
                )
            ]
        )
        outputs = engine.captured["q"]
        assert [o.values for o in outputs] == [(1,), (3,), (5,)]

    def test_unknown_stream(self):
        query = parse_query("FROM X WHERE a == 1", "q")
        plan = QueryPlan()
        with pytest.raises(QueryLanguageError, match="unknown stream"):
            compile_query(query, plan, {})

    def test_publish_registers_stream(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        streams = {"S": source}
        smoothing = parse_query("FROM S AGG avg(b) OVER 5 BY a AS b", "smooth")
        compile_query(
            smoothing, plan, streams, mark_output=False, publish="SMOOTHED"
        )
        assert "SMOOTHED" in streams
        downstream = parse_query("FROM SMOOTHED WHERE b > 1", "q")
        compile_query(downstream, plan, streams)
        plan.validate()

    def test_publish_collision(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        streams = {"S": source}
        query = parse_query("FROM S WHERE a == 1", "q")
        with pytest.raises(QueryLanguageError, match="already registered"):
            compile_query(query, plan, streams, publish="S")

    def test_compiled_hybrid_query_equivalent_to_template(self):
        """The parsed Query 1 produces the same plan shape as the template."""
        text = """
        FROM CPU
          AGG avg(load) OVER 60 BY pid AS load
          WHERE load < 20
          MU (FROM CPU AGG avg(load) OVER 60 BY pid AS load)
             FORWARD left.pid == right.pid AND right.load > last.load
             REBIND left.pid == right.pid AND right.load > last.load
          WHERE load > 10
        """
        from repro.workloads.perfmon import CPU_SCHEMA

        query = parse_query(text, "q")
        plan = QueryPlan()
        cpu = plan.add_source("CPU", CPU_SCHEMA)
        compile_query(query, plan, {"CPU": cpu})
        Optimizer().optimize(plan)
        kinds = sorted(
            type(inst.operator).__name__ for inst in plan.instances()
        )
        assert kinds == [
            "Iterate",
            "Selection",
            "Selection",
            "SlidingWindowAggregate",
        ]
