"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, build_plan, load_queries, main


@pytest.fixture
def query_file(tmp_path):
    path = tmp_path / "queries.rql"
    path.write_text(
        """
# comment line
alerts: FROM S WHERE a0 == 1
---
FROM S AGG sum(a1) OVER 10 AS total
---

---
pattern: FROM S SEQ T MATCHING WITHIN 5 AND right.a0 == 2
"""
    )
    return str(path)


class TestLoadQueries:
    def test_blocks_and_names(self, query_file):
        queries = load_queries(query_file)
        names = [name for name, __ in queries]
        assert names == ["alerts", "q1", "pattern"]

    def test_comments_stripped(self, query_file):
        queries = load_queries(query_file)
        assert "comment" not in queries[0][1]

    def test_empty_blocks_skipped(self, query_file):
        assert len(load_queries(query_file)) == 3


class TestBuildPlan:
    def test_compiles_all_queries(self, query_file):
        plan, streams = build_plan(load_queries(query_file))
        query_ids = {q for qs in plan.sinks.values() for q in qs}
        assert query_ids == {"alerts", "q1", "pattern"}
        assert "S" in streams and "T" in streams


class TestCommands:
    def test_optimize_command(self, query_file, capsys):
        assert main(["optimize", query_file]) == 0
        output = capsys.readouterr().out
        assert "naive plan" in output
        assert "optimized plan" in output
        assert "estimated cost" in output

    def test_run_command(self, query_file, capsys):
        assert main(["run", query_file, "--events", "500"]) == 0
        output = capsys.readouterr().out
        assert "RunStats" in output

    def test_run_perfmon_source(self, tmp_path, capsys):
        path = tmp_path / "q.rql"
        path.write_text("load: FROM CPU WHERE load > 50")
        assert main(["run", str(path), "--source", "perfmon", "--events", "600"]) == 0
        assert "RunStats" in capsys.readouterr().out

    def test_show_outputs(self, query_file, capsys):
        assert (
            main(["run", query_file, "--events", "300", "--show-outputs", "2"]) == 0
        )
        output = capsys.readouterr().out
        assert "@" in output  # printed tuples carry timestamps

    def test_missing_file_reports_error(self, capsys):
        assert main(["optimize", "/nonexistent/queries.rql"]) == 2
        assert "error" in capsys.readouterr().err

    def test_parse_error_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.rql"
        path.write_text("q: FROM S WHERE")
        assert main(["optimize", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_empty_file(self, tmp_path, capsys):
        path = tmp_path / "empty.rql"
        path.write_text("\n# only comments\n")
        assert main(["optimize", str(path)]) == 1

    def test_parser_structure(self):
        parser = build_parser()
        args = parser.parse_args(["figures", "9a", "--full"])
        assert args.figure == ["9a"]
        assert args.full

    def test_churn_command(self, capsys):
        assert main(
            [
                "churn",
                "--events", "400",
                "--arrival-rate", "0.02",
                "--initial-queries", "3",
                "--latency",
            ]
        ) == 0
        output = capsys.readouterr().out
        assert "incremental mode" in output
        assert "migrations:" in output
        assert "executors reused:" in output
        assert "mean latency" in output

    def test_churn_full_rebuild_mode(self, capsys):
        assert main(
            ["churn", "--events", "300", "--full-rebuild", "--verbose"]
        ) == 0
        output = capsys.readouterr().out
        assert "full-rebuild mode" in output
        assert "register" in output
