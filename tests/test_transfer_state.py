"""Executor state serialization: transfers must round-trip a process hop.

A cross-process rebalance cannot carry live executors (compiled predicate
closures do not pickle); it carries ``snapshot_state()`` payloads and
re-seeds freshly built executors on the far side.  These tests force every
in-process rebalance through the wire codec (pickle round-trip, live
executors stripped) and assert the serve stays **byte-identical** to an
uninterrupted control — for every stateful operator family: sequence
instance stores, iterate (µ) partial matches, sliding-window aggregates,
window joins, and the merged m-ops the optimizer builds from them.
"""

import pickle

import pytest

from repro.shard import ShardedRuntime
from repro.shard.wire import decode_transfer, encode_transfer
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a0", "a1")

QUERIES = {
    # KEEP retains matched instances, so the store demonstrably accumulates.
    "sequence": ["FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP"],
    "consuming-sequence": [
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25"
    ],
    "aggregate": ["FROM S AGG avg(a1) OVER 30 BY a0 AS m"],
    "join": ["FROM S JOIN T ON left.a0 == right.a0 WITHIN 20"],
    "iterate": ["FROM S MU T FORWARD left.a0 == right.a0 REBIND right.a1 >= last.a1"],
    "extremum": ["FROM S AGG max(a1) OVER 40 BY a0 AS peak"],
    # Same definition twice: reoptimize merges them into a shared m-op, so
    # the transfer carries a *merged* executor's state.
    "merged-sequence": [
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP",
        "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP",
    ],
    "merged-aggregate": [
        "FROM S AGG sum(a1) OVER 30 BY a0 AS m",
        "FROM S AGG sum(a1) OVER 50 AS total",
    ],
}


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


def serialized_rebalance(sharded: ShardedRuntime, query_id: str, to_shard: int):
    """An in-process rebalance forced through the wire codec.

    Exactly what the process-mode runtime does between two workers: the
    donor's transfer is pickled with executor state reduced to snapshots,
    the receiver rebuilds executors from the plan subgraph and re-seeds
    them.  Returns the decoded transfer for inspection.
    """
    from_shard = sharded.shard_of(query_id)
    transfer = sharded.runtimes[from_shard].export_component(query_id)
    decoded = decode_transfer(encode_transfer(transfer))
    assert decoded.entries == {}, "wire transfers must not carry executors"
    sharded.runtimes[to_shard].import_component(decoded)
    for moved_id in decoded.queries:
        sharded._query_shard[moved_id] = to_shard
    sharded._route_cache.clear()
    return decoded


class TestSerializedRebalanceEquivalence:
    @pytest.mark.parametrize("family", sorted(QUERIES))
    def test_state_rides_the_wire(self, family):
        queries = QUERIES[family]

        def build():
            runtime = ShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
            )
            for index, text in enumerate(queries):
                runtime.register(text, query_id=f"q{index}", shard=0)
            if len(queries) > 1:
                runtime.reoptimize(shard=0)  # force the merged m-op shape
            return runtime

        control = build()
        feed(control, 0, 120)

        moved = build()
        feed(moved, 0, 60)
        state_before = moved.state_size
        transfer = serialized_rebalance(moved, "q0", 1)
        # Joins and consuming sequences may legitimately have drained by
        # ts 60; every other family must be carrying live state.
        if family not in ("join", "consuming-sequence"):
            assert state_before > 0, "workload must accumulate state"
        assert moved.state_size == state_before, "state lost in the hop"
        assert transfer.state is not None
        feed(moved, 60, 120)

        assert control.stats.output_events > 0
        assert moved.stats.outputs_by_query == control.stats.outputs_by_query
        assert moved.captured == control.captured
        assert moved.state_size == control.state_size

    def test_double_hop_round_trip(self):
        """Shard 0 → 1 → 0: repeated serialization accumulates nothing."""

        def build():
            runtime = ShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
            )
            runtime.register(QUERIES["aggregate"][0], query_id="agg", shard=0)
            return runtime

        control = build()
        feed(control, 0, 90)

        bounced = build()
        feed(bounced, 0, 30)
        serialized_rebalance(bounced, "agg", 1)
        feed(bounced, 30, 60)
        serialized_rebalance(bounced, "agg", 0)
        feed(bounced, 60, 90)

        assert bounced.captured == control.captured
        assert bounced.state_size == control.state_size
        # Source references stay canonical after repeated adoption.
        plan = bounced.runtimes[0].plan
        for mop in plan.mops:
            for stream in mop.input_streams:
                if stream.is_source:
                    assert stream is bounced.streams[stream.name]

    def test_transfer_blob_is_pickle_stable(self):
        runtime = ShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        runtime.register(QUERIES["sequence"][0], query_id="q0", shard=0)
        feed(runtime, 0, 40)
        transfer = runtime.runtimes[0].export_component("q0")
        blob = encode_transfer(transfer)
        assert isinstance(blob, bytes)
        payload = pickle.loads(blob)
        assert set(payload) == {
            "plan_transfer",
            "queries",
            "captured",
            "state",
            "state_carried",
        }
        # Restore so the runtime stays consistent for teardown asserts.
        runtime.runtimes[0].import_component(decode_transfer(blob))
        assert runtime.runtimes[0].state_size == transfer.state_carried


class TestSnapshotRestoreContracts:
    def test_stateless_executor_rejects_foreign_state(self):
        from repro.core.mop import MOpExecutor
        from repro.errors import PlanError

        executor = MOpExecutor()
        assert executor.snapshot_state() is None
        executor.restore_state(None)  # no-op
        with pytest.raises(PlanError):
            executor.restore_state({"bogus": 1})

    def test_operator_executor_contract(self):
        from repro.errors import OperatorError
        from repro.operators.base import OperatorExecutor

        executor = OperatorExecutor()
        assert executor.snapshot_state() is None
        executor.restore_state(None)
        with pytest.raises(OperatorError):
            executor.restore_state(object())
