"""Unit tests for the workload and dataset generators."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.perfmon import CPU_SCHEMA, D1, D2, PerfmonDataset
from repro.workloads.synthetic import (
    interleaved_events,
    round_robin_rounds,
    synthetic_schema,
)
from repro.workloads.templates import (
    HybridWorkload,
    Workload1,
    Workload2,
    Workload3,
    WorkloadParameters,
    sources_from_events,
)
from repro.workloads.zipf import ZipfSampler


class TestZipf:
    def test_range_respected(self):
        sampler = ZipfSampler(1, 100, 1.5, np.random.default_rng(0))
        values = sampler.sample(1000)
        assert values.min() >= 1
        assert values.max() <= 100

    def test_favors_large(self):
        sampler = ZipfSampler(1, 1000, 1.5, np.random.default_rng(0))
        values = sampler.sample(5000)
        # the paper: "a window of length 1000 is most likely to be chosen"
        counts = np.bincount(values, minlength=1001)
        assert counts[1000] == counts.max()

    def test_favor_small_orientation(self):
        sampler = ZipfSampler(1, 1000, 1.5, np.random.default_rng(0), favor_large=False)
        values = sampler.sample(5000)
        counts = np.bincount(values, minlength=1001)
        assert counts[1] == counts[1:].max()

    def test_higher_parameter_more_commonality(self):
        rng = np.random.default_rng(0)
        flat = ZipfSampler(1, 1000, 1.2, rng)
        peaked = ZipfSampler(1, 1000, 2.0, rng)
        assert len(set(peaked.sample(500))) < len(set(flat.sample(500)))

    def test_expected_distinct_monotone(self):
        sampler = ZipfSampler(1, 1000, 1.5, np.random.default_rng(0))
        assert sampler.expected_distinct(10) < sampler.expected_distinct(100)

    def test_invalid_range(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(5, 4, 1.5)

    def test_invalid_parameter(self):
        with pytest.raises(WorkloadError):
            ZipfSampler(1, 10, 0.0)


class TestSynthetic:
    def test_schema_shape(self):
        schema = synthetic_schema()
        assert len(schema) == 10
        assert schema.names[0] == "a0"

    def test_interleaving(self):
        events = interleaved_events(
            synthetic_schema(2), 10, np.random.default_rng(0)
        )
        assert [name for name, __ in events] == ["S", "T"] * 5
        assert [t.ts for __, t in events] == list(range(10))

    def test_value_domain(self):
        events = interleaved_events(
            synthetic_schema(2), 200, np.random.default_rng(0), value_domain=7
        )
        assert all(0 <= v < 7 for __, t in events for v in t.values)

    def test_rounds_shared_content(self):
        rounds = round_robin_rounds(
            synthetic_schema(2), 5, 10, np.random.default_rng(0)
        )
        assert len(rounds) == 5
        s_values, t_values = rounds[0]
        assert s_values.shape == (2,)


class TestPerfmon:
    def test_shape(self):
        dataset = PerfmonDataset(processes=4, duration_seconds=10, seed=0)
        tuples = list(dataset.generate())
        assert len(tuples) == 40
        assert tuples[0].schema == CPU_SCHEMA
        # pid-major within each second
        assert [t["pid"] for t in tuples[:4]] == [0, 1, 2, 3]

    def test_loads_bounded(self):
        dataset = PerfmonDataset(processes=10, duration_seconds=60, seed=1)
        assert all(0 <= t["load"] <= 100 for t in dataset.generate())

    def test_deterministic(self):
        first = list(PerfmonDataset(4, 30, seed=3).generate())
        second = list(PerfmonDataset(4, 30, seed=3).generate())
        assert first == second

    def test_contains_ramps(self):
        """At least one process must produce a monotone ramp (for µ)."""
        dataset = PerfmonDataset(processes=30, duration_seconds=120, seed=0)
        by_pid = {}
        for t in dataset.generate():
            by_pid.setdefault(t["pid"], []).append(t["load"])
        best_run = 0
        for loads in by_pid.values():
            run = 1
            for prev, cur in zip(loads, loads[1:]):
                run = run + 1 if cur > prev else 1
                best_run = max(best_run, run)
        assert best_run >= 5

    def test_duration_cap(self):
        dataset = PerfmonDataset(4, 10, seed=0)
        with pytest.raises(WorkloadError):
            list(dataset.generate(11))

    def test_d1_d2_sizes(self):
        assert D1().processes == 104
        assert D2().processes == 28


class TestWorkloadTemplates:
    def test_workload1_deterministic(self):
        params = WorkloadParameters(num_queries=10)
        first, second = Workload1(params, seed=5), Workload1(params, seed=5)
        assert first.theta1_constants == second.theta1_constants
        assert first.windows == second.windows

    def test_workload1_plan_has_all_queries(self):
        params = WorkloadParameters(num_queries=10)
        plan, __ = Workload1(params).rumor_plan()
        all_query_ids = {q for qs in plan.sinks.values() for q in qs}
        assert len(all_query_ids) == 10

    def test_workload2_variants(self):
        params = WorkloadParameters(num_queries=5)
        assert Workload2(params, variant="seq").variant == "seq"
        with pytest.raises(WorkloadError):
            Workload2(params, variant="zzz")

    def test_workload3_channel_capacity(self):
        params = WorkloadParameters(num_queries=20)
        workload = Workload3(params, capacity=10)
        plan, name_map = workload.rumor_plan(channels=True)
        channel = plan.channel_of(name_map["S1"])
        assert channel.capacity == 10

    def test_workload3_plain_has_singletons(self):
        params = WorkloadParameters(num_queries=20)
        workload = Workload3(params, capacity=10)
        plan, name_map = workload.rumor_plan(channels=False)
        assert plan.channel_of(name_map["S1"]).is_singleton

    def test_workload3_same_logical_content(self):
        from repro.engine.executor import StreamEngine

        params = WorkloadParameters(num_queries=15)
        workload = Workload3(params, capacity=5)
        rounds = workload.rounds(50)
        results = []
        for channels in (True, False):
            plan, name_map = workload.rumor_plan(channels=channels)
            engine = StreamEngine(plan)
            stats = engine.run(workload.sources(plan, name_map, rounds))
            results.append(stats)
        assert results[0].input_events == results[1].input_events
        assert results[0].output_events == results[1].output_events

    def test_hybrid_sel_zero_produces_nothing(self):
        from repro.engine.executor import StreamEngine

        dataset = PerfmonDataset(8, 120, seed=2)
        workload = HybridWorkload(dataset, num_queries=4, sel=0.0)
        plan, name_map = workload.rumor_plan(channels=True)
        engine = StreamEngine(plan)
        stats = engine.run(workload.sources(plan, name_map, 100))
        assert stats.output_events == 0

    def test_hybrid_sel_validation(self):
        dataset = PerfmonDataset(2, 10, seed=0)
        with pytest.raises(WorkloadError):
            HybridWorkload(dataset, num_queries=2, sel=1.5)

    def test_hybrid_thresholds_distinct(self):
        dataset = PerfmonDataset(2, 10, seed=0)
        workload = HybridWorkload(dataset, num_queries=8, sel=0.5)
        assert len(set(workload.thresholds)) == 8

    def test_sources_from_events_split(self):
        params = WorkloadParameters(num_queries=3)
        workload = Workload1(params)
        plan, name_map = workload.rumor_plan()
        events = workload.events(10)
        sources = sources_from_events(plan, name_map, events)
        assert len(sources) == 2  # S and T
