"""Smoke tests: the fast example scripts run end to end.

The two long-running demos (performance_monitoring, event_patterns) are
exercised by the integration suite through the same code paths; here we run
the quick ones as actual scripts so the README instructions stay honest.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    output = run_example("quickstart.py", capsys)
    assert "naive plan" in output
    assert "after optimization" in output
    assert "q1:" in output and "q4:" in output


def test_cost_based_optimization(capsys):
    output = run_example("cost_based_optimization.py", capsys)
    assert "chose WITH channels" in output
    assert "confluent" in output


def test_shared_aggregation(capsys):
    output = run_example("shared_aggregation.py", capsys)
    assert "by_region_1m" in output
    assert "region3_avg" in output


def test_dynamic_queries(capsys):
    output = run_example("dynamic_queries.py", capsys)
    assert "registering alerts4 mid-stream" in output
    assert "incremental optimization" in output
    assert "garbage-collected m-ops" in output
    assert "state after GC: 0" in output
