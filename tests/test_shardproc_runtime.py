"""Process-mode sharded runtime: lifecycle, routing, protocol basics.

Every test forks real worker processes; the suite is wrapped in
``pytest-timeout`` on CI because multiprocessing bugs *hang* rather than
fail.  Byte-level equivalence and fault injection live in their own
modules (``test_shardproc_equivalence.py`` / ``test_shardproc_faults.py``).
"""

import pytest

from repro.errors import LifecycleError
from repro.shard import ProcessShardedRuntime, fork_available
from repro.shard.wire import (
    COMMAND_KINDS,
    REGISTER,
    decode_command,
    decode_reply,
    encode_command,
    encode_reply,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.numbered(2)
AGG = "FROM S AGG avg(a1) OVER 20 BY a0 AS m"
SEQ = "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 15"
SEL = "FROM S WHERE a0 == 2"


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


@pytest.fixture
def runtime():
    with ProcessShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
    ) as instance:
        yield instance


class TestLifecycle:
    def test_register_places_and_routes(self, runtime):
        runtime.register(SEL, query_id="a")
        runtime.register(AGG, query_id="b")
        assert sorted(runtime.active_queries) == ["a", "b"]
        assert runtime.shard_loads() == [1, 1]
        assert runtime.shard_of("a") != runtime.shard_of("b")

    def test_validation(self, runtime):
        runtime.register(SEL, query_id="a", shard=1)
        assert runtime.shard_of("a") == 1
        with pytest.raises(LifecycleError):
            runtime.register(SEL, query_id="a")
        with pytest.raises(LifecycleError):
            runtime.register(SEL, query_id="b", shard=7)
        with pytest.raises(LifecycleError):
            runtime.shard_of("missing")
        with pytest.raises(LifecycleError):
            runtime.unregister("missing")
        with pytest.raises(LifecycleError):
            runtime.process("UNKNOWN", StreamTuple(SCHEMA, (0, 0), 0))
        with pytest.raises(LifecycleError):
            runtime.register("FROM NOPE WHERE a0 == 1", query_id="c")
        with pytest.raises(LifecycleError):
            runtime.rebalance("a", 1)  # already there
        with pytest.raises(LifecycleError):
            runtime.rebalance("a", 9)

    def test_unregister_frees_shard(self, runtime):
        runtime.register(SEL, query_id="a", shard=0)
        runtime.unregister("a")
        assert runtime.active_queries == []
        assert runtime.shard_loads() == [0, 0]

    def test_sources_freeze_after_start(self, runtime):
        runtime.register(SEL, query_id="a")
        with pytest.raises(LifecycleError):
            runtime.add_source("LATE", SCHEMA)

    def test_reoptimize_routes(self, runtime):
        runtime.register(SEL, query_id="a", shard=0)
        assert len(runtime.reoptimize()) == 2
        assert len(runtime.reoptimize(shard=0)) == 1

    def test_worker_errors_do_not_kill_workers(self, runtime):
        from repro.shard.proc import WorkerCommandError
        from repro.shard.wire import REBALANCE

        runtime.register(SEL, query_id="a", shard=0)
        # A worker-side failure (exporting an unknown query) surfaces as an
        # err reply — the worker stays alive and keeps serving.
        with pytest.raises(WorkerCommandError):
            runtime._rpc(0, REBALANCE, ("out", "nonexistent"))
        feed(runtime, 0, 10)
        assert runtime.collect_stats().outputs_by_query == {"a": 2}
        assert runtime.crash_recoveries == 0


class TestAccountingAndIntrospection:
    def test_input_events_counted_once_across_replicated_streams(self, runtime):
        runtime.register("FROM S WHERE a0 == 0", query_id="a", shard=0)
        runtime.register("FROM S WHERE a0 == 0", query_id="b", shard=1)
        for ts in range(10):
            runtime.process("S", StreamTuple(SCHEMA, (0, ts), ts))
        runtime.process_batch(
            "S", [StreamTuple(SCHEMA, (0, ts), ts) for ts in range(10, 14)]
        )
        stats = runtime.collect_stats()
        assert stats.input_events == 14
        assert stats.outputs_by_query == {"a": 14, "b": 14}

    def test_snapshot_and_describe(self, runtime):
        runtime.register(AGG, query_id="agg", shard=0)
        feed(runtime, 0, 20)
        snapshot = runtime.snapshot()
        assert len(snapshot) == 2
        assert snapshot[0]["active_queries"] == ["agg"]
        assert snapshot[0]["state_size"] > 0
        assert runtime.state_size == snapshot[0]["state_size"]
        text = runtime.describe()
        assert "shard 0" in text and "shard 1" in text and "incarnation" in text

    def test_events_before_any_query_are_counted_not_shipped(self, runtime):
        feed(runtime, 0, 6)
        assert runtime.input_stats.input_events == 6
        runtime.register(SEL, query_id="a")
        feed(runtime, 6, 10)
        assert runtime.collect_stats().input_events == 10

    def test_close_is_idempotent_and_final(self):
        runtime = ProcessShardedRuntime({"S": SCHEMA}, n_shards=2)
        runtime.register(SEL, query_id="a")
        runtime.close()
        runtime.close()
        with pytest.raises(LifecycleError):
            runtime.register(SEL, query_id="b")

    def test_rejects_bad_shard_count(self):
        with pytest.raises(LifecycleError):
            ProcessShardedRuntime({"S": SCHEMA}, n_shards=0)


class TestCommandCodec:
    def test_round_trip(self):
        frame = encode_command(REGISTER, 7, {"x": 1})
        assert frame[0] == REGISTER and frame[1] == 7
        assert isinstance(frame[2], bytes)
        assert decode_command(frame) == (REGISTER, 7, {"x": 1})
        reply = encode_reply(7, "ok", [1, 2])
        assert decode_reply(reply) == (7, "ok", [1, 2])

    def test_rejects_unknown_kinds(self):
        from repro.errors import ChannelError

        with pytest.raises(ChannelError):
            encode_command("bogus", 1, None)
        with pytest.raises(ChannelError):
            decode_command(("bogus", 1, b""))
        with pytest.raises(ChannelError):
            encode_reply(1, "meh", None)
        with pytest.raises(ChannelError):
            decode_reply(("run", 1, "ok", b""))

    def test_every_issue_frame_kind_exists(self):
        assert COMMAND_KINDS == {
            "register",
            "unregister",
            "reoptimize",
            "rebalance",
            "stats",
            "snapshot",
            "checkpoint",
            "restore",
            "hello",
            "ping",
            "relay-tap",
            "collect-relay",
        }
