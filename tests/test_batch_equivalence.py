"""Batched dispatch must be byte-identical to the per-tuple interpreter.

The contract of the batched engine hot path: for every workload — zipf
selections, churn (including mid-stream migration on a batch boundary) and
the perfmon hybrid diamond — per-query outputs (content, timestamps *and*
order) and aggregate counters match the reference per-tuple dispatch
exactly.  A hypothesis property test drives random event interleavings
through a mixed plan to probe shapes the workloads do not cover.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mop import MOpExecutor
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.runtime import QueryRuntime
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource, merge_source_runs, merge_sources
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive, drive_batched
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.synthetic import synthetic_schema
from repro.workloads.templates import HybridWorkload
from repro.workloads.zipf import ZipfSampler
from strategies import (
    event_entries,
    max_batches,
    mixed_plan,
    split_entries,
    two_component_plan,
)


def run_both_ways(plan_factory, sources_factory, max_batch=64):
    """(per-tuple, batched) → (stats, captured) on fresh plans/engines."""
    results = []
    for batching in (False, True):
        plan, handles = plan_factory()
        engine = StreamEngine(
            plan, capture_outputs=True, batching=batching, max_batch=max_batch
        )
        stats = engine.run(sources_factory(plan, handles))
        results.append((stats, engine.captured))
    return results


def assert_equivalent(per_tuple, batched):
    """Outputs byte-identical: per-query counts, content, ts and order."""
    assert per_tuple[0].outputs_by_query == batched[0].outputs_by_query
    assert per_tuple[0].input_events == batched[0].input_events
    assert per_tuple[0].output_events == batched[0].output_events
    assert per_tuple[0].physical_events == batched[0].physical_events
    assert per_tuple[1] == batched[1]


# -- run coalescing -----------------------------------------------------------------


class TestMergeSourceRuns:
    def test_flattened_runs_equal_merge_sources(self):
        schema = Schema.of_ints("a")
        plan = QueryPlan()
        a = plan.add_source("A", schema)
        b = plan.add_source("B", schema)
        tuples_a = [StreamTuple(schema, (i,), ts) for i, ts in enumerate([0, 2, 3, 7])]
        tuples_b = [StreamTuple(schema, (i,), ts) for i, ts in enumerate([1, 2, 4, 5, 6])]
        sources = lambda: [
            StreamSource(plan.channel_of(a), tuples_a),
            StreamSource(plan.channel_of(b), tuples_b),
        ]
        flat = [
            (channel.channel_id, ct) for channel, ct in merge_sources(sources())
        ]
        for max_run in (1, 2, 3, 1024):
            runs = list(merge_source_runs(sources(), max_run))
            assert all(len(run) <= max_run for __, run in runs)
            flattened = [
                (channel.channel_id, ct) for channel, run in runs for ct in run
            ]
            assert flattened == flat

    def test_single_source_run_cap(self):
        schema = Schema.of_ints("a")
        plan = QueryPlan()
        a = plan.add_source("A", schema)
        tuples = [StreamTuple(schema, (i,), i) for i in range(10)]
        runs = list(
            merge_source_runs([StreamSource(plan.channel_of(a), tuples)], 4)
        )
        assert [len(run) for __, run in runs] == [4, 4, 2]
        flattened = [ct for __, run in runs for ct in run]
        assert [ct.ts for ct in flattened] == list(range(10))

    @given(
        ts_a=st.lists(st.integers(0, 30), max_size=15).map(sorted),
        ts_b=st.lists(st.integers(0, 30), max_size=15).map(sorted),
        max_run=st.integers(1, 8),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_runs_preserve_global_order(self, ts_a, ts_b, max_run):
        schema = Schema.of_ints("a")
        plan = QueryPlan()
        a = plan.add_source("A", schema)
        b = plan.add_source("B", schema)
        tuples_a = [StreamTuple(schema, (0,), ts) for ts in ts_a]
        tuples_b = [StreamTuple(schema, (1,), ts) for ts in ts_b]
        sources = lambda: [
            StreamSource(plan.channel_of(a), tuples_a),
            StreamSource(plan.channel_of(b), tuples_b),
        ]
        flat = [
            (channel.channel_id, ct) for channel, ct in merge_sources(sources())
        ]
        flattened = [
            (channel.channel_id, ct)
            for channel, run in merge_source_runs(sources(), max_run)
            for ct in run
        ]
        assert flattened == flat


# -- default batch fallback ---------------------------------------------------------


class TestDefaultProcessBatch:
    def test_groups_outputs_per_channel_in_order(self):
        schema = Schema.of_ints("a")
        plan = QueryPlan()
        s = plan.add_source("S", schema)
        out = plan.add_operator(
            Selection(Comparison(attr("a"), ">", lit(0))), [s], query_id="q"
        )
        plan.mark_output(out, "q")
        mop = plan.mops[0]
        executor = mop.make_executor(plan)
        channel = plan.channel_of(s)
        batch = [
            channel.encode_all(StreamTuple(schema, (v,), ts))
            for ts, v in enumerate([1, 0, 2])
        ]
        grouped = MOpExecutor.process_batch(executor, channel, batch)
        assert len(grouped) == 1
        out_channel, tuples = grouped[0]
        assert out_channel.channel_id == plan.channel_of(out).channel_id
        assert [ct.tuple["a"] for ct in tuples] == [1, 2]


# -- zipf selection workload --------------------------------------------------------


def zipf_plan(optimize, num_queries=60, seed=5):
    schema = synthetic_schema()
    rng = np.random.default_rng(seed)
    constants = ZipfSampler(0, 99, 1.5, rng).sample(num_queries)
    plan = QueryPlan()
    s = plan.add_source("S", schema)
    for i, c in enumerate(constants):
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(int(c)))),
            [s],
            query_id=f"q{i}",
        )
        plan.mark_output(out, f"q{i}")
    if optimize:
        Optimizer().optimize(plan)
    return plan, s


class TestZipfEquivalence:
    @pytest.mark.parametrize("optimize", [False, True])
    def test_outputs_identical(self, optimize):
        schema = synthetic_schema()
        rng = np.random.default_rng(6)
        values = rng.integers(0, 100, size=(600, len(schema)))
        tuples = [
            StreamTuple(schema, tuple(int(v) for v in values[i]), i)
            for i in range(600)
        ]
        per_tuple, batched = run_both_ways(
            lambda: zipf_plan(optimize),
            lambda plan, s: [StreamSource(plan.channel_of(s), tuples)],
        )
        assert per_tuple[0].output_events > 0
        assert_equivalent(per_tuple, batched)

    def test_optimized_zipf_channel_is_batchable(self):
        plan, s = zipf_plan(True)
        engine = StreamEngine(plan)
        assert engine.channel_batchable(plan.channel_of(s).channel_id)


# -- perfmon hybrid (diamond) -------------------------------------------------------


class TestHybridEquivalence:
    def _workload(self):
        dataset = PerfmonDataset(processes=8, duration_seconds=60, seed=3)
        return HybridWorkload(dataset, num_queries=3)

    @pytest.mark.parametrize("optimize", [False, True])
    def test_outputs_identical(self, optimize):
        workload = self._workload()
        per_tuple, batched = run_both_ways(
            lambda: workload.rumor_plan(channels=True, optimize=optimize),
            lambda plan, name_map: workload.sources(plan, name_map, 60),
        )
        assert per_tuple[0].output_events > 0
        assert_equivalent(per_tuple, batched)

    def test_multi_channel_sink_query_refuses_batching(self):
        # One query with sinks on two channels reachable from the entry:
        # per-tuple dispatch interleaves its captured outputs across the two
        # channels per event, which batch grouping would reorder — so the
        # entry channel must fall back to per-tuple dispatch.
        schema = Schema.of_ints("a0", "a1")

        def plan_factory():
            plan = QueryPlan()
            s = plan.add_source("S", schema)
            low = plan.add_operator(
                Selection(Comparison(attr("a0"), "<", lit(2))), [s], query_id="q"
            )
            high = plan.add_operator(
                Selection(Comparison(attr("a0"), ">", lit(0))), [s], query_id="q"
            )
            plan.mark_output(low, "q")
            plan.mark_output(high, "q")
            return plan, s

        plan, s = plan_factory()
        engine = StreamEngine(plan)
        assert not engine.channel_batchable(plan.channel_of(s).channel_id)
        tuples = [StreamTuple(schema, (ts % 3, ts), ts) for ts in range(40)]
        per_tuple, batched = run_both_ways(
            plan_factory,
            lambda plan, s: [StreamSource(plan.channel_of(s), tuples)],
        )
        assert per_tuple[0].output_events > 0
        assert_equivalent(per_tuple, batched)

    def test_diamond_channel_refuses_batching(self):
        # The µ-op reads both α(CPU) and σ(α(CPU)): two channels reachable
        # from CPU, so a CPU run must not be batch-dispatched.
        workload = self._workload()
        plan, name_map = workload.rumor_plan(channels=True)
        engine = StreamEngine(plan)
        cpu_channel = plan.channel_of(name_map["CPU"])
        assert not engine.channel_batchable(cpu_channel.channel_id)


# -- churn: migration on batch boundaries -------------------------------------------

class TestChurnEquivalence:
    def _serve(self, batched):
        workload = ChurnWorkload(
            arrival_rate=0.03,
            mean_lifetime=300.0,
            horizon=600,
            initial_queries=4,
            seed=11,
        )
        runtime = QueryRuntime(
            {"S": workload.schema, "T": workload.schema},
            capture_outputs=True,
        )
        driver = drive_batched if batched else drive
        applied = sum(
            1
            for __ in driver(
                runtime, workload.stream_events(), workload.schedule()
            )
        )
        return runtime, applied

    def test_batched_serve_identical_across_migrations(self):
        per_event, applied_per_event = self._serve(batched=False)
        batched, applied_batched = self._serve(batched=True)
        assert applied_per_event == applied_batched
        assert per_event.stats.migrations == batched.stats.migrations
        assert per_event.stats.migrations > 2, "must exercise live rewrites"
        assert per_event.stats.output_events > 0
        assert (
            per_event.stats.outputs_by_query == batched.stats.outputs_by_query
        )
        assert per_event.stats.input_events == batched.stats.input_events
        assert per_event.captured == batched.captured
        assert per_event.state_size == batched.state_size

    def test_explicit_batch_boundary_migration(self):
        """register → batch → register (migration) → batch → unregister."""
        schema = Schema.numbered(2)

        def serve(use_batches):
            runtime = QueryRuntime({"S": schema}, capture_outputs=True)
            runtime.register("FROM S WHERE a0 == 1", query_id="alpha")
            first = [StreamTuple(schema, (ts % 3, ts), ts) for ts in range(30)]
            second = [
                StreamTuple(schema, (ts % 3, ts), ts) for ts in range(30, 60)
            ]
            third = [
                StreamTuple(schema, (ts % 3, ts), ts) for ts in range(60, 90)
            ]
            if use_batches:
                runtime.process_batch("S", first)
            else:
                for tuple_ in first:
                    runtime.process("S", tuple_)
            runtime.register("FROM S WHERE a0 == 2", query_id="beta")
            if use_batches:
                runtime.process_batch("S", second)
            else:
                for tuple_ in second:
                    runtime.process("S", tuple_)
            runtime.unregister("alpha")
            if use_batches:
                runtime.process_batch("S", third)
            else:
                for tuple_ in third:
                    runtime.process("S", tuple_)
            return runtime

        per_event = serve(False)
        batched = serve(True)
        assert per_event.stats.outputs_by_query == batched.stats.outputs_by_query
        assert per_event.captured == batched.captured
        assert batched.stats.outputs_by_query["beta"] > 0


# -- property: random interleavings over a mixed plan -------------------------------
# (plan builders + entry strategies live in tests/strategies.py, shared with
# the sharded-engine and process-mode equivalence suites)


class TestRandomInterleavings:
    @given(events=event_entries(n_streams=2), max_batch=max_batches)
    @settings(max_examples=40, deadline=None)
    def test_batched_equals_per_tuple(self, events, max_batch):
        s_tuples, t_tuples = split_entries(events, n_streams=2)
        per_tuple, batched = run_both_ways(
            mixed_plan,
            lambda plan, handles: [
                StreamSource(plan.channel_of(handles[0]), s_tuples),
                StreamSource(plan.channel_of(handles[1]), t_tuples),
            ],
            max_batch=max_batch,
        )
        assert_equivalent(per_tuple, batched)


# -- sharded axis: the equivalence contract extends across shards -------------------


class TestShardedRandomInterleavings:
    """Property: sharded execution == per-tuple single engine, any
    interleaving, any batch size, any shard count, either feed."""

    @given(
        events=event_entries(n_streams=3),
        max_batch=max_batches,
        n_shards=st.integers(1, 3),
        feed=st.sampled_from(["local", "router"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_sharded_equals_per_tuple(self, events, max_batch, n_shards, feed):
        from repro.shard import ShardedEngine

        by_stream = split_entries(events, n_streams=3)

        def sources_of(plan, handles):
            return [
                StreamSource(plan.channel_of(handle), by_stream[index])
                for index, handle in enumerate(handles)
            ]

        plan, handles = two_component_plan()
        reference = StreamEngine(plan, capture_outputs=True, batching=False)
        per_tuple = reference.run(sources_of(plan, handles))

        plan, handles = two_component_plan()
        sharded = ShardedEngine(
            plan,
            n_shards,
            parallel=False,
            feed=feed,
            capture_outputs=True,
            max_batch=max_batch,
        )
        run = sharded.run(sources_of(plan, handles))
        aggregate = run.aggregate
        assert aggregate.outputs_by_query == per_tuple.outputs_by_query
        assert aggregate.input_events == per_tuple.input_events
        assert aggregate.output_events == per_tuple.output_events
        assert sharded.captured == reference.captured


# -- state partitioning -------------------------------------------------------------


class TestStatePartition:
    def test_state_size_matches_full_sum(self):
        plan, (s, t) = mixed_plan()
        engine = StreamEngine(plan)
        schema = Schema.of_ints("a0", "a1")
        channel = plan.channel_of(s)
        for ts in range(5):
            engine.process(
                channel, channel.encode_all(StreamTuple(schema, (1, ts), ts))
            )
        full = sum(
            executor.state_size for __, executor in engine.executor_entries().values()
        )
        assert engine.state_size == full
        assert engine.state_size > 0

    def test_stateless_executors_partitioned_out(self):
        plan, s = zipf_plan(True, num_queries=10)
        engine = StreamEngine(plan)
        # A pure selection plan holds no state at all.
        assert engine.state_size == 0
        assert engine._stateful_executors == []
