"""Process-mode telemetry acceptance: the issue's three criteria, end to end.

One observed churn serve through :class:`ProcessShardedRuntime` — with at
least one cross-process rebalance and at least one completed checkpoint
round — must produce:

(a) a merged metrics snapshot whose per-m-op tuple counts sum exactly to
    the per-shard ``RunStats`` physical counters;
(b) a JSONL-exportable span set forming one tree per trace, with
    coordinator→worker parent edges across the process boundary for the
    rebalance, the checkpoint round, and data shipping;
(c) captured outputs byte-identical to an unobserved serve of the same
    workload — observation must not perturb results.

The serves are expensive (two full process-mode churn runs), so one
module-scoped fixture drives both and every test asserts against the
shared result.
"""

import json

import pytest

from repro.obs import merge_snapshots, span_tree, to_prometheus
from repro.shard import ProcessShardedRuntime, fork_available
from repro.workloads.churn import ChurnWorkload
from strategies import serve_churn_with_rebalance

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)


def _serve(observe: bool) -> dict:
    workload = ChurnWorkload(arrival_rate=0.02, horizon=600, seed=7)
    runtime = ProcessShardedRuntime(
        {"S": workload.schema, "T": workload.schema},
        n_shards=2,
        capture_outputs=True,
        checkpoint_every=3,
        observe=observe,
    )
    try:
        applied, moved = serve_churn_with_rebalance(
            runtime, workload, rebalance_after=2
        )
        runtime.checkpoint()
        result = {
            "applied": applied,
            "moved": moved,
            "captured": runtime.captured,
            "stats": runtime.collect_stats(),
            "rebalances": runtime.rebalances,
            "checkpoints": runtime.checkpoints_stored,
            "events": list(runtime.events.events),
        }
        if observe:
            result["telemetry"] = runtime.shard_telemetry()
            result["snapshot"] = runtime.metrics_registry().snapshot()
            result["span_jsonl"] = runtime.recorder.to_jsonl()
            result["spans"] = list(runtime.recorder.spans)
        return result
    finally:
        runtime.close()


@pytest.fixture(scope="module")
def serves():
    observed = _serve(observe=True)
    plain = _serve(observe=False)
    # The acceptance serve must actually exercise the traced lifecycle.
    assert observed["rebalances"] >= 1
    assert observed["checkpoints"] >= 2
    return observed, plain


class TestOutputsUnperturbed:
    def test_captured_outputs_byte_identical(self, serves):
        observed, plain = serves
        assert observed["moved"] == plain["moved"]
        assert observed["captured"] == plain["captured"]
        assert sum(len(v) for v in observed["captured"].values()) > 0

    def test_aggregate_counters_identical(self, serves):
        observed, plain = serves
        assert (
            observed["stats"].outputs_by_query
            == plain["stats"].outputs_by_query
        )
        assert observed["stats"].input_events == plain["stats"].input_events
        assert observed["stats"].output_events == plain["stats"].output_events


class TestMetricsReconcile:
    def test_per_shard_mop_counts_sum_to_physical_counters(self, serves):
        observed, __ = serves
        for view in observed["telemetry"]:
            stats = view["stats"]
            mops_out = sum(
                record["tuples_out"] for record in view["mop_stats"].values()
            )
            assert (
                stats.physical_events
                == stats.physical_input_events + mops_out
            ), f"shard {view['shard']} accounting does not reconcile"

    def test_merged_snapshot_reconciles_and_exports(self, serves):
        observed, __ = serves
        snapshot = observed["snapshot"]
        json.dumps(snapshot)  # plain data, export-safe
        mop_out = sum(
            sample["value"]
            for sample in snapshot["samples"]
            if sample["name"] == "rumor_mop_tuples_out_total"
        )
        physical = sum(
            view["stats"].physical_events for view in observed["telemetry"]
        )
        physical_in = sum(
            view["stats"].physical_input_events
            for view in observed["telemetry"]
        )
        assert mop_out == physical - physical_in
        text = to_prometheus(snapshot)
        assert "rumor_mop_tuples_out_total" in text
        assert "rumor_rebalances_total" in text
        assert "rumor_checkpoints_stored_total" in text

    def test_snapshot_merge_is_idempotent_on_labels(self, serves):
        observed, __ = serves
        # Merging a snapshot with itself doubles counters but not gauges —
        # the documented cross-shard merge semantics.
        snapshot = observed["snapshot"]
        doubled = merge_snapshots([snapshot, snapshot])
        for before, after in zip(snapshot["samples"], doubled["samples"]):
            assert before["name"] == after["name"]
            if before["kind"] == "counter":
                assert after["value"] == 2 * before["value"]
            elif before["kind"] == "gauge":
                assert after["value"] == before["value"]


class TestSpanTree:
    def test_export_is_jsonl_with_one_trace(self, serves):
        observed, __ = serves
        lines = observed["span_jsonl"].strip().splitlines()
        spans = [json.loads(line) for line in lines]
        assert len(spans) == len(observed["spans"])
        assert len({span["trace_id"] for span in spans}) == 1

    def test_rebalance_spans_cross_the_process_boundary(self, serves):
        observed, __ = serves
        spans = observed["spans"]
        tree = span_tree(spans)
        rebalances = [s for s in spans if s["name"] == "rebalance"]
        assert rebalances, "serve performed no traced rebalance"
        rpc_ids = set()
        for rebalance in rebalances:
            children = tree.get(rebalance["span_id"], [])
            rpc_ids |= {
                child["span_id"]
                for child in children
                if child["name"] == "rpc:rebalance"
            }
        assert rpc_ids, "rebalance span has no rpc child"
        worker_applies = [
            s for s in spans if s["name"].startswith("apply:rebalance")
        ]
        assert worker_applies, "no worker-side rebalance apply spans"
        assert any(
            apply["parent_id"] in rpc_ids for apply in worker_applies
        ), "worker apply spans are not parented to the coordinator rpc"
        # Worker spans carry worker-minted ids (provenance in the prefix).
        assert all(
            apply["span_id"].startswith("w") for apply in worker_applies
        )

    def test_checkpoint_round_parents_worker_snapshots(self, serves):
        observed, __ = serves
        spans = observed["spans"]
        rounds = {
            s["span_id"] for s in spans if s["name"] == "checkpoint:round"
        }
        assert rounds, "serve recorded no checkpoint rounds"
        worker_checkpoints = [
            s for s in spans if s["name"] == "apply:checkpoint"
        ]
        assert worker_checkpoints, "no worker-side checkpoint spans"
        assert any(
            span["parent_id"] in rounds for span in worker_checkpoints
        )

    def test_data_shipping_parents_worker_applies(self, serves):
        observed, __ = serves
        spans = observed["spans"]
        ship_ids = {s["span_id"] for s in spans if s["name"] == "ship:run"}
        data_applies = [s for s in spans if s["name"] == "data:apply"]
        assert data_applies
        assert all(
            apply["parent_id"] in ship_ids for apply in data_applies
        )
        assert all(apply["attrs"]["count"] >= 1 for apply in data_applies)


class TestEventLog:
    def test_lifecycle_events_are_captured(self, serves):
        observed, __ = serves
        kinds = {event["kind"] for event in observed["events"]}
        assert {"register", "rebalance", "checkpoint_stored"} <= kinds

    def test_events_flow_even_unobserved(self, serves):
        # The event log is part of the coordinator proper, not gated on
        # observe= — operators always get the lifecycle stream.
        __, plain = serves
        kinds = {event["kind"] for event in plain["events"]}
        assert "rebalance" in kinds and "checkpoint_stored" in kinds
