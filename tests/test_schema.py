"""Unit tests for repro.streams.schema."""

import pytest

from repro.errors import SchemaError
from repro.streams.schema import Attribute, Schema, TIMESTAMP_ATTRIBUTE


class TestAttribute:
    def test_valid_attribute(self):
        attribute = Attribute("a0", "int")
        assert attribute.name == "a0"
        assert attribute.type == "int"

    def test_default_type_is_int(self):
        assert Attribute("x").type == "int"

    def test_invalid_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("0bad")

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_invalid_type_rejected(self):
        with pytest.raises(SchemaError):
            Attribute("a", "decimal")

    def test_renamed_keeps_type(self):
        assert Attribute("a", "float").renamed("b") == Attribute("b", "float")


class TestSchemaConstruction:
    def test_from_attribute_objects(self):
        schema = Schema([Attribute("a"), Attribute("b", "float")])
        assert schema.names == ("a", "b")
        assert schema.type_of("b") == "float"

    def test_from_tuples_and_strings(self):
        schema = Schema([("a", "int"), "b"])
        assert schema.names == ("a", "b")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            Schema(["a", "a"])

    def test_timestamp_attribute_reserved(self):
        with pytest.raises(SchemaError, match="implicit"):
            Schema([TIMESTAMP_ATTRIBUTE])

    def test_numbered_builds_paper_schema(self):
        schema = Schema.numbered(10)
        assert len(schema) == 10
        assert schema.names[0] == "a0"
        assert schema.names[-1] == "a9"

    def test_numbered_negative_rejected(self):
        with pytest.raises(SchemaError):
            Schema.numbered(-1)

    def test_of_ints(self):
        schema = Schema.of_ints("x", "y")
        assert all(a.type == "int" for a in schema)


class TestSchemaLookup:
    def test_index_of(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.index_of("b") == 1

    def test_unknown_attribute_raises(self):
        schema = Schema.of_ints("a")
        with pytest.raises(SchemaError, match="unknown attribute"):
            schema.index_of("z")

    def test_contains(self):
        schema = Schema.of_ints("a")
        assert "a" in schema
        assert "z" not in schema

    def test_equality_and_hash(self):
        assert Schema.of_ints("a", "b") == Schema.of_ints("a", "b")
        assert hash(Schema.of_ints("a")) == hash(Schema.of_ints("a"))
        assert Schema.of_ints("a") != Schema.of_ints("b")


class TestSchemaDerivation:
    def test_project_reorders(self):
        schema = Schema.of_ints("a", "b", "c")
        assert schema.project(["c", "a"]).names == ("c", "a")

    def test_rename(self):
        schema = Schema.of_ints("a", "b")
        renamed = schema.rename({"a": "x"})
        assert renamed.names == ("x", "b")

    def test_prefixed(self):
        schema = Schema.of_ints("a", "b")
        assert schema.prefixed("s_").names == ("s_a", "s_b")

    def test_concat_disjoint(self):
        left = Schema.of_ints("a")
        right = Schema.of_ints("b")
        assert left.concat(right).names == ("a", "b")

    def test_concat_collision_rejected(self):
        schema = Schema.of_ints("a")
        with pytest.raises(SchemaError, match="shared attributes"):
            schema.concat(schema)

    def test_union_compatible_strict(self):
        assert Schema.of_ints("a").union_compatible(Schema.of_ints("a"))
        assert not Schema.of_ints("a").union_compatible(Schema.of_ints("b"))

    def test_padded_union_merges(self):
        left = Schema.of_ints("a", "b")
        right = Schema.of_ints("b", "c")
        merged = left.padded_union(right)
        assert merged.names == ("a", "b", "c")

    def test_padded_union_type_conflict(self):
        left = Schema([("a", "int")])
        right = Schema([("a", "float")])
        with pytest.raises(SchemaError, match="conflicting types"):
            left.padded_union(right)
