"""Engine- and runtime-level telemetry: observation must not change results.

The contract of ``observe=``: the observed dispatch variants are shadow
tables over the same prebound executors, so per-query outputs (content,
timestamps *and* order) and aggregate counters are byte-identical with
observation on or off — in batched dispatch, the per-tuple interpreter,
and across churn with mid-stream migrations.  On top of that, the
attribution must *reconcile*: every physically dispatched tuple is either
a source entry or the output of exactly one m-op record,

    ``RunStats.physical_events ==
    physical_input_events + Σ record.tuples_out``

including records retired by plan rewrites.
"""

import pytest

from repro.obs import to_prometheus
from repro.runtime import QueryRuntime
from repro.shard import ShardedRuntime
from repro.workloads.churn import ChurnWorkload, drive, drive_batched


def churn_workload(seed=11):
    return ChurnWorkload(arrival_rate=0.03, horizon=400, seed=seed)


def serve(observe, batched=True, seed=11):
    workload = churn_workload(seed)
    runtime = QueryRuntime(
        {"S": workload.schema, "T": workload.schema},
        capture_outputs=True,
        observe=observe,
    )
    driver = drive_batched if batched else drive
    applied = sum(
        1 for __ in driver(
            runtime, workload.stream_events(), workload.schedule()
        )
    )
    assert applied > 0
    return runtime


def assert_accounting_reconciles(runtime):
    stats = runtime.stats
    mops_out = sum(
        record["tuples_out"] for record in runtime.mop_stats().values()
    )
    assert stats.physical_events == stats.physical_input_events + mops_out


class TestObservedEquivalence:
    @pytest.mark.parametrize("batched", [True, False], ids=["batched", "per-tuple"])
    def test_outputs_identical_with_and_without_observation(self, batched):
        plain = serve(observe=False, batched=batched)
        observed = serve(observe=True, batched=batched)
        assert observed.captured == plain.captured
        assert observed.stats.outputs_by_query == plain.stats.outputs_by_query
        assert observed.stats.input_events == plain.stats.input_events
        assert observed.stats.physical_events == plain.stats.physical_events

    def test_unobserved_engine_reports_no_mop_stats(self):
        runtime = serve(observe=False)
        assert runtime.mop_stats() == {}
        assert runtime.query_heat() == {}


class TestAttributionReconciles:
    @pytest.mark.parametrize("batched", [True, False], ids=["batched", "per-tuple"])
    def test_physical_counters_reconcile_across_churn(self, batched):
        runtime = serve(observe=True, batched=batched)
        assert_accounting_reconciles(runtime)

    def test_retired_records_keep_the_identity(self):
        runtime = serve(observe=True)
        records = runtime.mop_stats()
        # Churn unregisters queries, so some m-ops must have retired —
        # the identity above only holds because their counters survive.
        assert any(record["retired"] for record in records.values())
        assert_accounting_reconciles(runtime)

    def test_counters_attribute_to_live_kinds(self):
        runtime = serve(observe=True)
        records = runtime.mop_stats().values()
        assert all(record["kind"] != "?" for record in records)
        touched = [record for record in records if record["tuples_in"]]
        assert touched, "a churn serve must exercise some executor"
        assert all(
            record["batches"] or record["per_tuple_calls"]
            for record in touched
        )


class TestRuntimeTelemetryViews:
    def test_query_heat_covers_queries_that_saw_work(self):
        runtime = serve(observe=True)
        heat = runtime.query_heat()
        # Heat keys are query ids the observer attributed time to; busy
        # time is sampled so the exact set varies, but no key may be
        # invented from outside the serve's query population.
        all_queries = {
            query_id
            for record in runtime.mop_stats().values()
            for query_id in record["query_ids"]
        }
        assert set(heat) <= all_queries
        assert all(seconds >= 0.0 for seconds in heat.values())

    def test_peak_state_gauge_samples_a_positive_peak(self):
        runtime = serve(observe=True)
        assert runtime.observer.peak_state > 0

    def test_metrics_registry_reconciles_with_run_stats(self):
        runtime = serve(observe=True)
        snapshot = runtime.metrics_registry().snapshot()
        by_name = {}
        for sample in snapshot["samples"]:
            by_name.setdefault(sample["name"], []).append(sample)
        mop_out = sum(
            sample["value"]
            for sample in by_name["rumor_mop_tuples_out_total"]
        )
        [physical] = by_name["rumor_physical_events_total"]
        [physical_in] = by_name["rumor_physical_input_events_total"]
        assert mop_out == physical["value"] - physical_in["value"]
        text = to_prometheus(snapshot)
        assert "rumor_engine_peak_state" in text
        assert "rumor_query_outputs_total" in text

    def test_unobserved_metrics_registry_still_exports_run_stats(self):
        runtime = serve(observe=False)
        names = {
            sample["name"]
            for sample in runtime.metrics_registry().snapshot()["samples"]
        }
        assert "rumor_input_events_total" in names
        assert not any(name.startswith("rumor_mop_") for name in names)


class TestShardedTelemetry:
    def _serve_sharded(self, observe):
        workload = churn_workload(seed=5)
        runtime = ShardedRuntime(
            {"S": workload.schema, "T": workload.schema},
            n_shards=2,
            capture_outputs=True,
            observe=observe,
        )
        from repro.workloads.churn import drive_sharded

        applied = sum(
            1 for __ in drive_sharded(
                runtime, workload.stream_events(), workload.schedule()
            )
        )
        assert applied > 0
        return runtime

    def test_shard_telemetry_views_reconcile_per_shard(self):
        runtime = self._serve_sharded(observe=True)
        views = runtime.shard_telemetry()
        assert [view["shard"] for view in views] == [0, 1]
        for view in views:
            stats = view["stats"]
            mops_out = sum(
                record["tuples_out"] for record in view["mop_stats"].values()
            )
            assert (
                stats.physical_events
                == stats.physical_input_events + mops_out
            )
            assert view["state_size"] >= 0
            assert view["peak_state"] >= 0

    def test_merged_registry_sums_mop_counters_across_shards(self):
        runtime = self._serve_sharded(observe=True)
        views = runtime.shard_telemetry()
        snapshot = runtime.metrics_registry().snapshot()
        mop_out = sum(
            sample["value"]
            for sample in snapshot["samples"]
            if sample["name"] == "rumor_mop_tuples_out_total"
        )
        expected = sum(
            record["tuples_out"]
            for view in views
            for record in view["mop_stats"].values()
        )
        assert mop_out == expected
        shards = {
            sample["labels"]["shard"]
            for sample in snapshot["samples"]
            if sample["name"] == "rumor_physical_events_total"
        }
        assert shards == {"0", "1"}
