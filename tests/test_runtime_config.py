"""RuntimeConfig + open_runtime: selection, validation, deprecation.

The unified factory replaced three divergent constructor surfaces; these
tests pin the selection rules (shards/process → which runtime), the
actionable one-line validation errors, and the deprecation contract:
direct constructor calls warn, factory-built and internally-built
runtimes do not.
"""

import warnings

import pytest

from repro import RuntimeConfig, open_runtime
from repro.errors import LifecycleError
from repro.runtime.config import internal_construction
from repro.runtime.runtime import QueryRuntime
from repro.shard import fork_available
from repro.shard.runtime import ShardedRuntime
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.numbered(2)
SOURCES = {"S": SCHEMA}


class TestSelection:
    def test_default_is_single_engine(self):
        runtime = open_runtime(RuntimeConfig(sources=SOURCES))
        assert type(runtime) is QueryRuntime

    def test_shards_select_in_process_sharded(self):
        runtime = open_runtime(RuntimeConfig(sources=SOURCES, shards=3))
        assert type(runtime) is ShardedRuntime
        assert runtime.n_shards == 3

    def test_shards_one_is_single_engine(self):
        runtime = open_runtime(RuntimeConfig(sources=SOURCES, shards=1))
        assert type(runtime) is QueryRuntime

    def test_overrides_apply_on_top_of_config(self):
        config = RuntimeConfig(sources=SOURCES)
        runtime = open_runtime(config, shards=2, capture_outputs=True)
        assert type(runtime) is ShardedRuntime
        # The original config is not mutated.
        assert config.shards is None
        assert config.capture_outputs is False

    def test_kwargs_only_call_site(self):
        runtime = open_runtime(sources=SOURCES, capture_outputs=True)
        runtime.register("FROM S WHERE a0 == 1", query_id="q")
        runtime.process_batch("S", [StreamTuple(SCHEMA, (1, 7), 1)])
        assert len(runtime.captured["q"]) == 1

    def test_resolved_shards_defaulting(self):
        assert RuntimeConfig().resolved_shards == 1
        assert RuntimeConfig(process=True).resolved_shards == 2
        assert RuntimeConfig(process=True, shards=5).resolved_shards == 5


class TestValidation:
    def test_zero_shards(self):
        with pytest.raises(LifecycleError, match="shards must be at least 1"):
            RuntimeConfig(sources=SOURCES, shards=0).validate()

    def test_durable_requires_process(self):
        with pytest.raises(LifecycleError, match="--process"):
            RuntimeConfig(sources=SOURCES, durable=True).validate()

    def test_checkpoint_requires_process(self):
        with pytest.raises(LifecycleError, match="require process mode"):
            RuntimeConfig(sources=SOURCES, checkpoint_every=4).validate()

    def test_journal_requires_process(self):
        with pytest.raises(LifecycleError, match="only the process-mode"):
            RuntimeConfig(sources=SOURCES, journal="/tmp/x").validate()

    def test_resume_requires_journal(self):
        with pytest.raises(
            LifecycleError, match="--coordinator-journal DIR"
        ):
            RuntimeConfig(sources=SOURCES, process=True, resume=True).validate()

    def test_factory_validates(self):
        with pytest.raises(LifecycleError, match="shards must be at least 1"):
            open_runtime(sources=SOURCES, shards=0)

    def test_negative_checkpoint_every(self):
        with pytest.raises(LifecycleError, match="non-negative"):
            RuntimeConfig(
                sources=SOURCES, process=True, checkpoint_every=-1
            ).validate()

    def test_max_batch_floor(self):
        with pytest.raises(LifecycleError, match="max_batch"):
            RuntimeConfig(sources=SOURCES, max_batch=0).validate()


class TestDeprecation:
    def test_direct_query_runtime_warns(self):
        with pytest.warns(DeprecationWarning, match="direct construction"):
            QueryRuntime(SOURCES)

    def test_direct_sharded_runtime_warns(self):
        with pytest.warns(DeprecationWarning, match="open_runtime"):
            ShardedRuntime(SOURCES, n_shards=2)

    def test_factory_does_not_warn(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            open_runtime(sources=SOURCES, shards=2)
        assert not [
            w for w in seen if issubclass(w.category, DeprecationWarning)
        ]

    def test_internal_construction_suppresses(self):
        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            with internal_construction():
                QueryRuntime(SOURCES)
        assert not seen

    def test_deprecated_constructor_still_works(self):
        """The old surface keeps functioning — warning only, no break."""
        with pytest.warns(DeprecationWarning):
            runtime = QueryRuntime(SOURCES, capture_outputs=True)
        runtime.register("FROM S WHERE a0 == 1", query_id="q")
        runtime.process_batch("S", [StreamTuple(SCHEMA, (1, 2), 1)])
        assert len(runtime.captured["q"]) == 1


@pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)
class TestProcessSelection:
    def test_process_true_opens_worker_fleet(self):
        from repro.shard.proc import ProcessShardedRuntime

        with warnings.catch_warnings(record=True) as seen:
            warnings.simplefilter("always")
            runtime = open_runtime(
                sources=SOURCES, process=True, capture_outputs=True
            )
        try:
            assert type(runtime) is ProcessShardedRuntime
            assert runtime.n_shards == 2
            assert not [
                w for w in seen if issubclass(w.category, DeprecationWarning)
            ]
            runtime.register("FROM S WHERE a0 == 1", query_id="q")
            runtime.process_batch(
                "S", [StreamTuple(SCHEMA, (1, 9), 1)]
            )
            runtime.shard_stats()
            assert len(runtime.captured["q"]) == 1
        finally:
            runtime.close()

    def test_equivalent_outputs_across_selected_runtimes(self):
        """Same inputs through all three selections → same outputs."""
        captured = {}
        for label, kwargs in (
            ("single", {}),
            ("sharded", {"shards": 2}),
            ("process", {"process": True}),
        ):
            runtime = open_runtime(
                sources={"S": SCHEMA}, capture_outputs=True, **kwargs
            )
            try:
                runtime.register("FROM S WHERE a0 == 1", query_id="q")
                runtime.register(
                    "FROM S AGG avg(a1) OVER 10 BY a0 AS m", query_id="g"
                )
                for ts in range(40):
                    runtime.process(
                        "S", StreamTuple(SCHEMA, (ts % 3, ts), ts)
                    )
                if hasattr(runtime, "shard_stats"):
                    runtime.shard_stats()
                captured[label] = {
                    qid: [(t.ts, tuple(t.values)) for t in tuples]
                    for qid, tuples in runtime.captured.items()
                }
            finally:
                if hasattr(runtime, "close"):
                    runtime.close()
        assert captured["single"] == captured["sharded"]
        assert captured["single"] == captured["process"]
