"""Unit tests for automaton → RUMOR plan translation (§4.2)."""

import pytest

from repro.automata.automaton import (
    State,
    identity_schema_map,
    iterate_automaton,
    sequence_automaton,
    Automaton,
)
from repro.automata.translate import translate_automaton
from repro.core.plan import QueryPlan
from repro.errors import AutomatonError
from repro.operators.expressions import AttrRef, LEFT, RIGHT, last, left, lit, right
from repro.operators.iterate import Iterate
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    FalsePredicate,
    TruePredicate,
    conjunction,
)
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.streams.schema import Schema

SCHEMA = Schema.of_ints("a", "b")


def simple_sequence(consume=True):
    return sequence_automaton(
        "S",
        SCHEMA,
        Comparison(right("a"), "==", lit(1)),
        "T",
        SCHEMA,
        conjunction([DurationWithin(5), Comparison(right("a"), "==", lit(2))]),
        query_id="q",
        consume_on_match=consume,
    )


class TestSequenceTranslation:
    def test_operator_shapes(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        translate_automaton(simple_sequence(), plan, {"S": s, "T": t}, query_id="q")
        operators = [inst.operator for inst in plan.instances()]
        assert isinstance(operators[0], Selection)
        assert isinstance(operators[1], Sequence)
        assert operators[1].consume_on_match

    def test_keep_variant(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        translate_automaton(
            simple_sequence(consume=False), plan, {"S": s, "T": t}, query_id="q"
        )
        sequence = [i.operator for i in plan.instances() if isinstance(i.operator, Sequence)]
        assert not sequence[0].consume_on_match

    def test_output_marked(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        out = translate_automaton(
            simple_sequence(), plan, {"S": s, "T": t}, query_id="q"
        )
        assert plan.sinks[out.stream_id] == ["q"]

    def test_missing_stream_raises(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        with pytest.raises(AutomatonError, match="missing from stream_map"):
            translate_automaton(simple_sequence(), plan, {"S": s}, query_id="q")

    def test_output_schema_matches_concat(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        out = translate_automaton(
            simple_sequence(), plan, {"S": s, "T": t}, query_id="q"
        )
        assert out.schema.names == ("s_a", "s_b", "a", "b")


class TestIterateTranslation:
    def test_mu_operator_produced(self):
        correlation = Comparison(left("a"), "==", right("a"))
        increasing = Comparison(right("b"), ">", last("b"))
        automaton = iterate_automaton(
            "S",
            SCHEMA,
            TruePredicate(),
            "T",
            SCHEMA,
            conjunction([correlation, increasing]),
            conjunction([correlation, increasing]),
            query_id="q",
        )
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        translate_automaton(automaton, plan, {"S": s, "T": t}, query_id="q")
        mu = [i.operator for i in plan.instances() if isinstance(i.operator, Iterate)]
        assert len(mu) == 1
        # the predicates are back in LEFT/RIGHT/LAST form
        from repro.operators.predicates import conjuncts

        sides = {
            ref.side
            for part in conjuncts(mu[0].rebind)
            for ref in [part.lhs, part.rhs]
            if isinstance(ref, AttrRef)
        }
        assert sides == {LEFT, RIGHT, 2}  # LEFT, RIGHT, LAST


class TestUnsupportedShapes:
    def test_branching_state_rejected(self):
        start = State("s", "S", None, is_start=True)
        final1 = State("f1", None, None, is_final=True)
        final2 = State("f2", None, None, is_final=True)
        fmap = identity_schema_map(SCHEMA, RIGHT)
        start.add_forward(TruePredicate(), fmap, final1)
        start.add_forward(TruePredicate(), fmap, final2)
        automaton = Automaton(start, query_id="q")
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        with pytest.raises(AutomatonError, match="linear"):
            translate_automaton(automaton, plan, {"S": s}, query_id="q")

    def test_strict_false_filter_rejected(self):
        automaton = simple_sequence()
        middle = automaton.states[1]
        middle.filter_predicate = FalsePredicate()
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        with pytest.raises(AutomatonError, match="filter"):
            translate_automaton(automaton, plan, {"S": s, "T": t}, query_id="q")
