"""Deeper behavioural tests for the perfmon dataset and the hybrid pipeline."""

import pytest

from repro.core.optimizer import Optimizer
from repro.engine.executor import StreamEngine
from repro.mops.channel_ops import ChannelSelectionMOp
from repro.mops.channel_sequence import ChannelSequenceMOp
from repro.mops.predicate_index import PredicateIndexMOp
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import HybridWorkload


class TestPerfmonRegimes:
    def test_all_regimes_present_with_enough_processes(self):
        dataset = PerfmonDataset(processes=60, duration_seconds=10, seed=0)
        regimes = {model.regime for model in dataset._models}
        assert regimes == {"idle", "steady", "bursty", "ramping"}

    def test_tuples_per_second(self):
        dataset = PerfmonDataset(processes=13, duration_seconds=5, seed=0)
        assert dataset.tuples_per_second == 13

    def test_events_wrapper_names_stream(self):
        dataset = PerfmonDataset(processes=2, duration_seconds=2, seed=0)
        names = {name for name, __ in dataset.events()}
        assert names == {"CPU"}

    def test_different_seeds_differ(self):
        first = list(PerfmonDataset(4, 50, seed=1).generate())
        second = list(PerfmonDataset(4, 50, seed=2).generate())
        assert first != second


class TestHybridPlanShape:
    """The optimized hybrid plan must be exactly the Fig. 6(c) pipeline."""

    @pytest.fixture
    def channel_plan(self):
        dataset = PerfmonDataset(processes=6, duration_seconds=60, seed=4)
        workload = HybridWorkload(dataset, num_queries=5, sel=0.4)
        plan, name_map = workload.rumor_plan(channels=True)
        return plan

    def test_four_mops(self, channel_plan):
        assert len(channel_plan.mops) == 4

    def test_pipeline_kinds(self, channel_plan):
        kinds = {type(mop).__name__ for mop in channel_plan.mops}
        assert "PredicateIndexMOp" in kinds          # starting conditions
        assert "ChannelSequenceMOp" in kinds         # shared µ
        assert "ChannelSelectionMOp" in kinds        # stopping conditions

    def test_single_alpha_after_cse(self, channel_plan):
        from repro.operators.aggregate import SlidingWindowAggregate

        aggregates = [
            inst
            for inst in channel_plan.instances()
            if isinstance(inst.operator, SlidingWindowAggregate)
        ]
        assert len(aggregates) == 1  # "it produces a single stream SMOOTHED"

    def test_channel_capacities_match_queries(self, channel_plan):
        mu = next(
            mop
            for mop in channel_plan.mops
            if isinstance(mop, ChannelSequenceMOp)
        )
        left_channel = channel_plan.channel_of(mu.instances[0].inputs[0])
        assert left_channel.capacity == 5  # channel C of Fig. 6(c)
        out_channel = channel_plan.channel_of(mu.instances[0].output)
        assert out_channel.capacity == 5   # channel D of Fig. 6(c)

    def test_stopping_condition_shared_definition(self, channel_plan):
        stop = next(
            mop
            for mop in channel_plan.mops
            if isinstance(mop, ChannelSelectionMOp)
        )
        definitions = {
            inst.operator.definition() for inst in stop.instances
        }
        assert len(definitions) == 1


class TestHybridBehaviour:
    def test_alerts_carry_increasing_load(self):
        dataset = PerfmonDataset(processes=10, duration_seconds=240, seed=9)
        workload = HybridWorkload(dataset, num_queries=3, sel=0.6)
        plan, name_map = workload.rumor_plan(channels=True)
        engine = StreamEngine(plan, capture_outputs=True)
        engine.run(workload.sources(plan, name_map, 240))
        for outputs in engine.captured.values():
            for alert in outputs:
                record = alert.as_dict()
                # pattern invariants: correlated pid, above stop threshold,
                # strictly above the start of the ramp
                assert record["pid"] == record["s_pid"]
                assert record["load"] > workload.stop_threshold
                assert record["load"] > record["s_load"]

    def test_higher_sel_more_outputs(self):
        dataset = PerfmonDataset(processes=10, duration_seconds=200, seed=9)
        counts = []
        for sel in (0.2, 0.9):
            workload = HybridWorkload(dataset, num_queries=3, sel=sel)
            plan, name_map = workload.rumor_plan(channels=True)
            engine = StreamEngine(plan)
            stats = engine.run(workload.sources(plan, name_map, 200))
            counts.append(stats.output_events)
        assert counts[1] >= counts[0]
