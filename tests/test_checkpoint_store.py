"""Per-operator checkpoint round-trips through the CheckpointStore.

Mirrors ``tests/test_transfer_state.py`` — every stateful operator family's
state must survive serialization — but through the full checkpoint path:
non-destructive :meth:`QueryRuntime.checkpoint_component` capture →
manifest → versioned :class:`CheckpointStore` entry → ``load`` → restore
into a fresh runtime.  Twice over, in fact: the *donor* runtime must be
provably unperturbed by the capture (checkpointing cannot stall or skew
serving), and the *restored* runtime must serve on byte-identically.

Also pins the store's versioning discipline: a stale-version restore is
rejected with a clear error (the write-ahead log behind a superseded cut
is truncated, so serving it would be silently wrong), and the on-disk
store round-trips through a fresh process's view of the same directory.
"""

import pickle

import pytest

from repro.errors import CheckpointError, StaleCheckpointError
from repro.runtime import QueryRuntime
from repro.shard.checkpoint import (
    CheckpointStore,
    ComponentCheckpoint,
    ShardCheckpoint,
    ShardLog,
    capture_manifest,
    apply_restore,
)
from repro.shard.wire import decode_manifest
from test_transfer_state import QUERIES, SCHEMA, feed


def build_runtime(queries):
    runtime = QueryRuntime({"S": SCHEMA, "T": SCHEMA}, capture_outputs=True)
    for index, text in enumerate(queries):
        runtime.register(text, query_id=f"q{index}")
    if len(queries) > 1:
        runtime.reoptimize()  # force the merged m-op shape
    return runtime


def fresh_like(runtime) -> QueryRuntime:
    """A blank runtime sharing the donor's source stream objects (the
    same contract a forked worker gets)."""
    restored = QueryRuntime(capture_outputs=True)
    for stream in runtime.streams.values():
        restored.adopt_source(stream, runtime.plan.channel_of(stream))
    return restored


def checkpoint_of(runtime, shard=0, version=1, position=0) -> ShardCheckpoint:
    """Capture a full ShardCheckpoint the way the coordinator does."""
    payload = capture_manifest(runtime, version)
    manifest = decode_manifest(payload)
    return ShardCheckpoint(
        shard=shard,
        version=version,
        position=position,
        cursor=manifest["cursor"],
        components=tuple(
            ComponentCheckpoint(
                query_ids=tuple(component["queries"]),
                blob=component["blob"],
                state_carried=component["state_carried"],
                captured_offsets=component["captured_offsets"],
            )
            for component in manifest["components"]
        ),
        captured_extra=payload["captured_extra"],
        stats=payload["stats"],
    )


def restore_from(checkpoint: ShardCheckpoint, runtime: QueryRuntime) -> dict:
    return apply_restore(
        runtime,
        {
            "components": [c.blob for c in checkpoint.components],
            "captured_extra": checkpoint.captured_extra,
            "stats": checkpoint.stats,
            "cursor": dict(checkpoint.cursor),
        },
    )


class TestPerOperatorStoreRoundTrip:
    @pytest.mark.parametrize("family", sorted(QUERIES))
    def test_state_rides_the_store(self, family, tmp_path):
        queries = QUERIES[family]

        control = build_runtime(queries)
        feed(control, 0, 120)

        donor = build_runtime(queries)
        feed(donor, 0, 60)
        store = CheckpointStore(path=str(tmp_path))
        store.put(checkpoint_of(donor, shard=0, version=1))
        loaded = store.load(0, 1)
        if family not in ("join", "consuming-sequence"):
            assert loaded.state_carried > 0, "workload must accumulate state"

        restored = fresh_like(donor)
        result = restore_from(loaded, restored)
        assert result["queries"] == [f"q{i}" for i in range(len(queries))]
        assert result["state_restored"] == loaded.state_carried
        assert restored.cursor == donor.cursor

        # The capture was non-destructive: the donor serves on exactly as
        # if no checkpoint had been taken...
        feed(donor, 60, 120)
        assert donor.captured == control.captured
        assert donor.stats.outputs_by_query == control.stats.outputs_by_query
        assert donor.state_size == control.state_size
        # ...and the restored runtime serves on byte-identically too.
        feed(restored, 60, 120)
        assert restored.captured == control.captured
        assert restored.stats.outputs_by_query == control.stats.outputs_by_query
        assert restored.state_size == control.state_size

    def test_captured_offsets_mark_the_replay_window(self):
        donor = build_runtime(QUERIES["aggregate"])
        feed(donor, 0, 60)
        checkpoint = checkpoint_of(donor)
        (component,) = checkpoint.components
        assert component.captured_offsets == {
            "q0": len(donor.captured["q0"])
        }

    def test_unregistered_history_rides_captured_extra(self):
        donor = build_runtime(QUERIES["aggregate"])
        donor.register("FROM S WHERE a0 == 1", query_id="dead")
        feed(donor, 0, 40)
        donor.unregister("dead")
        history = list(donor.captured["dead"])
        assert history, "the retired query must have produced output"
        checkpoint = checkpoint_of(donor)
        assert "dead" not in checkpoint.query_ids
        assert pickle.loads(checkpoint.captured_extra) == {"dead": history}
        restored = fresh_like(donor)
        restore_from(checkpoint, restored)
        assert restored.captured["dead"] == history


class TestStoreVersioning:
    def _checkpoint(self, shard, version, position=0):
        return ShardCheckpoint(
            shard=shard,
            version=version,
            position=position,
            cursor={},
            components=(),
        )

    def test_stale_restore_rejected_with_clear_error(self):
        store = CheckpointStore()
        store.put(self._checkpoint(0, 1))
        store.put(self._checkpoint(0, 2))
        with pytest.raises(StaleCheckpointError, match="stale.*superseded"):
            store.load(0, 1)
        assert store.load(0, 2).version == 2

    def test_unknown_and_missing_versions(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError, match="no checkpoints"):
            store.load(0, 1)
        store.put(self._checkpoint(0, 3))
        with pytest.raises(CheckpointError, match="never stored"):
            store.load(0, 7)

    def test_put_must_supersede(self):
        store = CheckpointStore()
        store.put(self._checkpoint(0, 2))
        with pytest.raises(CheckpointError, match="does not supersede"):
            store.put(self._checkpoint(0, 2))
        with pytest.raises(CheckpointError, match="does not supersede"):
            store.put(self._checkpoint(0, 1))
        # Other shards version independently.
        store.put(self._checkpoint(1, 1))
        assert store.latest_version(0) == 2
        assert store.latest_version(1) == 1

    def test_retention_prunes_old_versions(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path), keep_last=2)
        for version in (1, 2, 3, 4):
            store.put(self._checkpoint(0, version))
        assert store.versions(0) == [3, 4]
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["shard0.v3.ckpt", "shard0.v4.ckpt"]

    def test_on_disk_store_survives_reopen(self, tmp_path):
        donor = build_runtime(QUERIES["sequence"])
        feed(donor, 0, 60)
        first = CheckpointStore(path=str(tmp_path))
        first.put(checkpoint_of(donor, shard=3, version=5))

        reopened = CheckpointStore(path=str(tmp_path))
        assert reopened.shards() == [3]
        loaded = reopened.load(3, 5)
        restored = fresh_like(donor)
        restore_from(loaded, restored)
        feed(donor, 60, 120)
        feed(restored, 60, 120)
        assert restored.captured == donor.captured
        assert restored.state_size == donor.state_size

    def test_latest_of_empty_store(self):
        store = CheckpointStore()
        assert store.latest(0) is None
        assert store.latest_version(0) is None
        assert store.shards() == []
        with pytest.raises(CheckpointError):
            CheckpointStore(keep_last=0)


class TestShardLog:
    def test_positions_stay_absolute_across_truncation(self):
        log = ShardLog()
        for index in range(5):
            assert log.append(("data", "S", [index])) == index
        assert (log.start, log.end) == (0, 5)
        assert log.truncate_to(3) == 3
        assert (log.start, log.end) == (3, 5)
        assert log.entries_from(3) == [("data", "S", [3]), ("data", "S", [4])]
        assert log.entries_from(5) == []
        # A stale (already-truncated) cut is a no-op, not an error: a
        # failed round's older position may race a completed newer one.
        assert log.truncate_to(1) == 0
        with pytest.raises(CheckpointError, match="truncated"):
            log.entries_from(0)
        with pytest.raises(CheckpointError, match="cannot truncate"):
            log.truncate_to(9)


class TestCrashSafePublish:
    """ISSUE 7 satellite: the on-disk store survives death mid-write."""

    def _checkpoint(self, shard, version):
        return ShardCheckpoint(
            shard=shard, version=version, position=0, cursor={}, components=()
        )

    def test_orphaned_tmp_files_are_collected_on_reopen(self, tmp_path):
        store = CheckpointStore(path=str(tmp_path))
        store.put(self._checkpoint(0, 1))
        # A coordinator killed between opening the tmp file and the atomic
        # rename leaves debris that must never shadow durable contents.
        orphan = tmp_path / "shard0.v2.ckpt.tmp"
        orphan.write_bytes(b"partial garbage")
        reopened = CheckpointStore(path=str(tmp_path))
        assert not orphan.exists()
        assert reopened.versions(0) == [1]
        assert reopened.load(0, 1).version == 1

    def test_publish_is_atomic(self, tmp_path):
        """No moment during put() exposes a truncated .ckpt: the final
        name appears only via rename, already complete."""
        store = CheckpointStore(path=str(tmp_path))
        store.put(self._checkpoint(2, 7))
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["shard2.v7.ckpt"]
        with open(tmp_path / "shard2.v7.ckpt", "rb") as handle:
            assert pickle.load(handle).version == 7

    def test_prune_above_drops_unjournaled_checkpoints(self, tmp_path):
        """Store-then-journal leaves a window where a .ckpt exists that the
        journal never acknowledged; resume prunes it so re-stored versions
        never collide."""
        store = CheckpointStore(path=str(tmp_path), keep_last=8)
        for version in (1, 2, 3):
            store.put(self._checkpoint(0, version))
        store.put(self._checkpoint(1, 5))
        assert store.prune_above(0, 1) == [2, 3]
        assert store.versions(0) == [1]
        assert store.versions(1) == [5], "prune must not touch other shards"
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == ["shard0.v1.ckpt", "shard1.v5.ckpt"]
        # The pruned versions are re-storable (no supersede complaint).
        store.put(self._checkpoint(0, 2))
        assert store.versions(0) == [1, 2]
        assert store.prune_above(0, 99) == []
