"""Property-based tests (hypothesis) on core data structures and invariants."""

from collections import Counter, deque

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.mop import OutputCollector
from repro.core.plan import QueryPlan
from repro.mops.naive import NaiveMOp
from repro.operators.aggregate import (
    MonotonicExtremeAccumulator,
    SumCountAccumulator,
)
from repro.operators.expressions import attr, lit
from repro.operators.instances import Instance, InstanceStore
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.streams.channel import Channel
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a")


# -- channel membership roundtrip ---------------------------------------------------


@given(
    capacity=st.integers(min_value=1, max_value=24),
    data=st.data(),
)
def test_channel_mask_roundtrip(capacity, data):
    """decode(encode(streams)) == streams for every nonempty subset."""
    streams = [StreamDef(f"S{i}", SCHEMA) for i in range(capacity)]
    channel = Channel(streams)
    subset_indexes = data.draw(
        st.sets(st.integers(0, capacity - 1), min_size=1, max_size=capacity)
    )
    subset = [streams[i] for i in sorted(subset_indexes)]
    mask = channel.mask_of(subset)
    assert channel.streams_of(mask) == subset
    assert mask.bit_count() == len(subset)


# -- sliding accumulators vs brute force -----------------------------------------------


@st.composite
def timestamped_values(draw):
    count = draw(st.integers(min_value=1, max_value=60))
    timestamps = sorted(
        draw(
            st.lists(
                st.integers(0, 200), min_size=count, max_size=count
            )
        )
    )
    values = draw(
        st.lists(st.integers(-100, 100), min_size=count, max_size=count)
    )
    window = draw(st.integers(0, 50))
    return list(zip(timestamps, values)), window


@given(timestamped_values())
@settings(max_examples=120)
def test_sum_count_accumulator_matches_bruteforce(case):
    entries, window = case
    accumulator = SumCountAccumulator()
    for position, (ts, value) in enumerate(entries):
        accumulator.insert(ts, value)
        accumulator.expire(ts - window)
        processed = entries[: position + 1]
        expected = [(t, v) for t, v in processed if t >= ts - window]
        assert accumulator.partial() == (
            sum(v for __, v in expected),
            len(expected),
        )


@given(timestamped_values(), st.booleans())
@settings(max_examples=120)
def test_monotonic_extreme_matches_bruteforce(case, maximum):
    entries, window = case
    accumulator = MonotonicExtremeAccumulator(maximum=maximum)
    for position, (ts, value) in enumerate(entries):
        accumulator.insert(ts, value)
        accumulator.expire(ts - window)
        processed = entries[: position + 1]
        expected = [v for t, v in processed if t >= ts - window]
        reference = max(expected) if maximum else min(expected)
        assert accumulator.partial() == reference


# -- instance store invariants ----------------------------------------------------------


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["insert", "kill", "expire"]),
            st.integers(0, 5),  # key
            st.integers(0, 100),  # ts / threshold
        ),
        max_size=80,
    )
)
@settings(max_examples=100)
def test_instance_store_matches_model(operations):
    """The indexed store behaves like a naive model set."""
    store = InstanceStore(indexed=True)
    model: list = []  # live (instance, key) in insertion order
    clock = 0
    inserted: list = []
    for action, key, stamp in operations:
        if action == "insert":
            clock = max(clock, stamp)
            instance = Instance(
                StreamTuple(SCHEMA, (key,), clock), key=key
            )
            store.insert(instance)
            model.append(instance)
            inserted.append(instance)
        elif action == "kill" and inserted:
            victim = inserted[stamp % len(inserted)]
            store.kill(victim)
            model = [i for i in model if i is not victim]
        else:  # expire
            store.expire(stamp)
            model = [i for i in model if i.start_ts >= stamp and i.alive]
        assert len(store) == len(model)
        for probe_key in range(6):
            expected = [i for i in model if i.key == probe_key]
            assert list(store.probe(probe_key)) == expected


# -- output collector: per-stream multiset preservation ------------------------------------


@given(
    st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 4)),  # (stream idx, value)
        min_size=0,
        max_size=30,
    )
)
@settings(max_examples=120)
def test_collector_preserves_per_stream_multisets(emission_plan):
    plan = QueryPlan()
    source = plan.add_source("S", SCHEMA)
    outs = [
        plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(i))), [source], query_id=f"q{i}"
        )
        for i in range(4)
    ]
    old = list(plan.mops)
    instances = [inst for mop in old for inst in mop.instances]
    plan.replace_mops(old, NaiveMOp(instances))
    channel = plan.channelize(outs)
    collector = OutputCollector(plan, outs)

    emissions = [
        (outs[stream_index], StreamTuple(SCHEMA, (value,), 0))
        for stream_index, value in emission_plan
    ]
    encoded = collector.emit(emissions)

    # Decode back: per stream, the multiset of tuple contents must match.
    decoded: Counter = Counter()
    for out_channel, channel_tuple in encoded:
        assert out_channel is channel
        for member in out_channel.decode(channel_tuple):
            decoded[(member.stream_id, channel_tuple.tuple.values)] += 1
    expected: Counter = Counter(
        (stream.stream_id, tuple_.values) for stream, tuple_ in emissions
    )
    assert decoded == expected


# -- Zipf sampler distribution sanity --------------------------------------------------------


@given(st.integers(2, 50), st.floats(1.1, 3.0))
@settings(max_examples=30)
def test_zipf_probabilities_normalized(domain, parameter):
    import numpy as np

    from repro.workloads.zipf import ZipfSampler

    sampler = ZipfSampler(1, domain, parameter, np.random.default_rng(0))
    assert abs(sampler._probabilities.sum() - 1.0) < 1e-9
    assert sampler.expected_distinct(1) == pytest.approx(1.0, abs=1e-9)


# -- predicate compilation vs structural evaluation ---------------------------------------


@st.composite
def simple_predicates(draw):
    from repro.operators.predicates import And, Not, Or, TruePredicate

    def leaf():
        op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
        const = draw(st.integers(0, 3))
        return Comparison(attr("a"), op, lit(const))

    depth = draw(st.integers(0, 2))
    node = leaf()
    for __ in range(depth):
        kind = draw(st.sampled_from(["and", "or", "not"]))
        if kind == "and":
            node = And((node, leaf()))
        elif kind == "or":
            node = Or((node, leaf()))
        else:
            node = Not(node)
    return node


def _reference_eval(predicate, tuple_):
    """Structural interpreter used as the compilation oracle."""
    from repro.operators.predicates import (
        And,
        Comparison,
        FalsePredicate,
        Not,
        Or,
        TruePredicate,
    )

    if isinstance(predicate, TruePredicate):
        return True
    if isinstance(predicate, FalsePredicate):
        return False
    if isinstance(predicate, And):
        return all(_reference_eval(p, tuple_) for p in predicate.parts)
    if isinstance(predicate, Or):
        return any(_reference_eval(p, tuple_) for p in predicate.parts)
    if isinstance(predicate, Not):
        return not _reference_eval(predicate.part, tuple_)
    assert isinstance(predicate, Comparison)
    ops = {
        "==": lambda a, b: a == b,
        "!=": lambda a, b: a != b,
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }
    lhs = tuple_["a"] if hasattr(predicate.lhs, "name") else predicate.lhs.value
    rhs = predicate.rhs.value if hasattr(predicate.rhs, "value") else tuple_["a"]
    return ops[predicate.op](lhs, rhs)


@given(simple_predicates(), st.integers(0, 3))
@settings(max_examples=150)
def test_compiled_predicate_matches_reference(predicate, value):
    tuple_ = StreamTuple(SCHEMA, (value,), 0)
    compiled = predicate.compile(SCHEMA)
    assert compiled(tuple_, None, None) == _reference_eval(predicate, tuple_)


# -- parser/printer stability ---------------------------------------------------------------


@given(st.integers(0, 999), st.integers(1, 1000))
@settings(max_examples=50)
def test_parse_predicate_roundtrip_semantics(constant, window):
    from repro.lang.parser import parse_predicate
    from repro.operators.predicates import DurationWithin, conjunction

    text = f"a == {constant} AND WITHIN {window}"
    parsed = parse_predicate(text)
    expected = conjunction(
        [Comparison(attr("a"), "==", lit(constant)), DurationWithin(window)]
    )
    assert parsed == expected
