"""Unit tests for the stream engine and run statistics."""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a")


def simple_plan():
    plan = QueryPlan()
    source = plan.add_source("S", SCHEMA)
    out = plan.add_operator(
        Selection(Comparison(attr("a"), "==", lit(1))), [source], query_id="q"
    )
    plan.mark_output(out, "q")
    return plan, source


def tuples(values):
    return [StreamTuple(SCHEMA, (v,), ts) for ts, v in enumerate(values)]


class TestRun:
    def test_counts(self):
        plan, source = simple_plan()
        engine = StreamEngine(plan)
        stats = engine.run([StreamSource(plan.channel_of(source), tuples([1, 0, 1]))])
        assert stats.input_events == 3
        assert stats.output_events == 2
        assert stats.outputs_by_query == {"q": 2}
        assert stats.elapsed_seconds > 0

    def test_capture_outputs(self):
        plan, source = simple_plan()
        engine = StreamEngine(plan, capture_outputs=True)
        engine.run([StreamSource(plan.channel_of(source), tuples([1, 0]))])
        assert len(engine.captured["q"]) == 1

    def test_warmup_not_counted(self):
        plan, source = simple_plan()
        engine = StreamEngine(plan)
        stats = engine.run(
            [StreamSource(plan.channel_of(source), tuples([1, 1, 1, 1]))],
            warmup_events=2,
        )
        assert stats.input_events == 2

    def test_process_single_event(self):
        plan, source = simple_plan()
        engine = StreamEngine(plan)
        channel = plan.channel_of(source)
        stats = engine.process(channel, channel.encode_all(tuples([1])[0]))
        assert stats.output_events == 1

    def test_multi_query_sink_counting(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(1))), [source]
        )
        plan.mark_output(out, "q1")
        plan.mark_output(out, "q2")
        engine = StreamEngine(plan)
        stats = engine.run([StreamSource(plan.channel_of(source), tuples([1]))])
        assert stats.output_events == 2
        assert stats.outputs_by_query == {"q1": 1, "q2": 1}

    def test_logical_input_counting_with_channels(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="s")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="s")
        channel = plan.channelize([s1, s2])
        engine = StreamEngine(plan)
        stats = engine.run([StreamSource(channel, tuples([0, 0]))])
        # two channel tuples, each encoding two streams = 4 logical events
        assert stats.input_events == 4
        assert stats.physical_input_events == 2


class TestRunStats:
    def test_throughput(self):
        stats = RunStats(input_events=100, elapsed_seconds=2.0)
        assert stats.throughput == 50.0

    def test_zero_elapsed(self):
        assert RunStats(input_events=5).throughput == 0.0

    def test_merge(self):
        first = RunStats(input_events=10, output_events=1, elapsed_seconds=1.0)
        first.outputs_by_query = {"q": 1}
        second = RunStats(input_events=20, output_events=3, elapsed_seconds=2.0)
        second.outputs_by_query = {"q": 2, "r": 1}
        merged = first.merge(second)
        assert merged.input_events == 30
        assert merged.outputs_by_query == {"q": 3, "r": 1}
        assert merged.elapsed_seconds == 3.0

    def test_str(self):
        text = str(RunStats(input_events=10, elapsed_seconds=1.0))
        assert "throughput" in text
