"""Unit tests for the Cayuga-style automaton substrate."""

import pytest

from repro.automata.automaton import (
    Automaton,
    ForwardEdge,
    State,
    identity_schema_map,
    iterate_automaton,
    sequence_automaton,
)
from repro.automata.engine import AutomatonEngine
from repro.automata.merging import Forest
from repro.errors import AutomatonError
from repro.operators.expressions import RIGHT, last, left, lit, right
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    TruePredicate,
    conjunction,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


def w1_automaton(start_const, end_const, window, query_id):
    return sequence_automaton(
        "S",
        SCHEMA,
        Comparison(right("a"), "==", lit(start_const)),
        "T",
        SCHEMA,
        conjunction(
            [DurationWithin(window), Comparison(right("a"), "==", lit(end_const))]
        ),
        query_id=query_id,
    )


class TestModel:
    def test_sequence_automaton_states(self):
        automaton = w1_automaton(1, 2, 5, "q")
        assert len(automaton.states) == 3
        assert automaton.start.is_start
        assert automaton.states[-1].is_final

    def test_final_state_carries_query(self):
        automaton = w1_automaton(1, 2, 5, "q")
        finals = [s for s in automaton.states if s.is_final]
        assert finals[0].query_ids == ["q"]

    def test_cycle_rejected(self):
        a = State("a", "S", SCHEMA)
        b = State("b", "S", SCHEMA)
        a.add_forward(TruePredicate(), identity_schema_map(SCHEMA, RIGHT), b)
        b.add_forward(TruePredicate(), identity_schema_map(SCHEMA, RIGHT), a)
        a.is_start = True
        with pytest.raises(AutomatonError, match="cycle"):
            Automaton(a)

    def test_final_state_edges_rejected(self):
        final = State("f", None, None, is_final=True)
        with pytest.raises(AutomatonError):
            final.add_forward(
                TruePredicate(), identity_schema_map(SCHEMA, RIGHT), final
            )

    def test_no_final_state_rejected(self):
        start = State("s", "S", None, is_start=True)
        with pytest.raises(AutomatonError, match="no final state"):
            Automaton(start)

    def test_start_rebind_rejected(self):
        start = State("s", "S", None, is_start=True)
        with pytest.raises(AutomatonError):
            start.set_rebind(TruePredicate(), identity_schema_map(SCHEMA, RIGHT))


class TestPrefixMerging:
    def test_identical_automata_fully_shared(self):
        forest = Forest()
        created_first = forest.add(w1_automaton(1, 2, 5, "q1"))
        created_second = forest.add(w1_automaton(1, 2, 5, "q2"))
        # second automaton creates nothing: full prefix + final shared
        assert created_second == 0
        finals = [s for s in forest.states if s.is_final]
        assert finals[0].query_ids == ["q1", "q2"]

    def test_consuming_suffixes_not_merged(self):
        """Consume-on-match states with different θ3 keep separate states:
        a shared instance consumed by q1's match would wrongly kill q2's.
        (Their θf = ¬θ_fwd filter edges differ, so signatures differ.)"""
        forest = Forest()
        forest.add(w1_automaton(1, 2, 5, "q1"))
        forest.add(w1_automaton(1, 3, 5, "q2"))  # same θ1, different θ3
        middles = [
            s for s in forest.states if not s.is_final and not s.is_start
        ]
        assert len(middles) == 2
        starts = [s for s in forest.states if s.is_start]
        assert len(starts) == 1  # the prefix (start state) is shared

    def test_non_consuming_suffixes_merge(self):
        """With identical loop edges (θf = true) the middle state is shared
        and accumulates both forward edges — the Fig. 7(c) merge."""

        def automaton(end_const, query_id):
            return sequence_automaton(
                "S",
                SCHEMA,
                Comparison(right("a"), "==", lit(1)),
                "T",
                SCHEMA,
                conjunction(
                    [DurationWithin(5), Comparison(right("a"), "==", lit(end_const))]
                ),
                query_id=query_id,
                consume_on_match=False,
            )

        forest = Forest()
        forest.add(automaton(2, "q1"))
        forest.add(automaton(3, "q2"))
        middles = [
            s for s in forest.states if not s.is_final and not s.is_start
        ]
        assert len(middles) == 1
        assert len(middles[0].forwards) == 2  # Fig. 7(c): both θ edges

    def test_different_prefix_not_shared(self):
        forest = Forest()
        forest.add(w1_automaton(1, 2, 5, "q1"))
        forest.add(w1_automaton(9, 2, 5, "q2"))  # different θ1
        middles = [
            s for s in forest.states if not s.is_final and not s.is_start
        ]
        assert len(middles) == 2

    def test_merge_disabled(self):
        forest = Forest(merge=False)
        forest.add(w1_automaton(1, 2, 5, "q1"))
        forest.add(w1_automaton(1, 2, 5, "q2"))
        starts = [s for s in forest.states if s.is_start]
        assert len(starts) == 2


class TestEngineExecution:
    def events(self, rows):
        """rows: (stream, ts, a, b)."""
        return [
            (stream, StreamTuple(SCHEMA, (a, b), ts)) for stream, ts, a, b in rows
        ]

    def engine_with(self, *automata, **flags):
        engine = AutomatonEngine(**flags)
        engine.declare_stream("S", SCHEMA)
        engine.declare_stream("T", SCHEMA)
        for automaton in automata:
            engine.add(automaton)
        return engine

    def test_basic_match(self):
        engine = self.engine_with(w1_automaton(1, 2, 10, "q"))
        outputs = []
        for stream, event in self.events([("S", 0, 1, 5), ("T", 1, 2, 6)]):
            engine.process(stream, event, outputs)
        assert len(outputs) == 1
        query_id, output = outputs[0]
        assert query_id == "q"
        assert output.as_dict() == {"s_a": 1, "s_b": 5, "a": 2, "b": 6}

    def test_window_enforced(self):
        engine = self.engine_with(w1_automaton(1, 2, 3, "q"))
        outputs = []
        for stream, event in self.events([("S", 0, 1, 5), ("T", 10, 2, 6)]):
            engine.process(stream, event, outputs)
        assert outputs == []

    def test_consume_on_match(self):
        engine = self.engine_with(w1_automaton(1, 2, 50, "q"))
        outputs = []
        rows = [("S", 0, 1, 5), ("T", 1, 2, 6), ("T", 2, 2, 7)]
        for stream, event in self.events(rows):
            engine.process(stream, event, outputs)
        assert len(outputs) == 1

    def test_same_event_cannot_spawn_and_match(self):
        """Two-phase commit: an instance never reacts to its own event."""
        automaton = sequence_automaton(
            "S",
            SCHEMA,
            TruePredicate(),
            "S",  # same stream on both steps
            SCHEMA,
            TruePredicate(),
            query_id="q",
        )
        engine = AutomatonEngine()
        engine.declare_stream("S", SCHEMA)
        engine.add(automaton)
        outputs = []
        engine.process("S", StreamTuple(SCHEMA, (1, 1), 0), outputs)
        assert outputs == []  # the first event only spawns
        engine.process("S", StreamTuple(SCHEMA, (2, 2), 1), outputs)
        assert len(outputs) >= 1

    def test_undeclared_stream_raises(self):
        engine = AutomatonEngine()
        engine.declare_stream("S", SCHEMA)
        engine.add(w1_automaton(1, 2, 5, "q"))
        with pytest.raises(AutomatonError, match="not declared"):
            engine.freeze()

    def test_reset_clears_state(self):
        engine = self.engine_with(w1_automaton(1, 2, 50, "q"))
        outputs = []
        engine.process("S", StreamTuple(SCHEMA, (1, 5), 0), outputs)
        assert engine.instance_count == 1
        engine.reset()
        assert engine.instance_count == 0

    @pytest.mark.parametrize(
        "flags",
        [
            {},
            {"use_fr_index": False},
            {"use_an_index": False},
            {"use_ai_index": False},
            {"use_fr_index": False, "use_an_index": False, "use_ai_index": False},
            {"merge_prefixes": False},
        ],
    )
    def test_index_and_merge_ablations_equivalent(self, flags):
        """Indexes and merging are performance features, not semantics."""
        import random

        rng = random.Random(5)
        rows = [
            (("S" if i % 2 == 0 else "T"), i, rng.randrange(4), rng.randrange(6))
            for i in range(300)
        ]
        automata = [w1_automaton(c % 3, (c + 1) % 3, 10 + c, f"q{c}") for c in range(6)]
        baseline = self.engine_with(*automata)
        baseline.run(iter(self.events(rows)), capture_outputs=True)
        variant = self.engine_with(*automata, **flags)
        variant.run(iter(self.events(rows)), capture_outputs=True)
        normalize = lambda captured: {
            q: sorted((t.ts, tuple(t.values)) for t in ts)
            for q, ts in captured.items()
        }
        assert normalize(baseline.captured) == normalize(variant.captured)

    def test_mu_automaton_ramp(self):
        correlation = Comparison(left("a"), "==", right("a"))
        increasing = Comparison(right("b"), ">", last("b"))
        automaton = iterate_automaton(
            "S",
            SCHEMA,
            TruePredicate(),
            "T",
            SCHEMA,
            conjunction([correlation, increasing]),
            conjunction([correlation, increasing]),
            query_id="q",
        )
        engine = self.engine_with(automaton)
        outputs = []
        rows = [
            ("S", 0, 1, 10),
            ("T", 1, 1, 12),
            ("T", 2, 1, 15),
            ("T", 3, 1, 3),   # breaks the run
            ("T", 4, 1, 99),  # no instance left
        ]
        for stream, event in self.events(rows):
            engine.process(stream, event, outputs)
        assert [output["b"] for __, output in outputs] == [12, 15]
