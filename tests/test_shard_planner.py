"""Shard planning: components, balance heuristic, and the edge cases.

The contracts under test: queries sharing any m-op (or any entry channel)
land in the same component; the LPT balance is deterministic and spreads
cost; degenerate shapes — one giant component, a component above the
per-shard cost target, empty plans — are handled explicitly, not by
accident.
"""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.shard import ShardComponent, ShardPlanner
from repro.streams.schema import Schema


def multi_source_plan(num_sources=3, queries_per_source=4, optimize=True):
    """Independent selection sets over independent sources."""
    schema = Schema.numbered(2)
    plan = QueryPlan()
    sources = [plan.add_source(f"S{i}", schema) for i in range(num_sources)]
    for i, source in enumerate(sources):
        for j in range(queries_per_source):
            query_id = f"q{i}_{j}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(j))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    if optimize:
        Optimizer().optimize(plan)
    return plan, sources


def bridged_plan():
    """Two sources bridged by a sequence query — one component."""
    schema = Schema.numbered(2)
    plan = QueryPlan()
    s = plan.add_source("S", schema)
    t = plan.add_source("T", schema)
    sel = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="q_sel"
    )
    plan.mark_output(sel, "q_sel")
    seq = plan.add_operator(
        Sequence(
            conjunction([DurationWithin(5), Comparison(right("a0"), "==", lit(1))])
        ),
        [sel, t],
        query_id="q_seq",
    )
    plan.mark_output(seq, "q_seq")
    return plan, (s, t)


class TestComponents:
    def test_independent_sources_are_separate_components(self):
        plan, __ = multi_source_plan(num_sources=3)
        components = ShardPlanner().components(plan)
        assert len(components) == 3
        for component in components:
            assert len(component.entry_channel_ids) == 1
            assert len(component.query_ids) == 4
        all_queries = {q for c in components for q in c.query_ids}
        assert len(all_queries) == 12

    def test_queries_sharing_mop_share_component(self):
        plan, __ = multi_source_plan(num_sources=2, optimize=True)
        components = ShardPlanner().components(plan)
        by_query = {}
        for component in components:
            for query_id in component.query_ids:
                by_query[query_id] = component.index
        # After optimization all of a source's selections sit in one
        # predicate-index m-op — same component by the sharing rule.
        assert by_query["q0_0"] == by_query["q0_3"]
        assert by_query["q0_0"] != by_query["q1_0"]

    def test_entry_channel_connects_co_consumers(self):
        # Unoptimized: distinct m-ops reading the same source still form
        # one component (co-consumers of an entry channel).
        plan, __ = multi_source_plan(num_sources=1, optimize=False)
        components = ShardPlanner().components(plan)
        assert len(components) == 1

    def test_bridge_query_merges_components(self):
        plan, __ = bridged_plan()
        components = ShardPlanner().components(plan)
        assert len(components) == 1
        assert set(components[0].query_ids) == {"q_sel", "q_seq"}
        assert len(components[0].entry_channel_ids) == 2


class TestBalance:
    def _components(self, costs):
        return [
            ShardComponent(
                index=i, mops=[], query_ids=[], entry_channel_ids=frozenset(),
                cost=cost,
            )
            for i, cost in enumerate(costs)
        ]

    def test_lpt_spreads_cost(self):
        planner = ShardPlanner()
        costs = [8, 7, 6, 5]
        assignment = planner.balance(self._components(costs), 2)
        loads = [0.0, 0.0]
        for index, shard in enumerate(assignment):
            loads[shard] += costs[index]
        # LPT trace: 8→s0, 7→s1, 6→s1 (7<8), 5→s0 (8<13) — a perfect split.
        assert loads == [13, 13]
        # Heaviest component goes first, alone onto its shard.
        assert assignment[0] != assignment[1]

    def test_deterministic_tiebreak(self):
        planner = ShardPlanner()
        first = planner.balance(self._components([1, 1, 1, 1]), 2)
        second = planner.balance(self._components([1, 1, 1, 1]), 2)
        assert first == second

    def test_rejects_bad_shard_count(self):
        with pytest.raises(PlanError):
            ShardPlanner().balance([], 0)


class TestPartition:
    def test_subplans_validate_and_cover_queries(self):
        plan, __ = multi_source_plan(num_sources=3)
        shard_plan = ShardPlanner().partition(plan, 2)
        assert len(shard_plan.subplans) == 2
        total_mops = sum(len(sub.mops) for sub in shard_plan.subplans)
        assert total_mops == len(plan.mops)
        covered = {
            query_id
            for sub in shard_plan.subplans
            for __stream, query_ids in sub.sink_streams()
            for query_id in query_ids
        }
        assert covered == set(shard_plan.query_shard)
        for channel_id, shard in shard_plan.channel_shard.items():
            assert 0 <= shard < 2

    def test_single_component_collapses_to_one_shard_without_split(self):
        # With splitting disabled, a one-component plan degenerates to n=1:
        # every m-op lands on one shard, the rest stay empty.
        plan, __ = bridged_plan()
        shard_plan = ShardPlanner().partition(plan, 4, split=False)
        assert shard_plan.effective_shards == 1
        assert shard_plan.relays == []
        populated = [sub for sub in shard_plan.subplans if sub.mops]
        assert len(populated) == 1
        assert len(populated[0].mops) == len(plan.mops)

    def test_bridge_component_splits_across_shards(self):
        # With splitting on (the default), the bridged component is cut at
        # the selection's output: the σ fragment and the sequence fragment
        # land on different shards, joined by one relay edge.
        plan, __ = bridged_plan()
        shard_plan = ShardPlanner().partition(plan, 4)
        assert shard_plan.effective_shards == 2
        assert len(shard_plan.components) == 2
        assert len(shard_plan.relays) == 1
        edge = shard_plan.relays[0]
        assert edge.from_shard != edge.to_shard
        # Fragments are renumbered topologically: producer before consumer.
        assert edge.from_component < edge.to_component
        # The bridge stream is adopted as a *source* of the receiving shard.
        receiving = shard_plan.subplans[edge.to_shard]
        assert any(
            source.stream_id == edge.stream.stream_id
            for source in receiving.sources
        )
        # Sinks stay with their producing fragment: q_sel sinks on the
        # bridge stream itself, which the upstream fragment produces.
        assert shard_plan.query_shard["q_sel"] == edge.from_shard
        assert shard_plan.query_shard["q_seq"] == edge.to_shard

    def test_source_consumed_on_both_sides_blocks_the_cut(self):
        # A raw source feeding m-ops on *both* sides of a candidate cut
        # cannot be single-homed (the router ships each source channel to
        # exactly one shard), so the cut must be refused — the component
        # stays whole rather than silently starving one side of its feed.
        plan, (s, t) = bridged_plan()
        extra = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(2))),
            [t],
            query_id="q_t",
        )
        plan.mark_output(extra, "q_t")
        shard_plan = ShardPlanner().partition(plan, 4)
        assert shard_plan.relays == []
        assert len(shard_plan.components) == 1
        shards = {
            shard_plan.query_shard[q] for q in ("q_sel", "q_seq", "q_t")
        }
        assert len(shards) == 1

    def test_colocated_fragments_drop_the_relay(self):
        # Cut fragments that land on the same shard reconnect through the
        # shard plan's own wiring — no relay edge survives.
        plan, __ = bridged_plan()
        shard_plan = ShardPlanner().partition(plan, 1)
        assert shard_plan.relays == []
        assert shard_plan.effective_shards == 1
        assert len(shard_plan.subplans[0].mops) == len(plan.mops)

    def test_oversized_component_is_flagged(self):
        # One heavy component (5 merged selection queries + sequences) next
        # to tiny ones: its cost exceeds total/n, which partition must
        # surface rather than silently producing a hot shard.
        schema = Schema.numbered(2)
        plan = QueryPlan()
        s = plan.add_source("S", schema)
        t = plan.add_source("T", schema)
        sel = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="big"
        )
        previous = sel
        for depth in range(4):
            previous = plan.add_operator(
                Sequence(
                    conjunction(
                        [DurationWithin(9), Comparison(right("a0"), ">", lit(-1))]
                    )
                ),
                [previous, t],
                query_id="big",
            )
        plan.mark_output(previous, "big")
        u = plan.add_source("U", schema)
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(0))), [u], query_id="small"
        )
        plan.mark_output(out, "small")
        shard_plan = ShardPlanner().partition(plan, 2)
        assert shard_plan.oversized
        heavy = shard_plan.components[shard_plan.oversized[0]]
        assert "big" in heavy.query_ids
        assert heavy.cost > shard_plan.cost_target
        # The balance still assigns it somewhere — flagged, not rejected.
        assert 0 <= shard_plan.assignment[heavy.index] < 2

    def test_effective_shards_and_describe(self):
        plan, __ = multi_source_plan(num_sources=2)
        shard_plan = ShardPlanner().partition(plan, 4)
        assert shard_plan.effective_shards == 2
        text = shard_plan.describe()
        assert "component" in text

    def test_passthrough_sink_rides_its_entry_shard(self):
        # A query sinking directly on a source stream used to abort the
        # whole partition with PlanError; now it lands on the shard that
        # owns that entry channel.
        plan, sources = multi_source_plan(num_sources=2)
        plan.mark_output(sources[0], "passthrough")
        shard_plan = ShardPlanner().partition(plan, 2)
        shard = shard_plan.query_shard["passthrough"]
        entry_channel = plan.channel_of(sources[0])
        assert shard == shard_plan.channel_shard[entry_channel.channel_id]
        subplan = shard_plan.subplans[shard]
        sink_queries = {
            query_id
            for __, query_ids in subplan.sink_streams()
            for query_id in query_ids
        }
        assert "passthrough" in sink_queries
        subplan.validate()

    def test_passthrough_only_plan_takes_lightest_shard(self):
        # No component consumes the channel at all: the pass-through query
        # goes to the least-loaded shard instead of raising.
        schema = Schema.numbered(1)
        plan = QueryPlan()
        s = plan.add_source("S", schema)
        plan.mark_output(s, "passthrough")
        shard_plan = ShardPlanner().partition(plan, 2)
        shard = shard_plan.query_shard["passthrough"]
        assert shard == 0
        assert any(
            source.stream_id == s.stream_id
            for source in shard_plan.subplans[shard].sources
        )

    def test_empty_plan_partitions_to_empty_shards(self):
        shard_plan = ShardPlanner().partition(QueryPlan(), 2)
        assert shard_plan.components == []
        assert shard_plan.effective_shards == 0


class TestOversizedTolerance:
    def test_fp_noise_does_not_flip_the_flag(self):
        from repro.shard.planner import OVERSIZED_REL_TOL, is_oversized

        target = 100.0
        assert not is_oversized(target, target)
        # A few ULPs of attribution noise stay under the relative tolerance.
        assert not is_oversized(target + 1e-12, target)
        assert not is_oversized(target * (1.0 + OVERSIZED_REL_TOL / 2), target)
        # A real excess still trips it.
        assert is_oversized(target * (1.0 + OVERSIZED_REL_TOL * 10), target)
        assert is_oversized(target * 1.5, target)

    def test_partition_flag_uses_tolerance(self):
        # Two identical components over two shards: each cost equals the
        # target exactly up to summation order, so neither may be flagged.
        plan, __ = multi_source_plan(num_sources=2)
        shard_plan = ShardPlanner().partition(plan, 2)
        assert shard_plan.oversized == []


class TestSharabilityGrouping:
    def _labelled_plan(self):
        # Components over A and B read sources sharing a sharable label
        # (their entries are ∼-equivalent) and are light — one query each.
        # Components over C and D are unlabeled and three times as heavy, so
        # the A+B group fits under the per-shard target and stays glued.
        schema = Schema.numbered(2)
        plan = QueryPlan()
        a = plan.add_source("A", schema, sharable_label="L")
        b = plan.add_source("B", schema, sharable_label="L")
        c = plan.add_source("C", schema)
        d = plan.add_source("D", schema)
        for i, source in enumerate((a, b)):
            query_id = f"q{i}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(i))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
        for i, source in enumerate((c, d)):
            for j in range(3):
                query_id = f"h{i}_{j}"
                out = plan.add_operator(
                    Selection(Comparison(attr("a0"), "==", lit(j))),
                    [source],
                    query_id=query_id,
                )
                plan.mark_output(out, query_id)
        return plan

    def test_sharable_alike_components_colocate(self):
        plan = self._labelled_plan()
        shard_plan = ShardPlanner().partition(plan, 3, split=False)
        assert (
            shard_plan.query_shard["q0"] == shard_plan.query_shard["q1"]
        ), "∼-equivalent entries should balance as one unit"
        assert shard_plan.query_shard["h0_0"] != shard_plan.query_shard["q0"]
        assert shard_plan.query_shard["h1_0"] != shard_plan.query_shard["q0"]

    def test_oversized_group_falls_back_to_lpt(self):
        # If gluing a signature group would overload a shard, the members
        # spread individually like before.
        plan = self._labelled_plan()
        planner = ShardPlanner()
        components = planner.components(plan)
        costs, __ = planner.cost_model.attributed_costs(plan)
        for component in components:
            component.cost = sum(costs[id(mop)] for mop in component.mops)
        # A target below any single member's cost marks every group
        # oversized, so all four components spread individually.
        assignment = planner.balance_grouped(plan, components, 4, 0.0)
        assert len(set(assignment)) == 4
