"""Shard planning: components, balance heuristic, and the edge cases.

The contracts under test: queries sharing any m-op (or any entry channel)
land in the same component; the LPT balance is deterministic and spreads
cost; degenerate shapes — one giant component, a component above the
per-shard cost target, empty plans — are handled explicitly, not by
accident.
"""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.operators.expressions import attr, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.shard import ShardComponent, ShardPlanner
from repro.streams.schema import Schema


def multi_source_plan(num_sources=3, queries_per_source=4, optimize=True):
    """Independent selection sets over independent sources."""
    schema = Schema.numbered(2)
    plan = QueryPlan()
    sources = [plan.add_source(f"S{i}", schema) for i in range(num_sources)]
    for i, source in enumerate(sources):
        for j in range(queries_per_source):
            query_id = f"q{i}_{j}"
            out = plan.add_operator(
                Selection(Comparison(attr("a0"), "==", lit(j))),
                [source],
                query_id=query_id,
            )
            plan.mark_output(out, query_id)
    if optimize:
        Optimizer().optimize(plan)
    return plan, sources


def bridged_plan():
    """Two sources bridged by a sequence query — one component."""
    schema = Schema.numbered(2)
    plan = QueryPlan()
    s = plan.add_source("S", schema)
    t = plan.add_source("T", schema)
    sel = plan.add_operator(
        Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="q_sel"
    )
    plan.mark_output(sel, "q_sel")
    seq = plan.add_operator(
        Sequence(
            conjunction([DurationWithin(5), Comparison(right("a0"), "==", lit(1))])
        ),
        [sel, t],
        query_id="q_seq",
    )
    plan.mark_output(seq, "q_seq")
    return plan, (s, t)


class TestComponents:
    def test_independent_sources_are_separate_components(self):
        plan, __ = multi_source_plan(num_sources=3)
        components = ShardPlanner().components(plan)
        assert len(components) == 3
        for component in components:
            assert len(component.entry_channel_ids) == 1
            assert len(component.query_ids) == 4
        all_queries = {q for c in components for q in c.query_ids}
        assert len(all_queries) == 12

    def test_queries_sharing_mop_share_component(self):
        plan, __ = multi_source_plan(num_sources=2, optimize=True)
        components = ShardPlanner().components(plan)
        by_query = {}
        for component in components:
            for query_id in component.query_ids:
                by_query[query_id] = component.index
        # After optimization all of a source's selections sit in one
        # predicate-index m-op — same component by the sharing rule.
        assert by_query["q0_0"] == by_query["q0_3"]
        assert by_query["q0_0"] != by_query["q1_0"]

    def test_entry_channel_connects_co_consumers(self):
        # Unoptimized: distinct m-ops reading the same source still form
        # one component (co-consumers of an entry channel).
        plan, __ = multi_source_plan(num_sources=1, optimize=False)
        components = ShardPlanner().components(plan)
        assert len(components) == 1

    def test_bridge_query_merges_components(self):
        plan, __ = bridged_plan()
        components = ShardPlanner().components(plan)
        assert len(components) == 1
        assert set(components[0].query_ids) == {"q_sel", "q_seq"}
        assert len(components[0].entry_channel_ids) == 2


class TestBalance:
    def _components(self, costs):
        return [
            ShardComponent(
                index=i, mops=[], query_ids=[], entry_channel_ids=frozenset(),
                cost=cost,
            )
            for i, cost in enumerate(costs)
        ]

    def test_lpt_spreads_cost(self):
        planner = ShardPlanner()
        costs = [8, 7, 6, 5]
        assignment = planner.balance(self._components(costs), 2)
        loads = [0.0, 0.0]
        for index, shard in enumerate(assignment):
            loads[shard] += costs[index]
        # LPT trace: 8→s0, 7→s1, 6→s1 (7<8), 5→s0 (8<13) — a perfect split.
        assert loads == [13, 13]
        # Heaviest component goes first, alone onto its shard.
        assert assignment[0] != assignment[1]

    def test_deterministic_tiebreak(self):
        planner = ShardPlanner()
        first = planner.balance(self._components([1, 1, 1, 1]), 2)
        second = planner.balance(self._components([1, 1, 1, 1]), 2)
        assert first == second

    def test_rejects_bad_shard_count(self):
        with pytest.raises(PlanError):
            ShardPlanner().balance([], 0)


class TestPartition:
    def test_subplans_validate_and_cover_queries(self):
        plan, __ = multi_source_plan(num_sources=3)
        shard_plan = ShardPlanner().partition(plan, 2)
        assert len(shard_plan.subplans) == 2
        total_mops = sum(len(sub.mops) for sub in shard_plan.subplans)
        assert total_mops == len(plan.mops)
        covered = {
            query_id
            for sub in shard_plan.subplans
            for __stream, query_ids in sub.sink_streams()
            for query_id in query_ids
        }
        assert covered == set(shard_plan.query_shard)
        for channel_id, shard in shard_plan.channel_shard.items():
            assert 0 <= shard < 2

    def test_single_component_collapses_to_one_shard(self):
        # A query set that is one connected component degenerates to n=1:
        # every m-op lands on one shard, the rest stay empty.
        plan, __ = bridged_plan()
        shard_plan = ShardPlanner().partition(plan, 4)
        assert shard_plan.effective_shards == 1
        populated = [sub for sub in shard_plan.subplans if sub.mops]
        assert len(populated) == 1
        assert len(populated[0].mops) == len(plan.mops)

    def test_oversized_component_is_flagged(self):
        # One heavy component (5 merged selection queries + sequences) next
        # to tiny ones: its cost exceeds total/n, which partition must
        # surface rather than silently producing a hot shard.
        schema = Schema.numbered(2)
        plan = QueryPlan()
        s = plan.add_source("S", schema)
        t = plan.add_source("T", schema)
        sel = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(1))), [s], query_id="big"
        )
        previous = sel
        for depth in range(4):
            previous = plan.add_operator(
                Sequence(
                    conjunction(
                        [DurationWithin(9), Comparison(right("a0"), ">", lit(-1))]
                    )
                ),
                [previous, t],
                query_id="big",
            )
        plan.mark_output(previous, "big")
        u = plan.add_source("U", schema)
        out = plan.add_operator(
            Selection(Comparison(attr("a0"), "==", lit(0))), [u], query_id="small"
        )
        plan.mark_output(out, "small")
        shard_plan = ShardPlanner().partition(plan, 2)
        assert shard_plan.oversized
        heavy = shard_plan.components[shard_plan.oversized[0]]
        assert "big" in heavy.query_ids
        assert heavy.cost > shard_plan.cost_target
        # The balance still assigns it somewhere — flagged, not rejected.
        assert 0 <= shard_plan.assignment[heavy.index] < 2

    def test_effective_shards_and_describe(self):
        plan, __ = multi_source_plan(num_sources=2)
        shard_plan = ShardPlanner().partition(plan, 4)
        assert shard_plan.effective_shards == 2
        text = shard_plan.describe()
        assert "component" in text

    def test_rejects_sink_on_source_stream(self):
        schema = Schema.numbered(1)
        plan = QueryPlan()
        s = plan.add_source("S", schema)
        plan.mark_output(s, "passthrough")
        with pytest.raises(PlanError, match="sink directly on"):
            ShardPlanner().partition(plan, 2)

    def test_empty_plan_partitions_to_empty_shards(self):
        shard_plan = ShardPlanner().partition(QueryPlan(), 2)
        assert shard_plan.components == []
        assert shard_plan.effective_shards == 0
