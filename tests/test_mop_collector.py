"""Unit tests for MOp basics and the OutputCollector encoding step."""

import pytest

from repro.core.mop import MOp, OpInstance, OutputCollector
from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a")


def selection(const):
    return Selection(Comparison(attr("a"), "==", lit(const)))


@pytest.fixture
def plan_pair():
    """A plan with two selections (one m-op) whose outputs share one channel."""
    from repro.mops.naive import NaiveMOp

    plan = QueryPlan()
    source = plan.add_source("S", SCHEMA)
    out1 = plan.add_operator(selection(1), [source], query_id="q1")
    out2 = plan.add_operator(selection(2), [source], query_id="q2")
    old = list(plan.mops)
    instances = [inst for mop in old for inst in mop.instances]
    plan.replace_mops(old, NaiveMOp(instances))
    plan.channelize([out1, out2])
    return plan, out1, out2


class TestOpInstance:
    def test_arity_check(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        with pytest.raises(PlanError, match="arity"):
            OpInstance(selection(1), [source, source], source)


class TestMOpStreamSets:
    def test_input_output_union(self, plan_pair):
        plan, out1, out2 = plan_pair
        merged = plan.mops[0]
        assert len(merged.input_streams) == 1  # both read the same stream
        assert merged.output_streams == [out1, out2]

    def test_empty_mop_rejected(self):
        with pytest.raises(PlanError):
            MOp([])


class TestOutputCollector:
    def test_merges_identical_across_streams(self, plan_pair):
        plan, out1, out2 = plan_pair
        collector = OutputCollector(plan, [out1, out2])
        tuple_ = StreamTuple(SCHEMA, (5,), 0)
        emitted = collector.emit([(out1, tuple_), (out2, tuple_)])
        assert len(emitted) == 1
        __, channel_tuple = emitted[0]
        assert channel_tuple.membership == 0b11

    def test_does_not_merge_same_stream_duplicates(self, plan_pair):
        plan, out1, __ = plan_pair
        collector = OutputCollector(plan, [out1])
        tuple_ = StreamTuple(SCHEMA, (5,), 0)
        emitted = collector.emit([(out1, tuple_), (out1, tuple_)])
        assert len(emitted) == 2  # multiset semantics preserved

    def test_different_content_not_merged(self, plan_pair):
        plan, out1, out2 = plan_pair
        collector = OutputCollector(plan, [out1, out2])
        emitted = collector.emit(
            [
                (out1, StreamTuple(SCHEMA, (5,), 0)),
                (out2, StreamTuple(SCHEMA, (6,), 0)),
            ]
        )
        assert len(emitted) == 2

    def test_empty_emission(self, plan_pair):
        plan, out1, __ = plan_pair
        collector = OutputCollector(plan, [out1])
        assert collector.emit([]) == []

    def test_emit_masked_disjoint_merge(self, plan_pair):
        plan, out1, out2 = plan_pair
        collector = OutputCollector(plan, [out1, out2])
        channel = plan.channel_of(out1)
        tuple_ = StreamTuple(SCHEMA, (5,), 0)
        emitted = collector.emit_masked(
            [(channel, 0b01, tuple_), (channel, 0b10, tuple_)]
        )
        assert len(emitted) == 1
        assert emitted[0][1].membership == 0b11

    def test_emit_masked_overlapping_not_merged(self, plan_pair):
        plan, out1, out2 = plan_pair
        collector = OutputCollector(plan, [out1, out2])
        channel = plan.channel_of(out1)
        tuple_ = StreamTuple(SCHEMA, (5,), 0)
        emitted = collector.emit_masked(
            [(channel, 0b01, tuple_), (channel, 0b01, tuple_)]
        )
        assert len(emitted) == 2

    def test_route(self, plan_pair):
        plan, out1, __ = plan_pair
        collector = OutputCollector(plan, [out1])
        channel, bit = collector.route(out1)
        assert channel is plan.channel_of(out1)
        assert bit == 1 << channel.position_of(out1)
