"""Unit tests for stream sources and the timestamp merge."""

import pytest

from repro.errors import ChannelError
from repro.streams.channel import Channel
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource, merge_sources
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a")


def tuples_at(schema, timestamps):
    return [StreamTuple(schema, (ts,), ts) for ts in timestamps]


class TestStreamSource:
    def test_defaults_to_full_mask(self, schema):
        streams = [StreamDef(f"S{i}", schema) for i in range(2)]
        channel = Channel(streams)
        source = StreamSource(channel, tuples_at(schema, [0]))
        __, channel_tuple = next(iter(source))
        assert channel_tuple.membership == channel.full_mask

    def test_member_subset(self, schema):
        streams = [StreamDef(f"S{i}", schema) for i in range(2)]
        channel = Channel(streams)
        source = StreamSource(channel, tuples_at(schema, [0]), member_streams=[streams[1]])
        __, channel_tuple = next(iter(source))
        assert channel_tuple.membership == 0b10

    def test_foreign_member_rejected(self, schema):
        channel = Channel.singleton(StreamDef("S", schema))
        foreign = StreamDef("X", schema)
        with pytest.raises(ChannelError):
            StreamSource(channel, [], member_streams=[foreign])


class TestMerge:
    def test_global_timestamp_order(self, schema):
        channel_a = Channel.singleton(StreamDef("A", schema))
        channel_b = Channel.singleton(StreamDef("B", schema))
        merged = merge_sources(
            [
                StreamSource(channel_a, tuples_at(schema, [0, 2, 4])),
                StreamSource(channel_b, tuples_at(schema, [1, 3, 5])),
            ]
        )
        assert [ct.ts for __, ct in merged] == [0, 1, 2, 3, 4, 5]

    def test_tie_break_stable_on_source_order(self, schema):
        channel_a = Channel.singleton(StreamDef("A", schema))
        channel_b = Channel.singleton(StreamDef("B", schema))
        merged = list(
            merge_sources(
                [
                    StreamSource(channel_a, tuples_at(schema, [1])),
                    StreamSource(channel_b, tuples_at(schema, [1])),
                ]
            )
        )
        assert merged[0][0] is channel_a
        assert merged[1][0] is channel_b

    def test_empty_sources(self, schema):
        channel = Channel.singleton(StreamDef("A", schema))
        assert list(merge_sources([StreamSource(channel, [])])) == []

    def test_single_source_passthrough(self, schema):
        channel = Channel.singleton(StreamDef("A", schema))
        merged = merge_sources([StreamSource(channel, tuples_at(schema, [3, 7]))])
        assert [ct.ts for __, ct in merged] == [3, 7]
