"""Unit tests for scalar expressions."""

import pytest

from repro.errors import ExpressionError
from repro.operators.expressions import (
    Arith,
    AttrRef,
    LAST,
    LEFT,
    Literal,
    RIGHT,
    Udf,
    attr,
    last,
    left,
    lit,
    right,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a", "b")


@pytest.fixture
def tuples(schema):
    return (
        StreamTuple(schema, (1, 2), 10),
        StreamTuple(schema, (3, 4), 20),
        StreamTuple(schema, (5, 6), 15),
    )


class TestLiteral:
    def test_compile(self, schema, tuples):
        assert Literal(42).compile(schema)(*tuples) == 42

    def test_no_references(self):
        assert Literal(1).references() == frozenset()

    def test_types(self, schema):
        assert Literal(1).result_type(schema) == "int"
        assert Literal(1.5).result_type(schema) == "float"
        assert Literal("x").result_type(schema) == "str"


class TestAttrRef:
    def test_left(self, schema, tuples):
        assert AttrRef(LEFT, "a").compile(schema, schema)(*tuples) == 1

    def test_right(self, schema, tuples):
        assert AttrRef(RIGHT, "b").compile(schema, schema)(*tuples) == 4

    def test_last(self, schema, tuples):
        assert AttrRef(LAST, "a").compile(schema, schema)(*tuples) == 5

    def test_last_defaults_to_right_schema(self, schema, tuples):
        # no explicit last schema: shaped like the right input
        compiled = AttrRef(LAST, "b").compile(schema, schema)
        assert compiled(*tuples) == 6

    def test_timestamp_access(self, schema, tuples):
        assert AttrRef(LEFT, "ts").compile(schema, schema)(*tuples) == 10
        assert AttrRef(RIGHT, "ts").compile(schema, schema)(*tuples) == 20
        assert AttrRef(LAST, "ts").compile(schema, schema)(*tuples) == 15

    def test_invalid_side(self):
        with pytest.raises(ExpressionError):
            AttrRef(9, "a")

    def test_missing_schema_for_side(self, schema):
        with pytest.raises(ExpressionError, match="no schema"):
            AttrRef(RIGHT, "a").compile(schema)

    def test_references(self):
        assert AttrRef(LEFT, "a").references() == frozenset({(LEFT, "a")})

    def test_shorthands(self):
        assert attr("x") == AttrRef(LEFT, "x")
        assert left("x") == AttrRef(LEFT, "x")
        assert right("x") == AttrRef(RIGHT, "x")
        assert last("x") == AttrRef(LAST, "x")
        assert lit(3) == Literal(3)


class TestArith:
    def test_operations(self, schema, tuples):
        l, r, x = tuples
        cases = {
            "+": 1 + 4,
            "-": 1 - 4,
            "*": 1 * 4,
            "/": 1 / 4,
            "%": 1 % 4,
        }
        for op, expected in cases.items():
            expression = Arith(AttrRef(LEFT, "a"), op, AttrRef(RIGHT, "b"))
            assert expression.compile(schema, schema)(l, r, x) == expected

    def test_unknown_operator(self):
        with pytest.raises(ExpressionError):
            Arith(Literal(1), "**", Literal(2))

    def test_operator_sugar(self, schema, tuples):
        expression = attr("a") + 1
        assert expression.compile(schema)(*tuples) == 2
        expression = attr("a") * attr("b")
        assert expression.compile(schema)(*tuples) == 2

    def test_division_is_float(self, schema):
        assert Arith(attr("a"), "/", lit(2)).result_type(schema) == "float"

    def test_references_union(self):
        expression = Arith(attr("a"), "+", right("b"))
        assert expression.references() == frozenset({(LEFT, "a"), (RIGHT, "b")})


class TestUdf:
    def test_registered_udf(self, schema, tuples):
        Udf.register("double", lambda v: v * 2)
        expression = Udf("double", (attr("a"),))
        assert expression.compile(schema)(*tuples) == 2

    def test_unregistered_udf(self, schema):
        expression = Udf("nope_missing", (attr("a"),))
        with pytest.raises(ExpressionError, match="not registered"):
            expression.compile(schema)

    def test_declared_type(self, schema):
        assert Udf("f", (), type="float").result_type(schema) == "float"


class TestStructuralEquality:
    def test_equal_expressions(self):
        assert (attr("a") + 1) == (attr("a") + 1)
        assert hash(attr("a") + 1) == hash(attr("a") + 1)

    def test_different_expressions(self):
        assert (attr("a") + 1) != (attr("a") + 2)
        assert attr("a") != right("a")
