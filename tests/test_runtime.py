"""Online lifecycle runtime: register/unregister mid-stream.

The load-bearing guarantees (ISSUE acceptance criteria):

- outputs for surviving queries are **byte-identical** to a from-scratch
  build-and-replay of the same plan (ordered comparison, not multisets);
- retained executors keep their operator state across migration
  (``state_size`` does not reset to 0);
- incremental re-optimization touches strictly fewer m-ops than full
  fixpoint sweeps on a ≥16-query churn workload.
"""

from __future__ import annotations

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.errors import LifecycleError
from repro.lang.compiler import compile_into
from repro.lang.parser import parse_query
from repro.runtime import QueryRuntime
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive

SCHEMA = Schema.numbered(2)

Q_SEQ1 = "FROM S WHERE a0 == 1 SEQ T MATCHING WITHIN 20 AND right.a1 == 6 KEEP"
Q_SEQ2 = "FROM S WHERE a0 == 1 SEQ T MATCHING WITHIN 4 AND right.a0 == 2"
Q_AGG = "FROM S AGG avg(a1) OVER 10 BY a0 AS avg_a1"
Q_SEL1 = "FROM S WHERE a0 == 2"
Q_SEL2 = "FROM S WHERE a0 == 0"


def events(count, start=0):
    """Deterministic interleaved S/T events (S even ts, T odd ts)."""
    out = []
    for ts in range(start, start + count):
        name = "S" if ts % 2 == 0 else "T"
        out.append((name, StreamTuple(SCHEMA, (ts % 3, ts % 7), ts)))
    return out


def reference_outputs(query_texts, event_list):
    """From-scratch build of the same plan + full replay; ordered outputs."""
    plan = QueryPlan()
    streams = {
        "S": plan.add_source("S", SCHEMA),
        "T": plan.add_source("T", SCHEMA),
    }
    for query_id, text in query_texts:
        compile_into(parse_query(text, query_id), plan, streams)
    Optimizer().optimize(plan)
    engine = StreamEngine(plan, capture_outputs=True)
    by_name = {}
    for name, tuple_ in event_list:
        by_name.setdefault(name, []).append(tuple_)
    sources = [
        StreamSource(plan.channel_of(streams[name]), tuples,
                     member_streams=[streams[name]])
        for name, tuples in by_name.items()
    ]
    engine.run(sources)
    return {
        query_id: [(t.ts, t.values) for t in tuples]
        for query_id, tuples in engine.captured.items()
    }


def runtime_outputs(runtime):
    return {
        query_id: [(t.ts, t.values) for t in tuples]
        for query_id, tuples in runtime.captured.items()
    }


def make_runtime(**kwargs):
    return QueryRuntime(
        {"S": SCHEMA, "T": SCHEMA}, capture_outputs=True, **kwargs
    )


class TestUnregisterEquivalence:
    def test_survivors_byte_identical_after_unregister(self):
        all_queries = [
            ("q1", Q_SEQ1), ("q2", Q_AGG), ("q3", Q_SEL1), ("q4", Q_SEQ2),
        ]
        stream = events(200)
        runtime = make_runtime()
        for query_id, text in all_queries:
            runtime.register(text, query_id=query_id)
        runtime.run(stream[:100])
        runtime.unregister("q3")
        runtime.unregister("q4")
        runtime.run(stream[100:])

        reference = reference_outputs(all_queries, stream)
        got = runtime_outputs(runtime)
        for survivor in ("q1", "q2"):
            assert got[survivor] == reference[survivor]

    def test_unregister_frees_state_and_gcs(self):
        runtime = make_runtime()
        runtime.register(Q_SEQ1, query_id="q1")
        runtime.register(Q_SEL1, query_id="q2")
        runtime.run(events(60))
        assert runtime.state_size > 0
        mops_before = len(runtime.plan.mops)
        removed = runtime.unregister("q1")
        assert removed, "the sequence pipeline should be garbage-collected"
        assert len(runtime.plan.mops) < mops_before
        assert runtime.state_size == 0
        migration = runtime.migration_log[-1]
        assert migration.dropped_executors >= 1
        # The surviving selection keeps producing.
        before = runtime.stats.outputs_by_query.get("q2", 0)
        runtime.run(events(30, start=60))
        assert runtime.stats.outputs_by_query["q2"] > before


class TestRegisterMidStream:
    def test_survivor_state_preserved_and_byte_identical(self):
        stream = events(200)
        runtime = make_runtime()
        runtime.register(Q_SEQ1, query_id="q1")
        runtime.run(stream[:100])
        state_before = runtime.state_size
        assert state_before > 0, "sequence must hold partial matches"

        # New query merges with q1's selection (sσ frontier); the stateful
        # sequence executor must ride through untouched.
        runtime.register(Q_SEL1, query_id="q2")
        assert runtime.state_size == state_before, (
            "retained executors must keep operator state across migration"
        )
        migration = runtime.migration_log[-1]
        assert migration.reused_executors >= 1
        assert migration.state_carried == state_before
        runtime.run(stream[100:])

        got = runtime_outputs(runtime)
        # q1 saw everything: byte-identical to a from-scratch q1-only replay.
        assert got["q1"] == reference_outputs([("q1", Q_SEQ1)], stream)["q1"]
        # q2 only saw the second half: byte-identical to a fresh q2-only
        # build replaying just those events.
        assert got["q2"] == reference_outputs(
            [("q2", Q_SEL1)], stream[100:]
        )["q2"]

    def test_aggregate_window_survives_registration(self):
        stream = events(160)
        runtime = make_runtime()
        runtime.register(Q_AGG, query_id="q1")
        runtime.run(stream[:80])
        assert runtime.state_size > 0
        runtime.register(Q_SEL2, query_id="q2")
        assert runtime.state_size > 0, "window state must not reset"
        runtime.run(stream[80:])
        got = runtime_outputs(runtime)
        assert got["q1"] == reference_outputs([("q1", Q_AGG)], stream)["q1"]

    def test_stateful_mop_not_merged_while_live(self):
        stream = events(120)
        runtime = make_runtime()
        runtime.register(Q_SEQ1, query_id="q1")
        runtime.run(stream[:60])
        assert runtime.state_size > 0
        seq_mops_before = [
            mop for mop in runtime.plan.mops
            if any(i.operator.symbol == ";" for i in mop.instances)
        ]
        # Identical definition: CSE/s; would merge it — but q1's sequence
        # holds live state, so the optimizer must keep them apart.
        runtime.register(Q_SEQ1, query_id="q3")
        seq_mops_after = [
            mop for mop in runtime.plan.mops
            if any(i.operator.symbol == ";" for i in mop.instances)
        ]
        assert len(seq_mops_after) == len(seq_mops_before) + 1
        runtime.run(stream[60:])
        got = runtime_outputs(runtime)
        assert got["q1"] == reference_outputs([("q1", Q_SEQ1)], stream)["q1"]
        assert got["q3"] == reference_outputs(
            [("q3", Q_SEQ1)], stream[60:]
        )["q3"]

    def test_reoptimize_merges_after_state_drains(self):
        runtime = make_runtime()
        runtime.register(Q_SEQ1, query_id="q1")
        runtime.run(events(60))
        assert runtime.state_size > 0
        runtime.register(Q_SEQ1, query_id="q3")  # kept apart: q1 is frozen
        mops_with_duplicates = len(runtime.plan.mops)
        # Let the windows drain: T events passing the a1 == 6 guard run the
        # store expiry (guard-failing events skip it), and every held S
        # instance is far outside the 20-tick window by ts 120.
        runtime.run(
            [("T", StreamTuple(SCHEMA, (0, 6), ts)) for ts in range(120, 160)]
        )
        assert runtime.state_size == 0
        report = runtime.reoptimize()
        assert report.total_applications > 0
        assert len(runtime.plan.mops) < mops_with_duplicates
        # Both queries now share one sink stream.
        shared = [
            query_ids
            for __, query_ids in runtime.plan.sink_streams()
            if {"q1", "q3"} <= set(query_ids)
        ]
        assert shared

    def test_drained_state_allows_merging(self):
        runtime = make_runtime()
        runtime.register(Q_SEQ1, query_id="q1")
        assert runtime.state_size == 0
        # No events yet: nothing is frozen, so an identical query is CSE'd
        # into the existing instance and they share one sink stream.
        runtime.register(Q_SEQ1, query_id="q2")
        shared = [
            query_ids
            for __, query_ids in runtime.plan.sink_streams()
            if set(query_ids) == {"q1", "q2"}
        ]
        assert shared, "identical idle queries should share one sink"


class TestIncrementalScaling:
    def test_incremental_touches_fewer_mops_on_churn(self):
        def serve(incremental):
            workload = ChurnWorkload(
                arrival_rate=0.03,
                mean_lifetime=400.0,
                horizon=1200,
                initial_queries=6,
                seed=5,
            )
            runtime = QueryRuntime(
                {"S": workload.schema, "T": workload.schema},
                incremental=incremental,
            )
            list(drive(runtime, workload.stream_events(), workload.schedule()))
            return workload, runtime

        workload, incremental_runtime = serve(True)
        assert workload.registrations() >= 16
        __, full_runtime = serve(False)
        incremental_mops = sum(
            r.mops_considered for r in incremental_runtime.reports
        )
        full_mops = sum(r.mops_considered for r in full_runtime.reports)
        assert incremental_mops < full_mops
        assert all(r.incremental for r in incremental_runtime.reports)

    def test_churn_schedule_deterministic(self):
        a = ChurnWorkload(arrival_rate=0.02, horizon=800, seed=9)
        b = ChurnWorkload(arrival_rate=0.02, horizon=800, seed=9)
        assert a.schedule() == b.schedule()
        assert repr(a.query(4)) == repr(b.query(4))


class TestLifecycleErrors:
    def test_duplicate_register_rejected(self):
        runtime = make_runtime()
        runtime.register(Q_SEL1, query_id="q1")
        with pytest.raises(LifecycleError):
            runtime.register(Q_SEL1, query_id="q1")

    def test_unregister_unknown_rejected(self):
        runtime = make_runtime()
        with pytest.raises(LifecycleError):
            runtime.unregister("ghost")

    def test_register_text_requires_query_id(self):
        runtime = make_runtime()
        with pytest.raises(LifecycleError):
            runtime.register(Q_SEL1)

    def test_unknown_source_rejected(self):
        runtime = QueryRuntime({"S": SCHEMA})
        with pytest.raises(LifecycleError):
            runtime.register("FROM X WHERE a0 == 1", query_id="q1")
        with pytest.raises(LifecycleError):
            runtime.process("X", StreamTuple(SCHEMA, (1, 2), 0))

    def test_duplicate_source_rejected(self):
        runtime = QueryRuntime({"S": SCHEMA})
        with pytest.raises(LifecycleError):
            runtime.add_source("S", SCHEMA)

    def test_plan_stays_valid_after_failed_register(self):
        runtime = make_runtime()
        runtime.register(Q_SEL1, query_id="q1")
        with pytest.raises(LifecycleError):
            runtime.register("FROM X WHERE a0 == 1", query_id="q2")
        runtime.plan.validate()
        runtime.run(events(10))
        assert "q2" not in runtime.active_queries
