"""Unit tests for the telemetry primitives in :mod:`repro.obs`.

Covers the storage layer (registry instruments, snapshot/merge semantics,
both export formats), the trace recorder (id minting, bounds, drain, tree
indexing, error-path recording), the structured event log (capture +
logging mirror), the per-m-op records (sampled-busy extrapolation, absorb,
query heat attribution) and the CLI logging setup.  Everything here is
process-local; the cross-process acceptance criteria live in
``test_obs_process.py``.
"""

import json
import logging

import pytest

from repro.engine.metrics import RunStats
from repro.obs import (
    EventLog,
    MetricsRegistry,
    MOpObserver,
    SpanRecorder,
    TelemetryError,
    configure_logging,
    merge_snapshots,
    publish_run_stats,
    span_tree,
    to_jsonl,
    to_prometheus,
)
from repro.obs.logsetup import JsonFormatter
from repro.shard.wire import (
    RUN,
    STATS,
    WireDecoder,
    WireEncoder,
    encode_command,
    frame_trace,
)


# -- registry instruments ------------------------------------------------------------


class TestMetricsRegistry:
    def test_counter_get_or_create_by_name_and_labels(self):
        registry = MetricsRegistry()
        a = registry.counter("hits", shard=0)
        a.inc(3)
        assert registry.counter("hits", shard=0) is a
        assert registry.counter("hits", shard=1) is not a
        assert registry.counter("hits", shard=0).value == 3

    def test_counter_rejects_negative_increment(self):
        counter = MetricsRegistry().counter("hits")
        with pytest.raises(TelemetryError):
            counter.inc(-1)

    def test_kind_clash_is_an_error(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TelemetryError, match="already registered"):
            registry.histogram("x")

    def test_gauge_set_and_set_max(self):
        gauge = MetricsRegistry().gauge("pressure")
        gauge.set(5)
        gauge.set_max(3)
        assert gauge.value == 5
        gauge.set_max(9)
        assert gauge.value == 9
        gauge.set(2)  # plain set is last-wins, not high-water
        assert gauge.value == 2

    def test_histogram_bucket_placement_and_overflow(self):
        histogram = MetricsRegistry().histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 100.0):
            histogram.observe(value)
        assert histogram.counts == [1, 2, 1]  # <=0.1, <=1.0, +Inf
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(100.0 + 0.05 + 1.0)

    def test_histogram_requires_bounds(self):
        with pytest.raises(TelemetryError):
            MetricsRegistry().histogram("lat", buckets=())


class TestSnapshots:
    def _registry(self, hits=2, peak=7):
        registry = MetricsRegistry()
        registry.counter("hits", shard=0).inc(hits)
        registry.gauge("peak", shard=0).set(peak)
        registry.histogram("lat", buckets=(0.1, 1.0), shard=0).observe(0.5)
        return registry

    def test_snapshot_is_plain_json_serializable(self):
        snapshot = self._registry().snapshot()
        json.dumps(snapshot)  # no exotic types
        names = [sample["name"] for sample in snapshot["samples"]]
        assert names == sorted(names)
        by_name = {s["name"]: s for s in snapshot["samples"]}
        assert by_name["hits"]["value"] == 2
        assert by_name["hits"]["labels"] == {"shard": "0"}
        assert by_name["lat"]["counts"] == [0, 1, 0]

    def test_merge_sums_counters_and_maxes_gauges(self):
        merged = merge_snapshots(
            [
                self._registry(hits=2, peak=7).snapshot(),
                self._registry(hits=5, peak=3).snapshot(),
            ]
        )
        by_name = {s["name"]: s for s in merged["samples"]}
        assert by_name["hits"]["value"] == 7
        assert by_name["peak"]["value"] == 7  # max, not sum
        assert by_name["lat"]["counts"] == [0, 2, 0]
        assert by_name["lat"]["count"] == 2

    def test_merge_rejects_mismatched_histogram_bounds(self):
        left = MetricsRegistry()
        left.histogram("lat", buckets=(0.1, 1.0)).observe(0.5)
        right = MetricsRegistry()
        right.histogram("lat", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(TelemetryError, match="bucket bounds differ"):
            merge_snapshots([left.snapshot(), right.snapshot()])

    def test_load_snapshot_rejects_unknown_kind(self):
        registry = MetricsRegistry()
        bad = {"samples": [{"name": "x", "kind": "summary", "labels": {}}]}
        with pytest.raises(TelemetryError, match="unknown sample kind"):
            registry.load_snapshot(bad)


class TestExports:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.counter("rumor_hits_total", shard=0, kind="sel").inc(3)
        registry.histogram("rumor_lat", buckets=(0.1, 1.0)).observe(0.5)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE rumor_hits_total counter" in text
        assert 'rumor_hits_total{kind="sel",shard="0"} 3' in text
        # Histogram buckets are cumulative and end at +Inf.
        assert 'rumor_lat_bucket{le="0.1"} 0' in text
        assert 'rumor_lat_bucket{le="1.0"} 1' in text
        assert 'rumor_lat_bucket{le="+Inf"} 1' in text
        assert "rumor_lat_sum 0.5" in text
        assert "rumor_lat_count 1" in text
        assert text.endswith("\n")

    def test_jsonl_stamps_capture_time(self):
        registry = MetricsRegistry()
        registry.counter("hits").inc(1)
        lines = to_jsonl(registry.snapshot(), at=123.5).strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert records == [
            {
                "at": 123.5,
                "kind": "counter",
                "labels": {},
                "name": "hits",
                "value": 1,
            }
        ]

    def test_empty_snapshot_renders_empty(self):
        assert to_prometheus({"samples": []}) == ""
        assert to_jsonl({"samples": []}) == ""

    def test_publish_run_stats_names_and_values(self):
        stats = RunStats(
            input_events=10,
            physical_input_events=8,
            output_events=4,
            physical_events=20,
            elapsed_seconds=1.5,
            outputs_by_query={"q1": 3, "q2": 1},
            peak_state=6,
            migrations=2,
        )
        registry = MetricsRegistry()
        publish_run_stats(registry, stats, shard=1)
        by_name = {
            (s["name"], tuple(sorted(s["labels"].items()))): s
            for s in registry.snapshot()["samples"]
        }
        shard = (("shard", "1"),)
        assert by_name[("rumor_input_events_total", shard)]["value"] == 10
        assert by_name[("rumor_physical_events_total", shard)]["value"] == 20
        assert by_name[("rumor_peak_state", shard)]["value"] == 6
        assert by_name[("rumor_migrations_total", shard)]["value"] == 2
        q1 = (("query", "q1"), ("shard", "1"))
        assert by_name[("rumor_query_outputs_total", q1)]["value"] == 3


# -- spans ---------------------------------------------------------------------------


class TestSpanRecorder:
    def test_ids_are_prefixed_and_unique(self):
        recorder = SpanRecorder("w1.0")
        ids = {recorder.new_span_id() for _ in range(5)}
        assert len(ids) == 5
        assert all(span_id.startswith("w1.0-") for span_id in ids)

    def test_span_context_records_on_exit(self):
        recorder = SpanRecorder("c")
        with recorder.span("rpc:stats", "t1", shard=2) as span:
            child_parent = span.span_id
        assert len(recorder.spans) == 1
        recorded = recorder.spans[0]
        assert recorded["name"] == "rpc:stats"
        assert recorded["trace_id"] == "t1"
        assert recorded["parent_id"] is None
        assert recorded["attrs"] == {"shard": 2}
        assert recorded["elapsed_seconds"] >= 0.0
        assert recorded["span_id"] == child_parent

    def test_span_error_path_still_records_flagged(self):
        recorder = SpanRecorder("c")
        with pytest.raises(RuntimeError):
            with recorder.span("rebalance", "t1"):
                raise RuntimeError("boom")
        assert recorder.spans[0]["attrs"]["error"] is True

    def test_bounded_buffer_counts_drops(self):
        recorder = SpanRecorder("c", max_spans=2)
        for _ in range(4):
            with recorder.span("x", "t1"):
                pass
        assert len(recorder.spans) == 2
        assert recorder.dropped == 2

    def test_drain_empties_and_add_adopts(self):
        worker = SpanRecorder("w0.0")
        with worker.span("data:apply", "t1", parent_id="c-1"):
            pass
        shipped = worker.drain()
        assert worker.spans == []
        coordinator = SpanRecorder("c")
        coordinator.add(shipped)
        assert [s["name"] for s in coordinator.spans] == ["data:apply"]

    def test_to_jsonl_round_trips(self):
        recorder = SpanRecorder("c")
        with recorder.span("serve", "t1"):
            pass
        lines = recorder.to_jsonl().strip().splitlines()
        assert json.loads(lines[0])["name"] == "serve"

    def test_span_tree_indexes_children_under_parents(self):
        spans = [
            {"span_id": "c-1", "parent_id": None, "name": "rebalance"},
            {"span_id": "c-2", "parent_id": "c-1", "name": "rpc:rebalance"},
            {"span_id": "w0.0-1", "parent_id": "c-2", "name": "apply"},
        ]
        tree = span_tree(spans)
        assert [s["name"] for s in tree[None]] == ["rebalance"]
        assert [s["name"] for s in tree["c-1"]] == ["rpc:rebalance"]
        assert [s["name"] for s in tree["c-2"]] == ["apply"]


class TestWireTracePropagation:
    def test_command_frames_carry_optional_trace(self):
        untraced = encode_command(STATS, 7, {"telemetry": True})
        traced = encode_command(
            STATS, 7, {"telemetry": True}, trace=("t1", "c-3")
        )
        # Byte-compatible prefix: decode ignores the trailing element.
        assert traced[:3] == untraced
        assert frame_trace(untraced) is None
        assert frame_trace(traced) == ("t1", "c-3")

    def test_run_frames_carry_optional_trace(self):
        from repro.streams.channel import Channel, ChannelTuple
        from repro.streams.schema import Schema
        from repro.streams.stream import StreamDef
        from repro.streams.tuples import StreamTuple

        schema = Schema.of_ints("a")
        channel = Channel.singleton(StreamDef("S", schema))
        batch = [ChannelTuple(StreamTuple(schema, (1,), 0), 1)]
        plain = WireEncoder().encode_run(channel, batch)
        traced = WireEncoder().encode_run(channel, batch, trace=("t1", "c-9"))
        assert traced[-1][:4] == plain[-1][:4]
        assert frame_trace(plain[-1]) is None
        assert frame_trace(traced[-1]) == ("t1", "c-9")
        # Schema frames are interning state, never traced.
        assert all(frame_trace(frame) is None for frame in traced[:-1])
        # Decoders accept the traced frame unchanged.
        decoder = WireDecoder([channel])
        decoded = None
        for frame in traced:
            result = decoder.decode(frame)
            if result is not None:
                decoded = result
        assert decoded[0] is channel
        assert decoded[1][0].tuple.values == (1,)

    def test_reply_and_stop_frames_are_never_traced(self):
        assert frame_trace(("stop",)) is None
        assert frame_trace((RUN, 1, 0, [])) is None


# -- events --------------------------------------------------------------------------


class TestEventLog:
    def test_emit_captures_structured_fields(self):
        log = EventLog()
        event = log.emit("rebalance", query="q1", source=0, target=1)
        assert event["kind"] == "rebalance"
        assert event["query"] == "q1"
        assert "at" in event
        assert log.by_kind("rebalance") == [event]
        assert log.by_kind("recovery") == []

    def test_emit_mirrors_to_logging(self, caplog):
        logger = logging.getLogger("repro.test.events")
        log = EventLog(logger)
        with caplog.at_level(logging.INFO, logger="repro.test.events"):
            log.emit("recovery", message="shard 0 DROPPED", shard=0)
        assert "shard 0 DROPPED shard=0" in caplog.text

    def test_bounded_buffer_counts_drops(self):
        log = EventLog(max_events=1)
        log.emit("a")
        log.emit("b")
        assert len(log.events) == 1
        assert log.dropped == 1

    def test_to_jsonl_round_trips(self):
        log = EventLog()
        log.emit("checkpoint_stored", shard=1, version=3)
        record = json.loads(log.to_jsonl().strip())
        assert record["kind"] == "checkpoint_stored"
        assert record["version"] == 3


# -- per-m-op records ----------------------------------------------------------------


class TestMOpObserver:
    def test_sampling_rate_validation(self):
        with pytest.raises(ValueError):
            MOpObserver(sample_every=0)
        with pytest.raises(ValueError):
            MOpObserver(state_sample_every=-1)

    def test_busy_seconds_extrapolates_from_samples(self):
        observer = MOpObserver()
        record = observer.record_for(3)
        record.batches = 64
        record.sampled_calls = 2
        record.sampled_seconds = 0.5
        # 0.5s over 2 sampled of 64 total calls -> 16s extrapolated.
        assert record.busy_seconds == pytest.approx(16.0)
        record.sampled_calls = 0
        assert record.busy_seconds == 0.0

    def test_absorb_merges_exported_stats(self):
        source = MOpObserver()
        record = source.record_for(5)
        record.kind = "selection"
        record.query_ids = ("q1",)
        record.batches = 4
        record.tuples_in = 100
        record.tuples_out = 40
        target = MOpObserver()
        target.absorb(source.mop_stats())
        target.absorb(source.mop_stats())
        merged = target.records[5]
        assert merged.batches == 8
        assert merged.tuples_in == 200
        assert merged.tuples_out == 80
        assert merged.kind == "selection"

    def test_query_heat_splits_shared_mops_evenly(self):
        observer = MOpObserver()
        shared = observer.record_for(1)
        shared.query_ids = ("q1", "q2")
        shared.batches = 1
        shared.sampled_calls = 1
        shared.sampled_seconds = 4.0
        solo = observer.record_for(2)
        solo.query_ids = ("q1",)
        solo.batches = 1
        solo.sampled_calls = 1
        solo.sampled_seconds = 1.0
        heat = observer.query_heat()
        assert heat["q1"] == pytest.approx(3.0)  # 4/2 + 1
        assert heat["q2"] == pytest.approx(2.0)

    def test_publish_emits_per_mop_series_and_peak_gauge(self):
        observer = MOpObserver()
        record = observer.record_for(7)
        record.kind = "join"
        record.tuples_in = 10
        record.tuples_out = 3
        observer.peak_state = 42
        registry = MetricsRegistry()
        observer.publish(registry, shard=0)
        text = to_prometheus(registry.snapshot())
        assert (
            'rumor_mop_tuples_out_total{mop_id="7",mop_kind="join",shard="0"} 3'
            in text
        )
        assert 'rumor_engine_peak_state{shard="0"} 42' in text


# -- logging setup -------------------------------------------------------------------


class TestConfigureLogging:
    def teardown_method(self):
        logger = logging.getLogger("repro")
        for handler in list(logger.handlers):
            if getattr(handler, "_repro_cli", False):
                logger.removeHandler(handler)

    def test_installs_one_handler_idempotently(self):
        logger = logging.getLogger("repro")
        configure_logging("debug")
        configure_logging("info")
        flagged = [
            handler
            for handler in logger.handlers
            if getattr(handler, "_repro_cli", False)
        ]
        assert len(flagged) == 1
        assert logger.level == logging.INFO

    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(ValueError, match="log level"):
            configure_logging("verbose")
        with pytest.raises(ValueError, match="log format"):
            configure_logging("info", format="xml")

    def test_json_formatter_emits_parseable_records(self):
        record = logging.LogRecord(
            "repro.shard.proc", logging.WARNING, __file__, 1,
            "shard %d DROPPED", (0,), None,
        )
        payload = json.loads(JsonFormatter().format(record))
        assert payload["level"] == "WARNING"
        assert payload["logger"] == "repro.shard.proc"
        assert payload["message"] == "shard 0 DROPPED"
        assert "at" in payload and "process" in payload
