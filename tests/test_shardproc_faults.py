"""Fault injection: crashes, dropped and duplicated command frames.

Cross-process state motion is exactly the kind of code that corrupts
silently, so the protocol is exercised under deterministic, seed-driven
faults:

- **worker crashes** (``WorkerFaults``: hard ``os._exit`` at the nth
  occurrence of a command kind, before or after applying it) — a crash
  during a rebalance import must roll the component back onto the donor
  *with its state intact*, and crash recovery must leave every registered
  query being served;
- **command-frame chaos** (``FrameFaults``: seeded drop/duplicate on the
  coordinator's send path) — retransmission plus sequence-number
  deduplication must keep the serve byte-identical to a fault-free one.
"""

import pytest

from repro.errors import LifecycleError
from repro.shard import (
    FrameFaults,
    ProcessShardedRuntime,
    ShardedRuntime,
    WorkerFaults,
    fork_available,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from repro.workloads.churn import ChurnWorkload, drive_sharded

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.numbered(2)
AGG = "FROM S AGG avg(a1) OVER 20 BY a0 AS m"
SEQ = "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 15 KEEP"
SEL = "FROM S WHERE a0 == 2"

FAST = {"command_timeout": 0.25, "max_retries": 60}


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


class TestCrashDuringRebalance:
    @pytest.mark.parametrize("when", ["before", "after"])
    def test_import_crash_rolls_back_to_donor_with_state(self, when):
        """Acceptance: a worker crash during migration leaves the runtime
        serving all registered queries, component live on the donor shard."""
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            worker_faults={1: WorkerFaults(crash_on=("rebalance-in", 1), when=when)},
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            proc.register(SEQ, query_id="seq", shard=0)
            proc.register(SEL, query_id="sel", shard=1)
            feed(proc, 0, 40)
            with pytest.raises(LifecycleError, match="crashed during rebalance"):
                proc.rebalance("agg", 1)
            # Rolled back: everything registered, component on the donor.
            assert sorted(proc.active_queries) == ["agg", "sel", "seq"]
            assert proc.shard_of("agg") == 0
            assert proc.shard_of("seq") == 0
            assert proc.crash_recoveries == 1
            feed(proc, 40, 90)
            captured = proc.captured

            # The donor shard never crashed: its queries must be
            # byte-identical to a serve where the rebalance never happened.
            control = ShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
            )
            control.register(AGG, query_id="agg", shard=0)
            control.register(SEQ, query_id="seq", shard=0)
            control.register(SEL, query_id="sel", shard=1)
            feed(control, 0, 90)
            assert captured["agg"] == control.captured["agg"]
            assert captured["seq"] == control.captured["seq"]
            # The crashed receiver's own query lost pre-crash state but is
            # re-registered and serving again.
            assert [t for t in captured["sel"] if t.ts >= 40]
        finally:
            proc.close()

    def test_export_crash_recovers_donor_in_place(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            worker_faults={0: WorkerFaults(crash_on=("rebalance-out", 1))},
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            proc.register(SEL, query_id="sel", shard=1)
            feed(proc, 0, 30)
            with pytest.raises(LifecycleError, match="crashed during export"):
                proc.rebalance("agg", 1)
            assert sorted(proc.active_queries) == ["agg", "sel"]
            assert proc.shard_of("agg") == 0
            assert proc.crash_recoveries == 1
            feed(proc, 30, 60)
            assert [t for t in proc.captured["agg"] if t.ts >= 30]
        finally:
            proc.close()


class TestCrashDuringLifecycle:
    def test_register_crash_recovers_and_retries(self):
        # Crash on the worker's second register: recovery re-registers the
        # first query, then the pending register is retried once.
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            worker_faults={0: WorkerFaults(crash_on=("register", 2))},
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            feed(proc, 0, 20)
            proc.register(SEL, query_id="sel", shard=0)  # crash + recover
            assert sorted(proc.active_queries) == ["agg", "sel"]
            assert proc.crash_recoveries == 1
            feed(proc, 20, 40)
            stats = proc.collect_stats()
            assert stats.outputs_by_query["agg"] > 0
            assert stats.outputs_by_query["sel"] > 0
        finally:
            proc.close()

    def test_stats_crash_recovers(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            worker_faults={0: WorkerFaults(crash_on=("stats", 1))},
            **FAST,
        )
        try:
            proc.register(SEL, query_id="sel", shard=0)
            feed(proc, 0, 10)
            stats = proc.collect_stats()  # first STATS crashes shard 0
            assert proc.crash_recoveries == 1
            assert stats.input_events == 10
            assert sorted(proc.active_queries) == ["sel"]
        finally:
            proc.close()


class TestCommandFrameChaos:
    def test_drop_and_dup_preserve_byte_equality(self):
        """Dropped + duplicated command frames: the serve stays identical
        to the fault-free in-process reference across a whole churn
        schedule with continuous rebalancing."""
        workload = ChurnWorkload(
            arrival_rate=0.05,
            mean_lifetime=150.0,
            horizon=300,
            initial_queries=4,
            seed=3,
        )
        sources = {"S": workload.schema, "T": workload.schema}
        reference = ShardedRuntime(sources, n_shards=2, capture_outputs=True)
        faults = FrameFaults(seed=11, drop_rate=0.2, dup_rate=0.2)
        chaotic = ProcessShardedRuntime(
            sources, n_shards=2, capture_outputs=True, faults=faults, **FAST
        )
        try:
            applied_reference = sum(
                1
                for __ in drive_sharded(
                    reference,
                    workload.stream_events(),
                    workload.schedule(),
                    rebalance_every=4,
                )
            )
            applied_chaotic = sum(
                1
                for __ in drive_sharded(
                    chaotic,
                    workload.stream_events(),
                    workload.schedule(),
                    rebalance_every=4,
                )
            )
            assert faults.dropped > 0, "chaos must actually drop frames"
            assert faults.duplicated > 0, "chaos must actually dup frames"
            assert applied_reference == applied_chaotic
            assert chaotic.crash_recoveries == 0
            stats = chaotic.collect_stats()
            assert stats.outputs_by_query == reference.stats.outputs_by_query
            assert stats.input_events == reference.stats.input_events
            assert chaotic.captured == reference.captured
        finally:
            chaotic.close()

    def test_fault_plan_is_deterministic(self):
        first = FrameFaults(seed=5, drop_rate=0.3, dup_rate=0.3)
        second = FrameFaults(seed=5, drop_rate=0.3, dup_rate=0.3)
        plan_a = [first.copies_of(("x",)) for __ in range(50)]
        plan_b = [second.copies_of(("x",)) for __ in range(50)]
        assert plan_a == plan_b
        assert first.dropped == second.dropped > 0
        assert first.duplicated == second.duplicated > 0

    def test_fault_rate_validation(self):
        with pytest.raises(LifecycleError):
            FrameFaults(drop_rate=0.8, dup_rate=0.5)
        with pytest.raises(LifecycleError):
            WorkerFaults(crash_on=("register", 1), when="sometimes")
