"""Unit tests for the benchmark harness and a micro figure-driver smoke run."""

import pytest

from repro.bench.harness import (
    BenchScale,
    Series,
    measure_cayuga,
    measure_rumor,
    normalize,
    render_table,
)
from repro.workloads.templates import (
    Workload1,
    WorkloadParameters,
    sources_from_events,
)


class TestSeries:
    def test_add(self):
        series = Series("x")
        series.add(1, 10.0)
        series.add(2, 20.0)
        assert series.xs == [1, 2]
        assert series.ys == [10.0, 20.0]

    def test_normalize_by_max(self):
        series = Series("x", [1, 2, 3], [5.0, 10.0, 2.5])
        normalized = normalize(series)
        assert normalized.ys == [0.5, 1.0, 0.25]

    def test_normalize_empty(self):
        assert normalize(Series("x")).ys == []

    def test_normalize_zero_peak(self):
        series = Series("x", [1], [0.0])
        assert normalize(series).ys == [0.0]


class TestRenderTable:
    def test_alignment_and_header(self):
        text = render_table("Title", ["a", "bb"], [[1, 2.5], [30, 4.0]])
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_empty_rows(self):
        text = render_table("T", ["col"], [])
        assert "col" in text


class TestScales:
    def test_small_vs_full(self):
        small, full = BenchScale.small(), BenchScale.full()
        assert full.events > small.events
        assert full.name == "full"


class TestMeasurement:
    def test_measure_rumor_repeats_merge(self):
        workload = Workload1(WorkloadParameters(num_queries=5))
        events = workload.events(300)
        plan, name_map = workload.rumor_plan()
        stats = measure_rumor(
            plan,
            lambda: sources_from_events(plan, name_map, events),
            repeats=2,
        )
        assert stats.input_events == 600  # two repeats merged

    def test_measure_cayuga(self):
        workload = Workload1(WorkloadParameters(num_queries=5))
        events = workload.events(300)
        stats = measure_cayuga(workload.automaton_engine, events)
        assert stats.input_events == 300


class TestFigureDrivers:
    """Micro-scale smoke runs: every driver produces a well-formed result."""

    @pytest.fixture
    def micro_scale(self):
        return BenchScale(name="micro", events=200, rounds=20, hybrid_seconds=10)

    @pytest.mark.parametrize("figure", ["9a", "9b", "9d", "10a", "10c", "10d"])
    def test_driver_produces_rows(self, figure, micro_scale):
        from repro.bench.figures import run_figure

        result = run_figure(figure, micro_scale)
        assert result.rows
        assert len(result.columns) == len(result.rows[0])
        assert figure.lstrip("fig")[0] in result.figure
        rendered = result.render()
        assert "Figure" in rendered

    def test_unknown_figure_rejected(self, micro_scale):
        from repro.bench.figures import run_figure

        with pytest.raises(SystemExit):
            run_figure("99z", micro_scale)

    def test_normalized_series_bounded(self, micro_scale):
        from repro.bench.figures import run_figure

        result = run_figure("9a", micro_scale)
        for series in result.series:
            assert all(0.0 <= y <= 1.0 for y in series.ys)
