"""Columnar data plane: end-to-end equivalence across every transport.

The zero-copy plane's acceptance contract: a serve over packed columns —
shared-memory ring records, ``crun`` queue frames, columnar-native
sources, vectorized ``process_columns`` — is **byte-identical** to the
same serve over the legacy pickle wire and to the in-process reference,
including under seeded worker crashes with durable recovery and
checkpoint/restore.  The wire-codec properties live in
``test_wire_edge.py``; this module proves the *integration*: routing,
shipping, decoding, fault accounting and schema retirement all composed.
"""

import pytest

from repro import RuntimeConfig, open_runtime
from repro.errors import LifecycleError, PlanError
from repro.shard import (
    ProcessShardedRuntime,
    ShardedEngine,
    ShardedRuntime,
    WorkerFaults,
    fork_available,
)
from repro.streams.columns import ColumnBatch
from repro.streams.schema import Schema
from repro.streams.sources import ColumnRunSource
from repro.streams.tuples import StreamTuple
from test_shard_engine import (
    interleaved_tuples,
    make_sources,
    partitionable_plan,
    single_engine_run,
)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.of_ints("a0", "a1")
FAST = {"command_timeout": 0.25, "max_retries": 60}

#: One query per stateful family, so columns flow into windowed sequence
#: state, shared aggregates and symmetric joins — not just selections.
QUERIES = [
    "FROM S WHERE a0 == 2",
    "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 25 KEEP",
    "FROM S AGG sum(a1) OVER 30 BY a0 AS m",
    "FROM S JOIN T ON left.a0 == right.a0 WITHIN 20",
]


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


def reference_serve(first, last):
    reference = ShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
    )
    for index, text in enumerate(QUERIES):
        reference.register(text, query_id=f"q{index}", shard=index % 2)
    feed(reference, first, last)
    return reference


def assert_identical(proc: ProcessShardedRuntime, reference: ShardedRuntime):
    stats = proc.collect_stats()
    assert stats.output_events > 0
    assert proc.captured == reference.captured
    assert stats.outputs_by_query == reference.stats.outputs_by_query
    assert stats.input_events == reference.stats.input_events
    assert stats.output_events == reference.stats.output_events
    assert sorted(proc.active_queries) == sorted(reference.active_queries)
    assert proc.state_size == reference.state_size


def columnar_sources(plan, handles, per_source):
    sources = []
    for stream, tuples in zip(handles, per_source):
        channel = plan.channel_of(stream)
        batch = ColumnBatch.from_rows(
            tuples[0].schema, tuples, channel.full_mask
        )
        assert batch is not None
        sources.append(ColumnRunSource(channel, batch))
    return sources


@needs_fork
class TestProcessRuntimePlaneEquivalence:
    @pytest.mark.parametrize("data_plane", ["columnar", "pickle"])
    def test_both_planes_match_the_inprocess_reference(self, data_plane):
        reference = reference_serve(0, 140)
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            data_plane=data_plane,
        )
        try:
            assert proc.data_plane == data_plane
            for index, text in enumerate(QUERIES):
                proc.register(text, query_id=f"q{index}", shard=index % 2)
            feed(proc, 0, 140)
            assert_identical(proc, reference)
        finally:
            proc.close()


@needs_fork
class TestColumnarUnderFaults:
    @pytest.mark.parametrize("checkpoint_every", [0, 8])
    def test_data_crash_recovery_stays_byte_identical(self, checkpoint_every):
        """A worker killed at its 35th *data delivery* — which on the
        columnar plane is a ring marker, not a pickle frame — restores
        from checkpoint+WAL and finishes byte-identical to the fault-free
        in-process serve."""
        reference = reference_serve(0, 140)
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            data_plane="columnar",
            durable=True,
            checkpoint_every=checkpoint_every,
            worker_faults={0: WorkerFaults(crash_on=("data", 35))},
            **FAST,
        )
        try:
            for index, text in enumerate(QUERIES):
                proc.register(text, query_id=f"q{index}", shard=index % 2)
            feed(proc, 0, 140)
            stats = proc.collect_stats()  # settles: forces crash detection
            assert stats is not None
            assert proc.crash_recoveries == 1, "the seeded crash must fire"
            assert not proc.recovery_log[0].state_lost
            assert_identical(proc, reference)
        finally:
            proc.close()


@needs_fork
class TestSchemaRetirement:
    def test_unregister_retires_interned_schemas(self):
        """The pin-leak fix, end to end: dropping the last query over a
        stream retires its interned schema from encoder, replay prefix and
        worker decoders; re-registering re-interns under a fresh token and
        the serve keeps working."""
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
        )
        try:
            proc.register(QUERIES[0], query_id="q0")
            feed(proc, 0, 40)
            proc.collect_stats()
            assert proc._encoder.interned_schemas == 1
            proc.unregister("q0")
            assert proc._encoder.interned_schemas == 0
            assert proc._encoder.schema_frames() == []
            # Re-registration re-interns (fresh token) and still serves.
            proc.register(QUERIES[0], query_id="q1")
            feed(proc, 40, 80)
            stats = proc.collect_stats()
            assert proc._encoder.interned_schemas == 1
            assert stats.outputs_by_query["q1"] > 0
        finally:
            proc.close()


class TestShardedEngineDataPlane:
    def test_inline_router_columnar_matches_single_engine(self):
        per_source = interleaved_tuples(3, 400)
        factory = lambda: partitionable_plan()
        rows = lambda plan, handles: make_sources(plan, handles, per_source)
        single = single_engine_run(factory, rows)
        for data_plane in ("columnar", "pickle"):
            plan, handles = factory()
            sharded = ShardedEngine(
                plan, 3, parallel=False, feed="router",
                capture_outputs=True, max_batch=64, data_plane=data_plane,
            )
            run = sharded.run(rows(plan, handles))
            assert run.mode == "inline"
            assert run.spawn_seconds == 0.0
            assert run.aggregate.outputs_by_query == single[0].outputs_by_query
            assert run.aggregate.input_events == single[0].input_events
            assert sharded.captured == single[1]

    @needs_fork
    @pytest.mark.parametrize("data_plane", ["columnar", "pickle"])
    def test_process_router_matches_single_engine(self, data_plane):
        per_source = interleaved_tuples(3, 200)
        factory = lambda: partitionable_plan()
        rows = lambda plan, handles: make_sources(plan, handles, per_source)
        single = single_engine_run(factory, rows)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, 3, parallel=True, feed="router",
            capture_outputs=True, data_plane=data_plane,
        )
        run = sharded.run(rows(plan, handles))
        assert run.mode == "process"
        assert run.spawn_seconds >= 0.0
        assert run.aggregate.outputs_by_query == single[0].outputs_by_query
        assert run.aggregate.input_events == single[0].input_events
        assert sharded.captured == single[1]


class TestColumnarNativeSources:
    def test_single_engine_columnar_source_matches_rows(self):
        """A columnar-born source (zero-copy ``iter_runs`` slices) drives
        the batched engine to the same outputs as its row twin."""
        per_source = interleaved_tuples(1, 300)
        factory = lambda: partitionable_plan(num_sources=1)
        rows = lambda plan, handles: make_sources(plan, handles, per_source)
        cols = lambda plan, handles: columnar_sources(
            plan, handles, per_source
        )
        from_rows = single_engine_run(factory, rows)
        from_cols = single_engine_run(factory, cols)
        assert from_cols[0].outputs_by_query == from_rows[0].outputs_by_query
        assert from_cols[0].input_events == from_rows[0].input_events
        assert from_cols[1] == from_rows[1]

    @pytest.mark.parametrize("feed_mode", ["local", "router"])
    def test_sharded_inline_columnar_sources_match_rows(self, feed_mode):
        per_source = interleaved_tuples(3, 300)
        factory = lambda: partitionable_plan()
        rows = lambda plan, handles: make_sources(plan, handles, per_source)
        cols = lambda plan, handles: columnar_sources(
            plan, handles, per_source
        )
        single = single_engine_run(factory, rows)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, 2, parallel=False, feed=feed_mode,
            capture_outputs=True, max_batch=64,
        )
        run = sharded.run(cols(plan, handles))
        assert run.aggregate.outputs_by_query == single[0].outputs_by_query
        assert run.aggregate.input_events == single[0].input_events
        assert sharded.captured == single[1]

    @needs_fork
    def test_sharded_process_columnar_sources_match_rows(self):
        per_source = interleaved_tuples(3, 200)
        factory = lambda: partitionable_plan()
        rows = lambda plan, handles: make_sources(plan, handles, per_source)
        cols = lambda plan, handles: columnar_sources(
            plan, handles, per_source
        )
        single = single_engine_run(factory, rows)
        plan, handles = factory()
        sharded = ShardedEngine(
            plan, 2, parallel=True, feed="router", capture_outputs=True
        )
        run = sharded.run(cols(plan, handles))
        assert run.mode == "process"
        assert run.aggregate.outputs_by_query == single[0].outputs_by_query
        assert sharded.captured == single[1]


class TestDataPlaneValidation:
    def test_engine_rejects_unknown_plane(self):
        plan, __ = partitionable_plan(num_sources=1, queries_per_source=1)
        with pytest.raises(PlanError, match="data_plane"):
            ShardedEngine(plan, 2, data_plane="arrow")

    def test_config_rejects_unknown_plane(self):
        config = RuntimeConfig(
            sources={"S": SCHEMA}, process=True, data_plane="arrow"
        )
        with pytest.raises(LifecycleError, match="data_plane"):
            config.validate()

    @needs_fork
    def test_runtime_rejects_unknown_plane(self):
        with pytest.raises(LifecycleError, match="data_plane"):
            with pytest.warns(DeprecationWarning):
                ProcessShardedRuntime({"S": SCHEMA}, data_plane="arrow")

    @needs_fork
    def test_factory_forwards_and_journal_pins_the_plane(self, tmp_path):
        """``open_runtime`` forwards the knob, the coordinator journals
        it, and a resumed coordinator inherits the journaled plane."""
        journal = str(tmp_path / "journal")
        runtime = open_runtime(
            RuntimeConfig(
                sources={"S": SCHEMA, "T": SCHEMA},
                process=True,
                capture_outputs=True,
                data_plane="pickle",
                journal=journal,
            )
        )
        try:
            assert runtime.data_plane == "pickle"
            runtime.register(QUERIES[0], query_id="q0")
            feed(runtime, 0, 20)
            runtime.collect_stats()
        finally:
            runtime.close()
        resumed = open_runtime(
            RuntimeConfig(process=True, journal=journal, resume=True)
        )
        try:
            assert resumed.data_plane == "pickle"
        finally:
            resumed.close()
