"""Unit tests for predicates and the rule-facing analyses."""

import pytest

from repro.errors import ExpressionError
from repro.operators.expressions import AttrRef, LEFT, RIGHT, attr, left, lit, right
from repro.operators.predicates import (
    And,
    Comparison,
    DurationWithin,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    as_constant_equality,
    as_cross_equality,
    as_duration_bound,
    conjunction,
    conjuncts,
    map_attr_refs,
    split_binary_predicate,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a", "b")


@pytest.fixture
def pair(schema):
    return (StreamTuple(schema, (1, 2), 10), StreamTuple(schema, (1, 4), 20))


class TestCompile:
    def test_true_false(self, schema, pair):
        l, r = pair
        assert TruePredicate().compile(schema)(l, r, None)
        assert not FalsePredicate().compile(schema)(l, r, None)

    def test_comparison_ops(self, schema, pair):
        l, r = pair
        cases = [("==", False), ("!=", True), ("<", True), ("<=", True), (">", False), (">=", False)]
        for op, expected in cases:
            predicate = Comparison(attr("b"), op, right("b"))
            assert predicate.compile(schema, schema)(l, r, None) is expected

    def test_unknown_comparison_op(self):
        with pytest.raises(ExpressionError):
            Comparison(lit(1), "~", lit(2))

    def test_and_or_not(self, schema, pair):
        l, r = pair
        true = TruePredicate()
        false = FalsePredicate()
        assert And((true, true)).compile(schema)(l, r, None)
        assert not And((true, false)).compile(schema)(l, r, None)
        assert Or((false, true)).compile(schema)(l, r, None)
        assert not Or((false, false)).compile(schema)(l, r, None)
        assert Not(false).compile(schema)(l, r, None)

    def test_duration_within(self, schema):
        predicate = DurationWithin(5).compile(schema, schema)
        older = StreamTuple(schema, (0, 0), 10)
        assert predicate(older, StreamTuple(schema, (0, 0), 15), None)
        assert not predicate(older, StreamTuple(schema, (0, 0), 16), None)
        # events strictly before the instance are excluded
        assert not predicate(older, StreamTuple(schema, (0, 0), 9), None)

    def test_duration_negative_window_rejected(self):
        with pytest.raises(ExpressionError):
            DurationWithin(-1)

    def test_predicate_sugar(self, schema, pair):
        l, r = pair
        combined = Comparison(attr("a"), "==", lit(1)) & Comparison(attr("b"), "==", lit(2))
        assert combined.compile(schema)(l, None, None)
        either = Comparison(attr("a"), "==", lit(9)) | Comparison(attr("b"), "==", lit(2))
        assert either.compile(schema)(l, None, None)
        negated = ~Comparison(attr("a"), "==", lit(9))
        assert negated.compile(schema)(l, None, None)


class TestConjunction:
    def test_empty_is_true(self):
        assert isinstance(conjunction([]), TruePredicate)

    def test_singleton_passthrough(self):
        predicate = Comparison(attr("a"), "==", lit(1))
        assert conjunction([predicate]) is predicate

    def test_flattens_nested(self):
        p1 = Comparison(attr("a"), "==", lit(1))
        p2 = Comparison(attr("b"), "==", lit(2))
        p3 = Comparison(attr("a"), ">", lit(0))
        nested = conjunction([And((p1, p2)), p3])
        assert conjuncts(nested) == [p1, p2, p3]

    def test_drops_true(self):
        predicate = Comparison(attr("a"), "==", lit(1))
        assert conjunction([TruePredicate(), predicate]) is predicate

    def test_conjuncts_of_true_is_empty(self):
        assert conjuncts(TruePredicate()) == []


class TestAnalyses:
    def test_constant_equality_both_orders(self):
        forward = Comparison(right("a"), "==", lit(7))
        backward = Comparison(lit(7), "==", right("a"))
        assert as_constant_equality(forward) == (RIGHT, "a", 7)
        assert as_constant_equality(backward) == (RIGHT, "a", 7)

    def test_constant_equality_rejects_non_equality(self):
        assert as_constant_equality(Comparison(right("a"), "<", lit(7))) is None

    def test_constant_equality_rejects_attr_pair(self):
        assert as_constant_equality(Comparison(left("a"), "==", right("a"))) is None

    def test_cross_equality_both_orders(self):
        assert as_cross_equality(Comparison(left("a"), "==", right("b"))) == ("a", "b")
        assert as_cross_equality(Comparison(right("b"), "==", left("a"))) == ("a", "b")

    def test_cross_equality_rejects_same_side(self):
        assert as_cross_equality(Comparison(left("a"), "==", left("b"))) is None

    def test_duration_bound(self):
        assert as_duration_bound(DurationWithin(10)) == 10
        assert as_duration_bound(TruePredicate()) is None

    def test_split_binary_predicate(self):
        predicate = conjunction(
            [
                DurationWithin(50),
                Comparison(left("a"), "==", right("a")),
                Comparison(right("b"), "==", lit(3)),
                Comparison(right("b"), ">", left("b")),
            ]
        )
        window, cross, constants, residual = split_binary_predicate(predicate)
        assert window == 50
        assert cross == ("a", "a")
        assert constants == [("b", 3)]
        assert len(residual) == 1

    def test_split_takes_tightest_window(self):
        predicate = conjunction([DurationWithin(50), DurationWithin(10)])
        window, __, __, __ = split_binary_predicate(predicate)
        assert window == 10


class TestMapAttrRefs:
    def test_rewrites_leaves(self):
        predicate = conjunction(
            [
                Comparison(left("a"), "==", right("a")),
                Or((Comparison(left("b"), ">", lit(1)), Not(TruePredicate()))),
            ]
        )

        def bump(ref: AttrRef):
            return AttrRef(ref.side, f"x_{ref.name}")

        mapped = map_attr_refs(predicate, bump)
        names = {name for __, name in mapped.references()}
        assert names == {"x_a", "x_b"}

    def test_duration_unchanged(self):
        predicate = DurationWithin(5)
        assert map_attr_refs(predicate, lambda ref: ref) == predicate
