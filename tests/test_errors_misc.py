"""Tests for the error hierarchy and assorted small behaviours."""

import pytest

from repro.errors import (
    AutomatonError,
    ChannelError,
    ExpressionError,
    OperatorError,
    ParseError,
    PlanError,
    QueryLanguageError,
    RuleError,
    RumorError,
    SchemaError,
    WorkloadError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            SchemaError,
            ChannelError,
            PlanError,
            RuleError,
            OperatorError,
            ExpressionError,
            QueryLanguageError,
            ParseError,
            AutomatonError,
            WorkloadError,
        ],
    )
    def test_all_derive_from_rumor_error(self, error_type):
        instance = (
            error_type("boom") if error_type is not ParseError else ParseError("boom")
        )
        assert isinstance(instance, RumorError)

    def test_expression_error_is_operator_error(self):
        assert issubclass(ExpressionError, OperatorError)

    def test_parse_error_is_language_error(self):
        assert issubclass(ParseError, QueryLanguageError)


class TestParseErrorContext:
    def test_position_snippet(self):
        error = ParseError("bad token", position=10, text="FROM S WHERE $$$ == 1")
        assert "position 10" in str(error)
        assert error.position == 10

    def test_without_position(self):
        error = ParseError("generic")
        assert str(error) == "generic"
        assert error.position == -1

    def test_catchable_as_base(self):
        with pytest.raises(RumorError):
            raise ParseError("x", 0, "y")


class TestSharedWindowHelpers:
    def test_strip_duration(self):
        from repro.mops.shared_window_sequence import strip_duration
        from repro.operators.expressions import left, right
        from repro.operators.predicates import (
            Comparison,
            DurationWithin,
            conjunction,
        )

        predicate = conjunction(
            [DurationWithin(7), Comparison(left("a"), "==", right("a"))]
        )
        stripped, window = strip_duration(predicate)
        assert window == 7
        assert "DUR" not in repr(stripped)

    def test_strip_duration_none(self):
        from repro.mops.shared_window_sequence import strip_duration
        from repro.operators.predicates import TruePredicate

        stripped, window = strip_duration(TruePredicate())
        assert window is None

    def test_window_free_definition_rejects_consuming_sequence(self):
        from repro.mops.shared_window_sequence import window_free_definition
        from repro.operators.predicates import TruePredicate
        from repro.operators.sequence import Sequence

        assert window_free_definition(Sequence(TruePredicate())) is None
        assert (
            window_free_definition(Sequence(TruePredicate(), consume_on_match=False))
            is not None
        )

    def test_window_free_definition_iterate(self):
        from repro.mops.shared_window_sequence import window_free_definition
        from repro.operators.iterate import Iterate
        from repro.operators.predicates import DurationWithin, TruePredicate

        first = Iterate(DurationWithin(5), TruePredicate())
        second = Iterate(DurationWithin(500), TruePredicate())
        assert window_free_definition(first) == window_free_definition(second)

    def test_effective_window(self):
        from repro.mops.shared_window_sequence import effective_window
        from repro.operators.predicates import DurationWithin, TruePredicate
        from repro.operators.sequence import Sequence

        assert effective_window(Sequence(DurationWithin(9))) == 9
        assert effective_window(Sequence(TruePredicate())) is None


class TestNaiveDecode:
    """The naive m-op's decoding step on multi-stream channels (§3.1)."""

    def test_only_member_instances_fire(self):
        from repro.core.optimizer import Optimizer
        from repro.core.plan import QueryPlan
        from repro.core.rules import CseRule  # no-op here; keep plan naive
        from repro.engine.executor import StreamEngine
        from repro.operators.expressions import attr, lit
        from repro.operators.predicates import Comparison
        from repro.operators.select import Selection
        from repro.streams.channel import ChannelTuple
        from repro.streams.schema import Schema
        from repro.streams.tuples import StreamTuple

        schema = Schema.of_ints("a")
        plan = QueryPlan()
        s1 = plan.add_source("S1", schema, sharable_label="s")
        s2 = plan.add_source("S2", schema, sharable_label="s")
        channel = plan.channelize([s1, s2])
        # different predicates: stays a pair of naive m-ops on one channel
        out1 = plan.add_operator(
            Selection(Comparison(attr("a"), ">", lit(0))), [s1], query_id="q1"
        )
        out2 = plan.add_operator(
            Selection(Comparison(attr("a"), ">", lit(0))), [s2], query_id="q2"
        )
        plan.mark_output(out1, "q1")
        plan.mark_output(out2, "q2")
        engine = StreamEngine(plan, capture_outputs=True)
        # tuple belongs only to S2: q1 must not fire
        engine.process(channel, ChannelTuple(StreamTuple(schema, (5,), 0), 0b10))
        assert "q1" not in engine.captured
        assert len(engine.captured["q2"]) == 1

    def test_binary_instance_both_inputs_same_channel(self):
        from repro.engine.executor import StreamEngine
        from repro.core.plan import QueryPlan
        from repro.operators.predicates import TruePredicate
        from repro.operators.sequence import Sequence
        from repro.streams.channel import ChannelTuple
        from repro.streams.schema import Schema
        from repro.streams.tuples import StreamTuple

        schema = Schema.of_ints("a")
        plan = QueryPlan()
        s1 = plan.add_source("S1", schema, sharable_label="s")
        s2 = plan.add_source("S2", schema, sharable_label="s")
        channel = plan.channelize([s1, s2])
        out = plan.add_operator(
            Sequence(TruePredicate()), [s1, s2], query_id="q"
        )
        plan.mark_output(out, "q")
        engine = StreamEngine(plan, capture_outputs=True)
        # a tuple of S1 opens an instance; a later S2 tuple matches it
        engine.process(channel, ChannelTuple(StreamTuple(schema, (1,), 0), 0b01))
        engine.process(channel, ChannelTuple(StreamTuple(schema, (2,), 1), 0b10))
        assert len(engine.captured["q"]) == 1
        assert engine.captured["q"][0].values == (1, 2)
