"""Unit tests for σ, π, windows, and the operator base protocol."""

import pytest

from repro.errors import OperatorError
from repro.operators.base import Operator
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.operators.window import RowWindow, TimeWindow
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple


@pytest.fixture
def schema():
    return Schema.of_ints("a", "b")


class TestTimeWindow:
    def test_admits(self):
        window = TimeWindow(5)
        assert window.admits(10, 5)
        assert window.admits(10, 10)
        assert not window.admits(10, 4)
        assert not window.admits(10, 11)  # future tuples excluded

    def test_expiry_threshold(self):
        assert TimeWindow(5).expiry_threshold(12) == 7

    def test_negative_length_rejected(self):
        with pytest.raises(OperatorError):
            TimeWindow(-1)

    def test_row_window_validation(self):
        with pytest.raises(OperatorError):
            RowWindow(0)
        assert RowWindow(5).count == 5


class TestSelection:
    def test_pass_and_filter(self, schema):
        operator = Selection(Comparison(attr("a"), "==", lit(1)))
        executor = operator.executor([schema])
        hit = StreamTuple(schema, (1, 2), 0)
        miss = StreamTuple(schema, (2, 2), 0)
        assert executor.process(0, hit) == [hit]
        assert executor.process(0, miss) == []

    def test_matches_helper(self, schema):
        operator = Selection(Comparison(attr("a"), ">", lit(0)))
        executor = operator.executor([schema])
        assert executor.matches(StreamTuple(schema, (1, 0), 0))
        assert not executor.matches(StreamTuple(schema, (0, 0), 0))

    def test_output_schema_identity(self, schema):
        operator = Selection(Comparison(attr("a"), "==", lit(1)))
        assert operator.output_schema([schema]) == schema

    def test_is_selection_flag(self, schema):
        assert Selection(Comparison(attr("a"), "==", lit(1))).is_selection
        assert not Projection.keep(["a"]).is_selection

    def test_definition_equality(self):
        p = Comparison(attr("a"), "==", lit(1))
        assert Selection(p) == Selection(p)
        assert Selection(p) != Selection(Comparison(attr("a"), "==", lit(2)))

    def test_arity_validation(self, schema):
        with pytest.raises(OperatorError):
            Selection(Comparison(attr("a"), "==", lit(1))).executor([schema, schema])


class TestProjection:
    def test_keep(self, schema):
        executor = Projection.keep(["b"]).executor([schema])
        out = executor.process(0, StreamTuple(schema, (1, 2), 5))
        assert out[0].values == (2,)
        assert out[0].ts == 5

    def test_computed_attribute(self, schema):
        operator = Projection([("total", attr("a") + attr("b")), ("a", attr("a"))])
        executor = operator.executor([schema])
        out = executor.process(0, StreamTuple(schema, (1, 2), 0))
        assert out[0].as_dict() == {"total": 3, "a": 1}

    def test_output_schema_types(self, schema):
        operator = Projection([("ratio", attr("a") / attr("b"))])
        assert operator.output_schema([schema]).type_of("ratio") == "float"

    def test_empty_rejected(self):
        with pytest.raises(OperatorError):
            Projection([])

    def test_duplicate_output_rejected(self):
        with pytest.raises(OperatorError):
            Projection([("x", attr("a")), ("x", attr("b"))])


class TestOperatorBase:
    def test_definition_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Operator().definition()
