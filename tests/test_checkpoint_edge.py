"""Checkpoint scheduling edge cases.

The cases ISSUE 5 names as the dangerous ones:

- a checkpoint round **racing a cross-process rebalance**: the donor's
  snapshot (queued before the export) must include the moving component,
  the receiver's (queued before the import) must not — and recovery of
  either side afterwards must stitch checkpoint + write-ahead-log back
  into a byte-identical serve;
- a worker **crashing during the snapshot reply** (applied, never acked):
  the round aborts for that shard, the previous version is retained, the
  write-ahead log is *not* truncated, and the next round proceeds;
- **empty-component checkpoints**: a worker with no queries snapshots an
  empty manifest, restores from it, and serves registrations afterwards;
- chaos on the checkpoint frames themselves (dropped/duplicated commands)
  — collection retransmits and deduplicates like every other command.
"""

import os
import signal

import pytest

from repro.errors import CheckpointError, LifecycleError
from repro.shard import (
    FrameFaults,
    ProcessShardedRuntime,
    ShardedRuntime,
    WorkerFaults,
    fork_available,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.of_ints("a0", "a1")
AGG = "FROM S AGG avg(a1) OVER 20 BY a0 AS m"
SEQ = "FROM (FROM S WHERE a0 == 1) SEQ T MATCHING WITHIN 15 KEEP"
SEL = "FROM S WHERE a0 == 2"

FAST = {"command_timeout": 0.25, "max_retries": 60}


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


def kill_worker(proc: ProcessShardedRuntime, shard: int) -> None:
    os.kill(proc._workers[shard].process.pid, signal.SIGKILL)


def control_runtime(placements, first, last):
    control = ShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
    )
    for text, query_id, shard in placements:
        control.register(text, query_id=query_id, shard=shard)
    feed(control, first, last)
    return control


class TestCheckpointRacingRebalance:
    def _race(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            **FAST,
        )
        proc.register(AGG, query_id="agg", shard=0)
        proc.register(SEL, query_id="sel", shard=1)
        feed(proc, 0, 40)
        version = proc.checkpoint(wait=False)  # snapshots in flight...
        moved = proc.rebalance("agg", 1)  # ...racing the component move
        proc.collect_checkpoints()
        assert moved == ["agg"]
        assert version == 1
        return proc

    def test_donor_and_receiver_versions_disagree_about_the_mover(self):
        proc = self._race()
        try:
            donor = proc.store.latest(0)
            receiver = proc.store.latest(1)
            assert donor.version == receiver.version == 1
            # Queue order is the cut: the donor snapshotted before its
            # export, the receiver before its import.
            assert any("agg" in c.query_ids for c in donor.components)
            assert not any("agg" in c.query_ids for c in receiver.components)
        finally:
            proc.close()

    def test_receiver_crash_replays_the_import(self):
        proc = self._race()
        try:
            feed(proc, 40, 80)
            kill_worker(proc, 1)
            proc.collect_stats()  # detection + recovery
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            # Restored from the pre-import cut, the import entry replayed.
            assert report.queries_restored == ["sel"]
            assert report.lifecycle_replayed >= 1
            feed(proc, 80, 120)
            control = control_runtime(
                [(AGG, "agg", 0), (SEL, "sel", 1)], 0, 120
            )
            assert proc.captured == control.captured
            stats = proc.collect_stats()
            assert stats.outputs_by_query == control.stats.outputs_by_query
        finally:
            proc.close()

    def test_donor_crash_replays_the_export(self):
        proc = self._race()
        try:
            feed(proc, 40, 80)
            kill_worker(proc, 0)
            proc.collect_stats()
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            # The donor's checkpoint still holds agg; the replayed export
            # removes it again (the live copy is on shard 1).
            assert report.queries_restored == ["agg"]
            assert proc.shard_of("agg") == 1
            feed(proc, 80, 120)
            control = control_runtime(
                [(AGG, "agg", 0), (SEL, "sel", 1)], 0, 120
            )
            assert proc.captured == control.captured
        finally:
            proc.close()


class TestCrashDuringSnapshot:
    @pytest.mark.parametrize("when", ["before", "after"])
    def test_snapshot_crash_aborts_round_and_recovers(self, when):
        """``after`` is the named ISSUE case: the snapshot was built but the
        reply never left — the coordinator must treat the round as lost for
        that shard and keep the previous version."""
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            worker_faults={0: WorkerFaults(crash_on=("checkpoint", 2), when=when)},
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            proc.register(SEL, query_id="sel", shard=1)
            feed(proc, 0, 30)
            first = proc.checkpoint()  # survives: the fault arms on #2
            assert proc.store.latest_version(0) == first
            wal_before = proc.wal_span(0)
            feed(proc, 30, 60)
            proc.checkpoint()  # shard 0 dies mid-snapshot
            assert proc.crash_recoveries == 1
            assert proc.checkpoint_failures == 1
            # Shard 0 keeps v1; shard 1 completed v2; shard 0's log was not
            # truncated past its last *complete* cut.
            assert proc.store.latest_version(0) == first
            assert proc.store.latest_version(1) == 2
            assert proc.wal_span(0)[0] == wal_before[0]
            report = proc.recovery_log[0]
            assert report.checkpoint_version == first
            assert not report.state_lost
            feed(proc, 60, 100)
            # Disarmed faults: the next round includes the respawned worker.
            third = proc.checkpoint()
            assert proc.store.latest_version(0) == third
            control = control_runtime(
                [(AGG, "agg", 0), (SEL, "sel", 1)], 0, 100
            )
            assert proc.captured == control.captured
            stats = proc.collect_stats()
            assert stats.outputs_by_query == control.stats.outputs_by_query
        finally:
            proc.close()


class TestEmptyComponentCheckpoints:
    def test_empty_worker_checkpoints_and_restores(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)  # shard 1 stays empty
            feed(proc, 0, 30)
            proc.checkpoint()
            empty = proc.store.latest(1)
            assert empty.components == ()
            assert empty.query_ids == []
            assert empty.cursor == {}  # nothing routed to an empty shard
            kill_worker(proc, 1)
            proc.collect_stats()
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            assert report.checkpoint_version == empty.version
            assert report.queries_restored == []
            assert not report.state_lost
            # The restored-empty worker serves fresh registrations.
            proc.register(SEL, query_id="sel", shard=1)
            feed(proc, 30, 70)
            control = control_runtime([(AGG, "agg", 0)], 0, 70)
            control.register(SEL, query_id="sel", shard=1)
            feed(control, 30, 70)
            assert proc.captured["sel"] == control.captured["sel"]
        finally:
            proc.close()


class TestCheckpointProtocol:
    def test_checkpoint_requires_durability(self):
        proc = ProcessShardedRuntime({"S": SCHEMA}, n_shards=1, **FAST)
        try:
            with pytest.raises(CheckpointError, match="durable"):
                proc.checkpoint()
            with pytest.raises(CheckpointError, match="write-ahead log"):
                proc.wal_span(0)
        finally:
            proc.close()

    def test_checkpoint_completion_truncates_the_wal(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            feed(proc, 0, 40)
            start, end = proc.wal_span(0)
            assert start == 0 and end > 0
            proc.checkpoint()
            assert proc.wal_span(0) == (end, end)
            assert proc.checkpoints_stored == 2
        finally:
            proc.close()

    def test_checkpoint_rounds_survive_command_chaos(self):
        """Checkpoint frames ship on the reliable path (their position is
        the cut), but every *other* command around them is dropped and
        duplicated — rounds must still complete with consistent cursors and
        the serve must stay byte-identical."""
        faults = FrameFaults(seed=13, drop_rate=0.25, dup_rate=0.25)
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=5,
            faults=faults,
            **FAST,
        )
        try:
            control = ShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
            )
            for runtime in (proc, control):
                runtime.register(AGG, query_id="agg", shard=0)
                runtime.register(SEQ, query_id="seq", shard=1)
            # Interleave lifecycle churn with the feed so chaos has plenty
            # of droppable commands while snapshot rounds are in flight.
            for step in range(5):
                first = step * 20
                feed(proc, first, first + 20)
                feed(control, first, first + 20)
                for runtime in (proc, control):
                    runtime.register(
                        f"FROM S WHERE a0 == {step % 3}",
                        query_id=f"extra{step}",
                        shard=step % 2,
                    )
                    if step:
                        runtime.unregister(f"extra{step - 1}")
            proc.collect_checkpoints()
            assert faults.dropped > 0, "chaos must actually drop frames"
            assert faults.duplicated > 0, "chaos must actually dup frames"
            assert proc.checkpoints_stored > 0
            assert proc.crash_recoveries == 0
            assert proc.captured == control.captured
            stats = proc.collect_stats()
            assert stats.outputs_by_query == control.stats.outputs_by_query
        finally:
            proc.close()

    def test_back_to_back_rounds_serialize(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            **FAST,
        )
        try:
            proc.register(AGG, query_id="agg", shard=0)
            feed(proc, 0, 20)
            first = proc.checkpoint(wait=False)
            second = proc.checkpoint(wait=False)  # collects the first
            assert (first, second) == (1, 2)
            proc.collect_checkpoints()
            assert proc.store.latest_version(0) == 2
            assert proc.checkpoint_failures == 0
        finally:
            proc.close()

    def test_reused_store_directory_is_foreign_not_fatal(self, tmp_path):
        """A second run over the same checkpoint directory must neither
        collide with the previous run's versions nor restore its state:
        prior checkpoints seed the version counter and sit below this
        run's recovery floor."""
        from repro.shard import CheckpointStore

        def serve(worker_faults=None):
            proc = ProcessShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA},
                n_shards=2,
                capture_outputs=True,
                store=CheckpointStore(path=str(tmp_path)),
                worker_faults=worker_faults,
                **FAST,
            )
            try:
                proc.register(AGG, query_id="agg", shard=0)
                feed(proc, 0, 40)
                proc.checkpoint()
                feed(proc, 40, 60)
                return proc, proc.collect_stats()
            finally:
                proc.close()

        first, __ = serve()
        first_version = first.store.latest_version(0)
        assert first_version is not None

        # Second run, same directory: its first round must supersede...
        second, __ = serve()
        assert second.store.latest_version(0) > first_version
        assert second.checkpoint_failures == 0

        # ...and a crash *before* this run's first checkpoint must NOT
        # restore the previous runs' (foreign) state — it replays this
        # run's log from the origin instead.
        proc = ProcessShardedRuntime(
            {"S": SCHEMA, "T": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            store=CheckpointStore(path=str(tmp_path)),
            worker_faults={0: WorkerFaults(crash_on=("data", 10))},
            **FAST,
        )
        try:
            proc.register(SEQ, query_id="seq", shard=0)
            feed(proc, 0, 60)
            proc.collect_stats()
            assert proc.crash_recoveries == 1
            report = proc.recovery_log[0]
            assert report.checkpoint_version is None, (
                "recovery restored a previous run's checkpoint"
            )
            assert report.queries_replayed == ["seq"]
            control = ShardedRuntime(
                {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
            )
            control.register(SEQ, query_id="seq", shard=0)
            feed(control, 0, 60)
            assert proc.captured == control.captured
        finally:
            proc.close()

    def test_validation(self):
        with pytest.raises(LifecycleError, match="checkpoint_every"):
            ProcessShardedRuntime({"S": SCHEMA}, checkpoint_every=-1)
        # checkpoint_every implies durability.
        proc = ProcessShardedRuntime(
            {"S": SCHEMA}, n_shards=1, checkpoint_every=3, **FAST
        )
        try:
            assert proc.durable
            assert proc.store is not None
        finally:
            proc.close()
