"""Rewiring edge cases for ``_detach_mop`` / ``replace_mops`` /
``eliminate_duplicate`` / ``prune_unreachable``.

These paths were exercised only indirectly by the optimizer before; the
online runtime's unregister/GC makes them load-bearing — a stale consumer
index or a half-removed stream now corrupts a *live* engine, so the
bookkeeping invariants get direct coverage here, including shared channels
and multi-consumer streams.
"""

from __future__ import annotations

import pytest

from repro.core.plan import QueryPlan
from repro.errors import PlanError
from repro.mops.predicate_index import PredicateIndexMOp
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.streams.schema import Schema

SCHEMA = Schema.numbered(2)


def selection(constant):
    return Selection(Comparison(attr("a0"), "==", lit(constant)))


def projection():
    return Projection([("a0", attr("a0"))])


class TestDetach:
    def test_detach_keeps_other_consumers_of_shared_stream(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [s], query_id="q1")
        out2 = plan.add_operator(selection(2), [s], query_id="q2")
        victim = plan.producer_mop_of(out2)
        plan._detach_mop(victim)
        remaining = plan.consumers_of(s)
        assert len(remaining) == 1
        assert remaining[0][1].query_id == "q1"
        plan.validate()

    def test_detach_multi_instance_mop_cleans_every_entry(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        o1 = plan.add_operator(selection(1), [s], query_id="q1")
        o2 = plan.add_operator(selection(2), [s], query_id="q2")
        owners = [plan.producer_mop_of(o1), plan.producer_mop_of(o2)]
        merged = PredicateIndexMOp(
            [plan.producer_instance_of(o1), plan.producer_instance_of(o2)]
        )
        plan.replace_mops(owners, merged)
        assert len(plan.consumers_of(s)) == 2
        plan._detach_mop(merged)
        assert plan.consumers_of(s) == []


class TestReplaceMops:
    def test_rejects_partial_instance_union(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        o1 = plan.add_operator(selection(1), [s], query_id="q1")
        o2 = plan.add_operator(selection(2), [s], query_id="q2")
        partial = PredicateIndexMOp([plan.producer_instance_of(o1)])
        with pytest.raises(PlanError):
            plan.replace_mops(
                [plan.producer_mop_of(o1), plan.producer_mop_of(o2)], partial
            )

    def test_rejects_mop_not_in_plan(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        o1 = plan.add_operator(selection(1), [s], query_id="q1")
        foreign_plan = QueryPlan()
        fs = foreign_plan.add_source("S", SCHEMA)
        fo = foreign_plan.add_operator(selection(1), [fs], query_id="qx")
        target = PredicateIndexMOp(
            [plan.producer_instance_of(o1), foreign_plan.producer_instance_of(fo)]
        )
        with pytest.raises(PlanError):
            plan.replace_mops(
                [plan.producer_mop_of(o1), foreign_plan.producer_mop_of(fo)],
                target,
            )

    def test_replace_preserves_channel_wiring(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="S")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="S")
        channel = plan.channelize([s1, s2])
        o1 = plan.add_operator(selection(1), [s1], query_id="q1")
        o2 = plan.add_operator(selection(1), [s2], query_id="q2")
        owners = [plan.producer_mop_of(o1), plan.producer_mop_of(o2)]
        merged = PredicateIndexMOp(
            [plan.producer_instance_of(o1), plan.producer_instance_of(o2)]
        )
        plan.replace_mops(owners, merged)
        # Channels are per-stream wiring: replacement must not disturb them.
        assert plan.channel_of(s1) is channel
        assert plan.channel_of(s2) is channel
        entries = plan.consumers_of(s1)
        assert [entry[0] for entry in entries] == [merged]
        plan.validate()


class TestEliminateDuplicate:
    def _dup_plan(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        keep = plan.add_operator(selection(1), [s], query_id="q1")
        dup = plan.add_operator(selection(1), [s], query_id="q2")
        return plan, s, keep, dup

    def test_multi_consumer_rewiring(self):
        plan, s, keep, dup = self._dup_plan()
        # Two independent consumers plus a sink on the duplicate's output.
        c1 = plan.add_operator(projection(), [dup], query_id="q2")
        c2 = plan.add_operator(selection(3), [dup], query_id="q3")
        plan.mark_output(dup, "q2")
        plan.eliminate_duplicate(
            plan.producer_instance_of(dup), plan.producer_instance_of(keep)
        )
        consumers = plan.consumers_of(keep)
        assert {entry[1].output.stream_id for entry in consumers} == {
            c1.stream_id,
            c2.stream_id,
        }
        # Sink registration moved over; duplicate stream fully gone.
        assert plan.sinks[keep.stream_id] == ["q2"]
        assert dup.stream_id not in {st.stream_id for st in plan.streams()}
        with pytest.raises(PlanError):
            plan.channel_of(dup)
        plan.validate()

    def test_sink_merges_with_existing_registrations(self):
        plan, s, keep, dup = self._dup_plan()
        plan.mark_output(keep, "q1")
        plan.mark_output(dup, "q2")
        plan.eliminate_duplicate(
            plan.producer_instance_of(dup), plan.producer_instance_of(keep)
        )
        assert plan.sinks[keep.stream_id] == ["q1", "q2"]

    def test_rejects_different_definitions(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        a = plan.add_operator(selection(1), [s], query_id="q1")
        b = plan.add_operator(selection(2), [s], query_id="q2")
        with pytest.raises(PlanError):
            plan.eliminate_duplicate(
                plan.producer_instance_of(b), plan.producer_instance_of(a)
            )

    def test_rejects_different_inputs(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        a = plan.add_operator(selection(1), [s], query_id="q1")
        b = plan.add_operator(selection(1), [t], query_id="q2")
        with pytest.raises(PlanError):
            plan.eliminate_duplicate(
                plan.producer_instance_of(b), plan.producer_instance_of(a)
            )

    def test_rejects_multi_instance_owner(self):
        plan, s, keep, dup = self._dup_plan()
        extra = plan.add_operator(selection(1), [s], query_id="q3")
        owners = [plan.producer_mop_of(dup), plan.producer_mop_of(extra)]
        merged = PredicateIndexMOp(
            [plan.producer_instance_of(dup), plan.producer_instance_of(extra)]
        )
        plan.replace_mops(owners, merged)
        with pytest.raises(PlanError):
            plan.eliminate_duplicate(
                plan.producer_instance_of(dup), plan.producer_instance_of(keep)
            )


class TestUnmarkAndPrune:
    def test_unmark_keeps_shared_sink_alive(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        out = plan.add_operator(selection(1), [s], query_id="q1")
        plan.mark_output(out, "q1")
        plan.mark_output(out, "q2")
        assert plan.unmark_output("q1") == 1
        assert plan.sinks[out.stream_id] == ["q2"]
        assert plan.prune_unreachable() == []

    def test_prune_cascades_bottom_up(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        mid = plan.add_operator(selection(1), [s], query_id="q1")
        top = plan.add_operator(projection(), [mid], query_id="q1")
        plan.mark_output(top, "q1")
        plan.unmark_output("q1")
        removed = plan.prune_unreachable()
        assert len(removed) == 2
        assert plan.mops == []
        assert {st.stream_id for st in plan.streams()} == {s.stream_id}
        assert plan.consumers_of(s) == []

    def test_prune_keeps_shared_upstream(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        shared = plan.add_operator(selection(1), [s], query_id="q1")
        o1 = plan.add_operator(projection(), [shared], query_id="q1")
        o2 = plan.add_operator(selection(3), [shared], query_id="q2")
        plan.mark_output(o1, "q1")
        plan.mark_output(o2, "q2")
        plan.unmark_output("q1")
        removed = plan.prune_unreachable()
        assert [mop.describe() for mop in removed] == [
            plan_mop.describe() for plan_mop in removed
        ]
        assert len(removed) == 1
        # The shared selection survives: q2 still consumes it.
        assert plan.producer_mop_of(shared) in plan.mops
        plan.validate()

    def test_prune_keeps_partially_dead_merged_mop(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        o1 = plan.add_operator(selection(1), [s], query_id="q1")
        o2 = plan.add_operator(selection(2), [s], query_id="q2")
        owners = [plan.producer_mop_of(o1), plan.producer_mop_of(o2)]
        merged = PredicateIndexMOp(
            [plan.producer_instance_of(o1), plan.producer_instance_of(o2)]
        )
        plan.replace_mops(owners, merged)
        plan.mark_output(o1, "q1")
        plan.mark_output(o2, "q2")
        plan.unmark_output("q2")
        # q2's instance is dead but shares the m-op with live q1: kept whole.
        assert plan.prune_unreachable() == []
        assert merged in plan.mops
        plan.validate()

    def test_prune_removes_channelized_outputs_together(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="S")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="S")
        o1 = plan.add_operator(selection(1), [s1], query_id="q1")
        o2 = plan.add_operator(selection(1), [s2], query_id="q2")
        owners = [plan.producer_mop_of(o1), plan.producer_mop_of(o2)]
        merged = PredicateIndexMOp(
            [plan.producer_instance_of(o1), plan.producer_instance_of(o2)]
        )
        plan.replace_mops(owners, merged)
        plan.channelize([o1, o2])
        plan.mark_output(o1, "q1")
        plan.mark_output(o2, "q2")
        plan.unmark_output("q1")
        plan.unmark_output("q2")
        removed = plan.prune_unreachable()
        assert removed == [merged]
        remaining = {st.stream_id for st in plan.streams()}
        assert remaining == {s1.stream_id, s2.stream_id}
        plan.validate()
