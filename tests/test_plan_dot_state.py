"""Tests for plan DOT export and engine state sampling."""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.operators.expressions import attr, left, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.streams.tuples import StreamTuple

SCHEMA = Schema.of_ints("a", "b")


def optimized_channel_plan():
    plan = QueryPlan()
    sources = [
        plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(3)
    ]
    for i, source in enumerate(sources):
        out = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(1))), [source],
            query_id=f"q{i}",
        )
        plan.mark_output(out, f"q{i}")
    Optimizer().optimize(plan)
    return plan, sources


class TestDotExport:
    def test_structure(self):
        plan, sources = optimized_channel_plan()
        dot = plan.to_dot()
        assert dot.startswith("digraph rumor_plan {")
        assert dot.rstrip().endswith("}")
        for source in sources:
            assert f'src_{source.stream_id}' in dot

    def test_channel_edges_dashed(self):
        plan, __ = optimized_channel_plan()
        dot = plan.to_dot()
        assert "style=dashed" in dot
        assert "cap 3" in dot

    def test_sinks_rendered(self):
        plan, __ = optimized_channel_plan()
        dot = plan.to_dot()
        assert "sink_" in dot
        assert "q0" in dot

    def test_singleton_plan_all_solid(self):
        plan = QueryPlan()
        source = plan.add_source("S", SCHEMA)
        out = plan.add_operator(
            Selection(Comparison(attr("a"), "==", lit(1))), [source], query_id="q"
        )
        plan.mark_output(out, "q")
        dot = plan.to_dot()
        assert "style=dashed" not in dot
        assert "style=solid" in dot


class TestStateSampling:
    def _sequence_plan(self, window):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        out = plan.add_operator(
            Sequence(
                conjunction(
                    [DurationWithin(window), Comparison(left("a"), "==", right("a"))]
                )
            ),
            [s, t],
            query_id="q",
        )
        plan.mark_output(out, "q")
        return plan, s, t

    def _run(self, window):
        plan, s, t = self._sequence_plan(window)
        engine = StreamEngine(plan)
        s_tuples = [StreamTuple(SCHEMA, (i % 50, 0), 2 * i) for i in range(200)]
        t_tuples = [StreamTuple(SCHEMA, (999, 0), 2 * i + 1) for i in range(200)]
        return engine.run(
            [
                StreamSource(plan.channel_of(s), s_tuples),
                StreamSource(plan.channel_of(t), t_tuples),
            ],
            sample_state_every=10,
        )

    def test_peak_state_grows_with_window(self):
        small = self._run(window=10)
        large = self._run(window=1000)
        assert large.peak_state > small.peak_state

    def test_no_sampling_means_zero(self):
        plan, s, t = self._sequence_plan(10)
        engine = StreamEngine(plan)
        stats = engine.run(
            [
                StreamSource(
                    plan.channel_of(s), [StreamTuple(SCHEMA, (1, 1), 0)]
                ),
                StreamSource(plan.channel_of(t), []),
            ]
        )
        assert stats.peak_state == 0

    def test_merge_takes_max_peak(self):
        from repro.engine.metrics import RunStats

        first = RunStats(peak_state=5)
        second = RunStats(peak_state=9)
        assert first.merge(second).peak_state == 9
