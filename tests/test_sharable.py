"""Unit tests for the sharable-stream relation ∼ (§3.2)."""

import pytest

from repro.core.plan import QueryPlan
from repro.core.sharable import sharability_signature, sharable, sharable_groups
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, lit
from repro.operators.predicates import Comparison
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.predicates import TruePredicate
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema

SCHEMA = Schema.of_ints("a", "b")


def selection(const):
    return Selection(Comparison(attr("a"), "==", lit(const)))


def aggregate(window):
    return SlidingWindowAggregate("sum", "b", TimeWindow(window), ("a",), "s")


class TestBaseCases:
    def test_stream_sharable_with_itself(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        assert sharable(plan, s, s)

    def test_unlabeled_sources_not_sharable(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        assert not sharable(plan, s, t)

    def test_labeled_sources_sharable(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="x")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="x")
        assert sharable(plan, s1, s2)

    def test_different_labels_not_sharable(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="x")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="y")
        assert not sharable(plan, s1, s2)


class TestSelectionTransparency:
    def test_selection_output_sharable_with_input(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        filtered = plan.add_operator(selection(1), [s])
        assert sharable(plan, filtered, s)

    def test_different_selections_sharable(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        f1 = plan.add_operator(selection(1), [s])
        f2 = plan.add_operator(selection(2), [s])
        assert sharable(plan, f1, f2)

    def test_selection_chains_transparent(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        f1 = plan.add_operator(selection(1), [s])
        f2 = plan.add_operator(selection(2), [f1])
        assert sharable(plan, f2, s)


class TestCongruence:
    def test_same_unary_on_sharable_inputs(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        a1 = plan.add_operator(aggregate(5), [plan.add_operator(selection(1), [s])])
        a2 = plan.add_operator(aggregate(5), [plan.add_operator(selection(2), [s])])
        assert sharable(plan, a1, a2)

    def test_different_definition_not_sharable(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        a1 = plan.add_operator(aggregate(5), [s])
        a2 = plan.add_operator(aggregate(6), [s])
        assert not sharable(plan, a1, a2)

    def test_binary_congruence(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        seq = Sequence(TruePredicate())
        out1 = plan.add_operator(seq, [plan.add_operator(selection(1), [s]), t])
        out2 = plan.add_operator(seq, [plan.add_operator(selection(2), [s]), t])
        assert sharable(plan, out1, out2)

    def test_binary_different_right_not_sharable(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        u = plan.add_source("U", SCHEMA)
        seq = Sequence(TruePredicate())
        out1 = plan.add_operator(seq, [s, t])
        out2 = plan.add_operator(seq, [s, u])
        assert not sharable(plan, out1, out2)


class TestEquivalenceRelation:
    def test_symmetry_and_transitivity_via_groups(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        outs = [plan.add_operator(selection(c), [s]) for c in range(4)]
        other = plan.add_source("T", SCHEMA)
        groups = sharable_groups(plan, outs + [other, s])
        assert len(groups) == 2
        assert set(groups[0]) == set(outs) | {s}
        assert groups[1] == [other]

    def test_signature_stability(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        out = plan.add_operator(aggregate(5), [s])
        first = sharability_signature(plan, out)
        second = sharability_signature(plan, out)
        assert first == second
        assert hash(first) == hash(second)
