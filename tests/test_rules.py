"""Unit tests for m-rule mechanics: conditions, guards, priorities."""

import pytest

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.core.rules import (
    ChannelSelectionRule,
    ChannelSequenceRule,
    CseRule,
    FragmentAggregateRule,
    IndexedSequenceRule,
    PredicateIndexRule,
    SharedAggregateRule,
    SharedJoinRule,
)
from repro.mops.channel_ops import ChannelSelectionMOp
from repro.mops.predicate_index import PredicateIndexMOp
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, left, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.schema import Schema

SCHEMA = Schema.of_ints("a", "b")


def selection(const):
    return Selection(Comparison(attr("a"), "==", lit(const)))


class TestRuleGuards:
    def test_refire_guard(self):
        """A rule must not merge a group it already produced (fixpoint)."""
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(3):
            plan.add_operator(selection(c), [s], query_id=f"q{c}")
        rule = PredicateIndexRule()
        assert rule.apply(plan) == 1
        assert rule.apply(plan) == 0  # no refire on the merged m-op

    def test_incremental_merge_absorbs_new_query(self):
        """A new query added after optimization is absorbed on re-run."""
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(3):
            plan.add_operator(selection(c), [s], query_id=f"q{c}")
        rule = PredicateIndexRule()
        rule.apply(plan)
        plan.add_operator(selection(99), [s], query_id="q99")
        assert rule.apply(plan) == 1
        assert isinstance(plan.mops[0], PredicateIndexMOp)
        assert len(plan.mops[0].instances) == 4

    def test_singleton_groups_skipped(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        plan.add_operator(selection(1), [s])
        assert PredicateIndexRule().apply(plan) == 0

    def test_different_streams_not_grouped(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        plan.add_operator(selection(1), [s])
        plan.add_operator(selection(1), [t])
        assert PredicateIndexRule().apply(plan) == 0


class TestSharedAggregateCondition:
    def test_different_functions_not_merged(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        plan.add_operator(
            SlidingWindowAggregate("sum", "b", TimeWindow(5), (), "x"), [s]
        )
        plan.add_operator(
            SlidingWindowAggregate("avg", "b", TimeWindow(5), (), "x"), [s]
        )
        assert SharedAggregateRule().apply(plan) == 0

    def test_same_function_different_groupby_merged(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        plan.add_operator(
            SlidingWindowAggregate("sum", "b", TimeWindow(5), (), "x"), [s]
        )
        plan.add_operator(
            SlidingWindowAggregate("sum", "b", TimeWindow(5), ("a",), "x"), [s]
        )
        assert SharedAggregateRule().apply(plan) == 1


class TestChannelRuleConditions:
    def test_needs_sharable_inputs(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA)  # unlabeled: not sharable
        s2 = plan.add_source("S2", SCHEMA)
        plan.add_operator(selection(1), [s1])
        plan.add_operator(selection(1), [s2])
        assert ChannelSelectionRule().apply(plan) == 0

    def test_needs_same_definition(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="s")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="s")
        plan.add_operator(selection(1), [s1])
        plan.add_operator(selection(2), [s2])
        assert ChannelSelectionRule().apply(plan) == 0

    def test_merges_and_channelizes(self):
        plan = QueryPlan()
        s1 = plan.add_source("S1", SCHEMA, sharable_label="s")
        s2 = plan.add_source("S2", SCHEMA, sharable_label="s")
        plan.add_operator(selection(1), [s1], query_id="q1")
        plan.add_operator(selection(1), [s2], query_id="q2")
        assert ChannelSelectionRule().apply(plan) == 1
        assert isinstance(plan.mops[0], ChannelSelectionMOp)
        assert plan.channel_of(s1) is plan.channel_of(s2)
        assert plan.channel_of(s1).capacity == 2

    def test_channel_covers_all_siblings(self):
        """Channelization encodes the whole sharable sibling set, so later
        definition groups can ride the same channel (Fig. 3)."""
        plan = QueryPlan()
        sources = [
            plan.add_source(f"S{i}", SCHEMA, sharable_label="s") for i in range(4)
        ]
        # group 1 (definition A) reads S0, S1; group 2 (B) reads S2, S3
        for i, source in enumerate(sources[:2]):
            plan.add_operator(selection(1), [source], query_id=f"a{i}")
        for i, source in enumerate(sources[2:]):
            plan.add_operator(selection(2), [source], query_id=f"b{i}")
        rule = ChannelSelectionRule()
        assert rule.apply(plan) == 2
        channels = {plan.channel_of(s).channel_id for s in sources}
        assert len(channels) == 1
        assert plan.channel_of(sources[0]).capacity == 4


class TestIndexedSequenceCondition:
    def _seq(self, plan, s, t, const, window, query_id):
        predicate = conjunction(
            [DurationWithin(window), Comparison(right("a"), "==", lit(const))]
        )
        return plan.add_operator(Sequence(predicate), [s, t], query_id=query_id)

    def test_requires_common_guard_attribute(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        self._seq(plan, s, t, 1, 5, "q1")
        # second query guards on b, not a: no common attribute
        predicate = conjunction(
            [DurationWithin(5), Comparison(right("b"), "==", lit(2))]
        )
        plan.add_operator(Sequence(predicate), [s, t], query_id="q2")
        assert IndexedSequenceRule().apply(plan) == 0

    def test_merges_same_guard_attribute(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        t = plan.add_source("T", SCHEMA)
        self._seq(plan, s, t, 1, 5, "q1")
        self._seq(plan, s, t, 2, 7, "q2")
        assert IndexedSequenceRule().apply(plan) == 1


class TestRegistry:
    def test_priority_order(self):
        rules = default_rules()
        priorities = [rule.priority for rule in rules]
        assert priorities == sorted(priorities)
        assert rules[0].name == "cse"

    def test_channel_free_registry(self):
        rules = default_rules(channels=False)
        names = {rule.name for rule in rules}
        assert "c;/cµ" not in names
        assert "cσ" not in names
        assert "sσ" in names

    def test_full_registry_names(self):
        names = {rule.name for rule in default_rules()}
        assert {
            "cse", "sσ", "s;/sµ", "s;-ix", "s;-w", "sα", "s⋈",
            "cσ", "cπ", "cα", "c⋈", "c;/cµ",
        } <= names


class TestOptimizerFixpoint:
    def test_terminates_and_validates(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(6):
            out = plan.add_operator(selection(c % 2), [s], query_id=f"q{c}")
            plan.mark_output(out, f"q{c}")
        report = Optimizer().optimize(plan)
        assert report.sweeps >= 1
        plan.validate()

    def test_idempotent(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(4):
            plan.add_operator(selection(c), [s], query_id=f"q{c}")
        optimizer = Optimizer()
        optimizer.optimize(plan)
        shape = [mop.describe() for mop in plan.mops]
        second = optimizer.optimize(plan)
        assert second.total_applications == 0
        assert [mop.describe() for mop in plan.mops] == shape

    def test_report_rendering(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(3):
            plan.add_operator(selection(c), [s], query_id=f"q{c}")
        report = Optimizer().optimize(plan)
        assert "sσ" in str(report)
        assert "sweep 1" in str(report)
        assert report.by_rule().get("sσ") == 1

    def test_report_records_sweep_structure(self):
        plan = QueryPlan()
        s = plan.add_source("S", SCHEMA)
        for c in range(4):
            plan.add_operator(selection(c % 2), [s], query_id=f"q{c}")
        report = Optimizer().optimize(plan)
        # Every application carries its sweep index; indexes are 1-based,
        # contiguous, and never exceed the sweep count.
        assert report.applications
        sweeps_seen = {application.sweep for application in report.applications}
        assert min(sweeps_seen) == 1
        assert max(sweeps_seen) <= report.sweeps
        by_sweep = report.by_sweep()
        assert sum(len(apps) for apps in by_sweep.values()) == len(
            report.applications
        )
        for sweep, applications in by_sweep.items():
            for application in applications:
                assert application.sweep == sweep
                assert application.count > 0
        # CSE collapses the two duplicate pairs before sσ merges the rest.
        assert report.by_rule()["cse"] == 2
        # m-ops considered accumulates the whole plan per sweep (full mode).
        assert report.mops_considered >= len(plan.mops) * report.sweeps
        assert not report.incremental
