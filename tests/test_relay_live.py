"""Live cross-shard derived channels: export, relay, recover — byte-identical.

The tentpole contract of ISSUE 10 at the *lifecycle runtime* layer:
``export_stream(query_id, alias)`` re-emits a registered query's sink
channel as a derived source stream any shard can consume, which is what
lets a connected component split across workers.  These suites pin the
end-to-end discipline:

- **split placement ≡ inline composition** — a consumer reading the
  exported alias from another shard produces byte-identical outputs to a
  single runtime evaluating the composed query;
- **relay traffic is derived, not input** — aggregate ``input_events``
  count source events only, however many bridge tuples flow;
- **taps ride their producers** — rebalance moves the export with the
  component, mid-stream, without dropping or duplicating a tuple;
- **exactly-once across crashes** — worker crashes (producer and consumer
  side), coordinator crashes around the ``rbatch`` journal append, journal
  cold starts and re-adoption all end byte-identical, via ack-based run
  retention + journal-before-ship;
- **hypothesis properties** over random event interleavings, batch sizes,
  seeded crash points and mid-stream rebalances (ISSUE 10 satellite).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CoordinatorCrashError, LifecycleError
from repro.runtime import QueryRuntime
from repro.shard import (
    CoordinatorFaults,
    ProcessShardedRuntime,
    ShardedRuntime,
    WorkerFaults,
    fork_available,
)
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple
from strategies import event_entries, max_batches

SCHEMA = Schema.of_ints("a0", "a1")
FAST = {"command_timeout": 0.25, "max_retries": 60}

PRODUCER = "FROM S WHERE a0 == 2"
CONSUMER = "FROM B AGG sum(a1) OVER 20 BY a0 AS m"
COMPOSED = "FROM (FROM S WHERE a0 == 2) AGG sum(a1) OVER 20 BY a0 AS m"


def source_rows(first, last):
    return [
        StreamTuple(SCHEMA, (ts % 3, ts), ts) for ts in range(first, last)
    ]


def feed(runtime, first, last, batch=7):
    rows = source_rows(first, last)
    for start in range(0, len(rows), batch):
        runtime.process_batch("S", rows[start : start + batch])


def outputs(runtime, query_id):
    return [t.values for t in runtime.captured.get(query_id, [])]


def composed_reference(first=0, last=300):
    reference = QueryRuntime({"S": SCHEMA}, capture_outputs=True)
    reference.register(COMPOSED, query_id="cons")
    feed(reference, first, last)
    return outputs(reference, "cons")


def bridge_split(runtime):
    """Producer on shard 0, consumer on shard 1, bridged by alias B."""
    runtime.register(PRODUCER, query_id="prod", shard=0)
    runtime.export_stream("prod", "B")
    runtime.register(CONSUMER, query_id="cons", shard=1)


class TestInProcessLiveRelay:
    def test_split_placement_matches_inline_composition(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        feed(runtime, 0, 300)
        assert outputs(runtime, "cons") == composed_reference()
        assert runtime.exported_streams() == {"B": "prod"}

    def test_relayed_tuples_are_not_input_events(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        feed(runtime, 0, 300)
        assert runtime.stats.input_events == 300
        assert runtime.stats.physical_input_events == 300
        assert runtime.relayed_events == len(outputs(runtime, "prod"))
        assert runtime.relayed_events > 0

    def test_rebalance_moves_tap_mid_stream(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        feed(runtime, 0, 110)
        runtime.rebalance("prod", 1)
        feed(runtime, 110, 210)
        runtime.rebalance("prod", 0)
        feed(runtime, 210, 300)
        assert outputs(runtime, "cons") == composed_reference()

    def test_chained_bridges_drain_to_quiescence(self):
        """A bridge feeding a bridge: shard 0 → 1 → 0 in one drain."""
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        runtime.register(PRODUCER, query_id="prod", shard=0)
        runtime.export_stream("prod", "B")
        runtime.register("FROM B WHERE a1 > 10", query_id="mid", shard=1)
        runtime.export_stream("mid", "C")
        runtime.register(
            "FROM C AGG sum(a1) OVER 20 BY a0 AS m", query_id="cons", shard=0
        )
        feed(runtime, 0, 300)
        reference = QueryRuntime({"S": SCHEMA}, capture_outputs=True)
        reference.register(
            "FROM (FROM (FROM S WHERE a0 == 2) WHERE a1 > 10) "
            "AGG sum(a1) OVER 20 BY a0 AS m",
            query_id="cons",
        )
        feed(reference, 0, 300)
        assert outputs(runtime, "cons") == outputs(reference, "cons")

    def test_export_validation_and_guards(self):
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        with pytest.raises(LifecycleError, match="already declared"):
            runtime.export_stream("prod", "B")
        with pytest.raises(LifecycleError, match="already declared"):
            runtime.export_stream("prod", "S")
        with pytest.raises(LifecycleError):
            runtime.export_stream("ghost", "D")
        with pytest.raises(LifecycleError, match="feeds exported stream"):
            runtime.unregister("prod")
        # The consumer is not a producer; it can leave freely.
        runtime.unregister("cons")

    def test_sharing_merge_rehomes_the_tap(self):
        """A duplicate registration re-homes the producer's sink under
        ``eliminate_duplicate``; the tap follows, cursor intact."""
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        feed(runtime, 0, 150)
        runtime.register(PRODUCER, query_id="twin", shard=0)
        feed(runtime, 150, 300)
        assert outputs(runtime, "cons") == composed_reference()


pytestmark_proc = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)


def split_reference(first=0, last=300):
    reference = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
    bridge_split(reference)
    feed(reference, first, last)
    return reference


def assert_identical(proc, reference):
    stats = proc.collect_stats()
    assert proc.captured == reference.captured
    assert stats.outputs_by_query == reference.stats.outputs_by_query
    assert stats.input_events == reference.stats.input_events
    assert stats.output_events == reference.stats.output_events


@pytestmark_proc
class TestProcessLiveRelay:
    @pytest.mark.parametrize("data_plane", ["columnar", "pickle"])
    def test_split_placement_is_byte_identical(self, data_plane):
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            data_plane=data_plane,
            **FAST,
        )
        try:
            bridge_split(proc)
            feed(proc, 0, 300)
            assert_identical(proc, reference)
            assert proc.exported_streams() == {"B": "prod"}
            assert proc.relayed_events == reference.relayed_events
        finally:
            proc.close()

    @pytest.mark.parametrize("crash_shard", [0, 1])
    def test_worker_crash_mid_stream_is_exactly_once(self, crash_shard):
        """Kill the producer's (or consumer's) worker between two data
        frames: restore + WAL replay + relay-cursor re-tap ends
        byte-identical — no relayed tuple lost or doubled."""
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=5,
            worker_faults={crash_shard: WorkerFaults(crash_on=("data", 12))},
            **FAST,
        )
        try:
            bridge_split(proc)
            feed(proc, 0, 300)
            assert_identical(proc, reference)
            assert proc.crash_recoveries == 1
            assert not proc.recovery_log[0].state_lost
        finally:
            proc.close()

    def test_rebalance_moves_export_with_component(self):
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            **FAST,
        )
        try:
            bridge_split(proc)
            feed(proc, 0, 110)
            proc.rebalance("prod", 1)
            feed(proc, 110, 210)
            proc.rebalance("prod", 0)
            feed(proc, 210, 300)
            assert_identical(proc, reference)
        finally:
            proc.close()

    def test_journal_cold_start_resumes_relays(self, tmp_path):
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            journal=str(tmp_path),
            checkpoint_every=5,
            **FAST,
        )
        bridge_split(proc)
        feed(proc, 0, 150)
        proc.close()
        successor = ProcessShardedRuntime.from_journal(str(tmp_path), **FAST)
        try:
            assert successor.exported_streams() == {"B": "prod"}
            feed(successor, 150, 300)
            assert_identical(successor, reference)
        finally:
            successor.close()

    @pytest.mark.parametrize("when", ["before", "after"])
    @pytest.mark.parametrize("mode", ["readopt", "cold"])
    def test_coordinator_crash_around_rbatch_journal(
        self, tmp_path, when, mode
    ):
        """Kill the coordinator around a relay chunk's journal append.
        ``before`` loses the chunk (the producer still retains its runs —
        the successor re-collects them); ``after`` journals it but never
        ships (the successor re-ships from the folded log).  Either way:
        byte-identical, exactly-once."""
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            journal=str(tmp_path),
            checkpoint_every=5,
            coordinator_faults=CoordinatorFaults(
                crash_on=("rbatch", 10), when=when
            ),
            **FAST,
        )
        try:
            bridge_split(proc)
            for start in range(0, 300, 10):
                feed(proc, start, start + 10)
        except CoordinatorCrashError:
            pass
        else:
            pytest.fail("rbatch fault never fired")
        if mode == "readopt":
            handoff = proc.detach()
            successor = ProcessShardedRuntime.readopt(
                str(tmp_path), handoff, **FAST
            )
        else:
            proc.abandon()
            successor = ProcessShardedRuntime.from_journal(str(tmp_path), **FAST)
        try:
            resume = successor.input_positions().get("S", 0)
            assert 0 < resume <= 300
            feed(successor, resume, 300)
            assert_identical(successor, reference)
        finally:
            successor.close()

    def test_lifecycle_guards(self):
        proc = ProcessShardedRuntime(
            {"S": SCHEMA}, n_shards=2, capture_outputs=True, **FAST
        )
        try:
            bridge_split(proc)
            feed(proc, 0, 50)
            with pytest.raises(LifecycleError, match="feeds exported stream"):
                proc.unregister("prod")
            with pytest.raises(LifecycleError, match="feeds exported stream"):
                proc.submit_unregister("prod")
            with pytest.raises(LifecycleError, match="owns the producer"):
                proc.remove_worker(proc.shard_of("prod"))
            with pytest.raises(LifecycleError, match="already in use"):
                proc.export_stream("cons", "B")
        finally:
            proc.close()


class TestBridgeProperties:
    """Hypothesis properties over bridge-shaped plans (ISSUE 10 satellite)."""

    @given(entries=event_entries(n_streams=1, max_size=60), batch=max_batches)
    @settings(max_examples=40, deadline=None)
    def test_split_matches_inline_for_any_interleaving(self, entries, batch):
        rows = [
            StreamTuple(SCHEMA, (a0, a1), ts)
            for ts, (__, a0, a1) in enumerate(entries)
        ]
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        reference = QueryRuntime({"S": SCHEMA}, capture_outputs=True)
        reference.register(COMPOSED, query_id="cons")
        for start in range(0, len(rows), batch):
            chunk = rows[start : start + batch]
            runtime.process_batch("S", chunk)
            reference.process_batch("S", chunk)
        assert outputs(runtime, "cons") == outputs(reference, "cons")
        assert runtime.stats.input_events == len(rows)

    @given(
        entries=event_entries(n_streams=1, min_size=10, max_size=60),
        batch=max_batches,
        move_at=st.integers(0, 59),
    )
    @settings(max_examples=25, deadline=None)
    def test_split_survives_mid_stream_rebalance(self, entries, batch, move_at):
        rows = [
            StreamTuple(SCHEMA, (a0, a1), ts)
            for ts, (__, a0, a1) in enumerate(entries)
        ]
        runtime = ShardedRuntime({"S": SCHEMA}, n_shards=2, capture_outputs=True)
        bridge_split(runtime)
        reference = QueryRuntime({"S": SCHEMA}, capture_outputs=True)
        reference.register(COMPOSED, query_id="cons")
        moved = False
        for start in range(0, len(rows), batch):
            if not moved and start >= move_at:
                runtime.rebalance("prod", 1)
                moved = True
            chunk = rows[start : start + batch]
            runtime.process_batch("S", chunk)
            reference.process_batch("S", chunk)
        assert outputs(runtime, "cons") == outputs(reference, "cons")

    @pytest.mark.skipif(
        not fork_available(),
        reason="process mode requires the fork start method",
    )
    @given(
        crash_shard=st.integers(0, 1),
        occurrence=st.integers(1, 40),
        when=st.sampled_from(["before", "after"]),
        checkpoint_every=st.sampled_from([0, 4, 16]),
    )
    @settings(max_examples=5, deadline=None)
    def test_durable_bridge_survives_seeded_crashes(
        self, crash_shard, occurrence, when, checkpoint_every
    ):
        """Seeded worker crash × checkpoint cadence on a bridged serve:
        restore + replay + relay re-tap stays byte-identical whether or
        not the drawn crash fires."""
        reference = split_reference()
        proc = ProcessShardedRuntime(
            {"S": SCHEMA},
            n_shards=2,
            capture_outputs=True,
            durable=True,
            checkpoint_every=checkpoint_every,
            worker_faults={
                crash_shard: WorkerFaults(
                    crash_on=("data", occurrence), when=when
                )
            },
            **FAST,
        )
        try:
            bridge_split(proc)
            feed(proc, 0, 300)
            assert_identical(proc, reference)
        finally:
            proc.close()
