"""Wire format: lossless round-trips, schema interning, loud failures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ChannelError
from repro.shard import WireDecoder, WireEncoder
from repro.shard.wire import RUN, SCHEMA, STOP_FRAME
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


def make_channel(num_streams=1, width=2):
    schema = Schema.numbered(width)
    streams = [StreamDef(f"W{i}", schema) for i in range(num_streams)]
    if num_streams == 1:
        return Channel.singleton(streams[0]), schema
    return Channel(streams), schema


def roundtrip(channel, batch, decoder=None, encoder=None):
    encoder = encoder or WireEncoder()
    decoder = decoder or WireDecoder([channel])
    decoded = None
    for frame in encoder.encode_run(channel, batch):
        result = decoder.decode(frame)
        if result is not None:
            decoded = result
    return decoded


class TestRoundTrip:
    def test_single_run(self):
        channel, schema = make_channel()
        batch = [
            ChannelTuple(StreamTuple(schema, (ts, ts * 2), ts), 1)
            for ts in range(5)
        ]
        out_channel, out_batch = roundtrip(channel, batch)
        assert out_channel is channel
        assert out_batch == batch

    def test_schema_interned_once(self):
        channel, schema = make_channel()
        encoder = WireEncoder()
        batch = [ChannelTuple(StreamTuple(schema, (1, 2), 0), 1)]
        first = encoder.encode_run(channel, batch)
        second = encoder.encode_run(channel, batch)
        assert [frame[0] for frame in first] == [SCHEMA, RUN]
        assert [frame[0] for frame in second] == [RUN]

    def test_multi_stream_membership_masks(self):
        channel, schema = make_channel(num_streams=3)
        batch = [
            ChannelTuple(StreamTuple(schema, (ts, 0), ts), mask)
            for ts, mask in enumerate([0b001, 0b101, 0b111])
        ]
        __, out_batch = roundtrip(channel, batch)
        assert [ct.membership for ct in out_batch] == [0b001, 0b101, 0b111]

    def test_mixed_schemas_in_one_run(self):
        schema_a = Schema.of_ints("x", "y")
        schema_b = Schema.of_ints("x", "z")
        stream = StreamDef("W", schema_a.padded_union(schema_b))
        channel = Channel.singleton(stream)
        batch = [
            ChannelTuple(StreamTuple(schema_a, (1, 2), 0), 1),
            ChannelTuple(StreamTuple(schema_b, (3, 4), 1), 1),
        ]
        __, out_batch = roundtrip(channel, batch)
        assert out_batch == batch
        assert out_batch[0].tuple.schema.names == ("x", "y")
        assert out_batch[1].tuple.schema.names == ("x", "z")

    def test_empty_batch_emits_nothing(self):
        channel, __ = make_channel()
        assert WireEncoder().encode_run(channel, []) == []

    @given(
        payload=st.lists(
            st.tuples(st.integers(0, 100), st.integers(-5, 5), st.integers(1, 3)),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_property_roundtrip(self, payload):
        channel, schema = make_channel(num_streams=2)
        batch = [
            ChannelTuple(StreamTuple(schema, (a, b), ts), mask)
            for ts, ((a, b), mask) in enumerate(
                ((a, b), mask) for a, b, mask in payload
            )
        ]
        __, out_batch = roundtrip(channel, batch)
        assert out_batch == batch


class TestFailures:
    def test_unknown_channel(self):
        channel, schema = make_channel()
        other, __ = make_channel()
        encoder = WireEncoder()
        frames = encoder.encode_run(
            channel, [ChannelTuple(StreamTuple(schema, (1, 2), 0), 1)]
        )
        decoder = WireDecoder([other])
        decoder.decode(frames[0])  # schema frame is fine
        with pytest.raises(ChannelError, match="unknown channel"):
            decoder.decode(frames[1])

    def test_unknown_schema_token(self):
        channel, __ = make_channel()
        decoder = WireDecoder([channel])
        with pytest.raises(ChannelError, match="unknown schema"):
            decoder.decode((RUN, channel.channel_id, 99, [(0, 1, (1, 2))]))

    def test_stop_frame_rejected_by_decode(self):
        channel, __ = make_channel()
        with pytest.raises(ChannelError, match="stop frame"):
            WireDecoder([channel]).decode(STOP_FRAME)

    def test_unknown_kind(self):
        channel, __ = make_channel()
        with pytest.raises(ChannelError, match="unknown wire frame"):
            WireDecoder([channel]).decode(("bogus",))

    def test_add_channel_extends_registry(self):
        channel, schema = make_channel()
        decoder = WireDecoder([])
        decoder.add_channel(channel)
        out = roundtrip(
            channel,
            [ChannelTuple(StreamTuple(schema, (1, 2), 0), 1)],
            decoder=decoder,
        )
        assert out is not None
