"""Integration tests: full-pipeline equivalence across engines and rule sets.

These are the paper's core correctness claims exercised end to end:

1. the optimized multi-query plan is input/output-equivalent to the naive
   plan (m-op semantics, §2.2) — checked on every workload template and on
   randomized mixed workloads;
2. the RUMOR plan is equivalent to the Cayuga automaton engine on event
   workloads (§4.2–§4.3 translation claims);
3. channel plans are equivalent to channel-free plans (§3, §4.4).
"""

import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import run_plan_collect
from repro.core.optimizer import Optimizer
from repro.core.registry import default_rules
from repro.engine.executor import StreamEngine
from repro.workloads.perfmon import PerfmonDataset
from repro.workloads.templates import (
    HybridWorkload,
    Workload1,
    Workload2,
    Workload3,
    WorkloadParameters,
    sources_from_events,
)


def _capture_automata(engine, events):
    engine.run(iter(events), capture_outputs=True)
    return {
        query_id: Counter((t.ts, tuple(t.values)) for t in tuples)
        for query_id, tuples in engine.captured.items()
    }


class TestWorkloadCrossEngine:
    @pytest.mark.parametrize("queries", [1, 7, 40])
    def test_workload1_rumor_equals_cayuga(self, queries):
        workload = Workload1(WorkloadParameters(num_queries=queries), seed=3)
        events = workload.events(3000)
        plan, name_map = workload.rumor_plan()
        rumor = run_plan_collect(plan, sources_from_events(plan, name_map, events))
        cayuga = _capture_automata(workload.automaton_engine(), events)
        assert rumor == cayuga

    @pytest.mark.parametrize("variant", ["seq", "mu"])
    def test_workload2_rumor_equals_cayuga(self, variant):
        workload = Workload2(
            WorkloadParameters(num_queries=25), variant=variant, seed=4
        )
        events = workload.events(2000)
        plan, name_map = workload.rumor_plan()
        rumor = run_plan_collect(plan, sources_from_events(plan, name_map, events))
        cayuga = _capture_automata(workload.automaton_engine(), events)
        assert rumor == cayuga

    def test_workload1_unoptimized_equals_optimized(self):
        workload = Workload1(WorkloadParameters(num_queries=20), seed=9)
        events = workload.events(2000)
        plan, name_map = workload.rumor_plan()
        optimized = run_plan_collect(
            plan, sources_from_events(plan, name_map, events)
        )
        # rumor_plan always optimizes; rebuild the same queries naively
        naive_workload = Workload1(WorkloadParameters(num_queries=20), seed=9)
        from repro.core.plan import QueryPlan
        from repro.operators.expressions import attr, lit, right
        from repro.operators.predicates import Comparison, DurationWithin, conjunction
        from repro.operators.select import Selection
        from repro.operators.sequence import Sequence

        plan2 = QueryPlan()
        s = plan2.add_source("S", naive_workload.schema)
        t = plan2.add_source("T", naive_workload.schema)
        for index in range(20):
            qid = f"q{index}"
            sel = plan2.add_operator(
                Selection(
                    Comparison(
                        attr("a0"), "==", lit(naive_workload.theta1_constants[index])
                    )
                ),
                [s],
                query_id=qid,
            )
            seq = plan2.add_operator(
                Sequence(
                    conjunction(
                        [
                            DurationWithin(naive_workload.windows[index]),
                            Comparison(
                                right("a0"),
                                "==",
                                lit(naive_workload.theta3_constants[index]),
                            ),
                        ]
                    )
                ),
                [sel, t],
                query_id=qid,
            )
            plan2.mark_output(seq, qid)
        naive = run_plan_collect(
            plan2, sources_from_events(plan2, {"S": s, "T": t}, events)
        )
        assert naive == optimized


class TestChannelEquivalence:
    @pytest.mark.parametrize("variant", ["seq", "mu"])
    def test_workload3_channel_vs_plain(self, variant):
        workload = Workload3(
            WorkloadParameters(num_queries=30), capacity=6, variant=variant, seed=8
        )
        rounds = workload.rounds(300)
        results = []
        for channels in (True, False):
            plan, name_map = workload.rumor_plan(channels=channels)
            results.append(
                run_plan_collect(plan, workload.sources(plan, name_map, rounds))
            )
        assert results[0] == results[1]

    @pytest.mark.parametrize("sel", [0.0, 0.3, 0.9])
    def test_hybrid_channel_vs_plain(self, sel):
        dataset = PerfmonDataset(processes=12, duration_seconds=200, seed=6)
        workload = HybridWorkload(dataset, num_queries=6, sel=sel)
        results = []
        for channels in (True, False):
            plan, name_map = workload.rumor_plan(channels=channels)
            results.append(
                run_plan_collect(plan, workload.sources(plan, name_map, 200))
            )
        assert results[0] == results[1]


class TestRandomizedMixedWorkloads:
    """Hypothesis-driven random multi-query plans: naive == fully optimized."""

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=12, deadline=None)
    def test_random_event_workload_equivalence(self, seed):
        from repro.core.plan import QueryPlan
        from repro.operators.expressions import attr, last, left, lit, right
        from repro.operators.iterate import Iterate
        from repro.operators.predicates import (
            Comparison,
            DurationWithin,
            conjunction,
        )
        from repro.operators.select import Selection
        from repro.operators.sequence import Sequence
        from repro.streams.schema import Schema
        from repro.streams.sources import StreamSource
        from repro.streams.tuples import StreamTuple

        rng = random.Random(seed)
        schema = Schema.numbered(2)

        def build():
            plan = QueryPlan()
            s = plan.add_source("S", schema)
            t = plan.add_source("T", schema)
            rng_local = random.Random(seed)
            for index in range(rng_local.randint(2, 8)):
                qid = f"q{index}"
                kind = rng_local.choice(["filter-seq", "seq", "mu"])
                window = rng_local.choice([3, 9, 27])
                if kind == "filter-seq":
                    sel = plan.add_operator(
                        Selection(
                            Comparison(attr("a0"), "==", lit(rng_local.randrange(3)))
                        ),
                        [s],
                        query_id=qid,
                    )
                    out = plan.add_operator(
                        Sequence(
                            conjunction(
                                [
                                    DurationWithin(window),
                                    Comparison(
                                        right("a0"), "==", lit(rng_local.randrange(3))
                                    ),
                                ]
                            )
                        ),
                        [sel, t],
                        query_id=qid,
                    )
                elif kind == "seq":
                    out = plan.add_operator(
                        Sequence(
                            conjunction(
                                [
                                    DurationWithin(window),
                                    Comparison(left("a0"), "==", right("a0")),
                                ]
                            )
                        ),
                        [s, t],
                        query_id=qid,
                    )
                else:
                    correlation = Comparison(left("a0"), "==", right("a0"))
                    out = plan.add_operator(
                        Iterate(
                            conjunction([DurationWithin(window), correlation]),
                            conjunction(
                                [correlation, Comparison(right("a1"), ">", last("a1"))]
                            ),
                        ),
                        [s, t],
                        query_id=qid,
                    )
                plan.mark_output(out, qid)
            return plan, (s, t)

        def sources(plan, handles):
            s, t = handles
            rng_events = random.Random(seed + 1)
            s_tuples = [
                StreamTuple(
                    schema,
                    (rng_events.randrange(4), rng_events.randrange(4)),
                    2 * i,
                )
                for i in range(150)
            ]
            t_tuples = [
                StreamTuple(
                    schema,
                    (rng_events.randrange(4), rng_events.randrange(4)),
                    2 * i + 1,
                )
                for i in range(150)
            ]
            return [
                StreamSource(plan.channel_of(s), s_tuples),
                StreamSource(plan.channel_of(t), t_tuples),
            ]

        naive_plan, naive_handles = build()
        naive = run_plan_collect(naive_plan, sources(naive_plan, naive_handles))
        optimized_plan, optimized_handles = build()
        Optimizer(default_rules()).optimize(optimized_plan)
        optimized = run_plan_collect(
            optimized_plan, sources(optimized_plan, optimized_handles)
        )
        assert naive == optimized
