"""Elastic scale-out/in: resize the fleet mid-serve with zero query loss.

The elastic half of ISSUE 7: :meth:`ProcessShardedRuntime.add_worker`
spawns a fresh shard into a live serve (schema-frame history replayed so
in-flight streams decode immediately), :meth:`remove_worker` drains every
component off a departing shard — checkpoint/restore as the transport —
before stopping it.  The invariants under test:

- resizing never changes results: a grow-then-shrink serve stays
  byte-identical to a static in-process serve of the same schedule, and a
  retired worker's cumulative counters survive it (``collect_stats``
  aggregates include queries that only ever lived on dead shards);
- shard ids are sparse and never reused, and every accessor speaks ids;
- policies steer elasticity (``on_grow`` levels load onto the newcomer,
  ``on_shrink`` picks the drain target);
- elastic topology changes are journaled, so a cold-started coordinator
  reconstructs the post-resize fleet;
- the topology audit trail records every resize.
"""

import pytest

from repro.errors import LifecycleError
from repro.shard import ProcessShardedRuntime, ShardedRuntime, fork_available
from repro.shard.policy import QueryCountPolicy, RebalancePolicy
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="process mode requires the fork start method"
)

SCHEMA = Schema.of_ints("a0", "a1")
FAST = {"command_timeout": 0.25, "max_retries": 60}

QUERIES = [
    ("q0", "FROM S AGG sum(a1) OVER 30 BY a0 AS m"),
    ("q1", "FROM S JOIN T ON left.a0 == right.a0 WITHIN 20"),
]


def feed(runtime, first, last):
    for ts in range(first, last):
        runtime.process(
            "S" if ts % 2 == 0 else "T", StreamTuple(SCHEMA, (ts % 3, ts), ts)
        )


def make_proc(**options):
    proc = ProcessShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA},
        n_shards=2,
        capture_outputs=True,
        **FAST,
        **options,
    )
    for shard, (query_id, text) in enumerate(QUERIES):
        proc.register(text, query_id=query_id, shard=shard)
    return proc


def make_reference():
    reference = ShardedRuntime(
        {"S": SCHEMA, "T": SCHEMA}, n_shards=2, capture_outputs=True
    )
    for shard, (query_id, text) in enumerate(QUERIES):
        reference.register(text, query_id=query_id, shard=shard)
    return reference


def assert_identical(proc, reference):
    stats = proc.collect_stats()
    assert proc.captured == reference.captured
    assert stats.outputs_by_query == reference.stats.outputs_by_query
    assert stats.input_events == reference.stats.input_events
    assert stats.output_events == reference.stats.output_events
    assert sorted(proc.active_queries) == sorted(reference.active_queries)
    assert proc.state_size == reference.state_size


class TestElasticEquivalence:
    def test_grow_then_shrink_is_byte_identical(self):
        """Feed → grow (policy moves load onto the newcomer) → feed →
        retire shard 0 (drains its components) → feed: identical to a
        static serve, zero query loss."""
        reference = make_reference()
        feed(reference, 0, 120)
        proc = make_proc(durable=True, checkpoint_every=5)
        try:
            feed(proc, 0, 40)
            new = proc.add_worker(policy=QueryCountPolicy())
            assert new == 2
            feed(proc, 40, 80)
            result = proc.remove_worker(0)
            assert result["shard"] == 0
            assert 0 not in proc.shard_ids()
            feed(proc, 80, 120)
            assert_identical(proc, reference)
            assert sorted(proc.active_queries) == ["q0", "q1"]
        finally:
            proc.close()

    def test_retired_worker_counters_survive(self):
        """outputs_by_query keeps the full history of a query whose only
        outputs happened on a since-retired shard."""
        reference = make_reference()
        feed(reference, 0, 60)
        proc = make_proc()
        try:
            feed(proc, 0, 60)
            before = proc.collect_stats().outputs_by_query
            proc.add_worker()
            proc.remove_worker(0)
            proc.remove_worker(1)
            after = proc.collect_stats().outputs_by_query
            assert after == before == reference.stats.outputs_by_query
        finally:
            proc.close()

    def test_elastic_topology_survives_cold_start(self, tmp_path):
        """Grow + shrink are journaled: a cold-started coordinator
        reconstructs the resized fleet (sparse ids and all) and keeps
        serving byte-identically."""
        reference = make_reference()
        feed(reference, 0, 160)
        proc = make_proc(journal=str(tmp_path), checkpoint_every=5)
        try:
            feed(proc, 0, 40)
            proc.add_worker(policy=QueryCountPolicy())
            feed(proc, 40, 80)
            proc.remove_worker(0)
            feed(proc, 80, 120)
            proc.collect_stats()
        finally:
            proc.abandon()
        successor = ProcessShardedRuntime.from_journal(str(tmp_path))
        try:
            assert successor.shard_ids() == [1, 2]
            feed(successor, 120, 160)
            assert_identical(successor, reference)
        finally:
            successor.close()


class TestElasticTopology:
    def test_shard_ids_are_sparse_and_never_reused(self):
        proc = make_proc()
        try:
            assert proc.shard_ids() == [0, 1]
            assert proc.add_worker() == 2
            proc.remove_worker(1)
            assert proc.shard_ids() == [0, 2]
            assert proc.add_worker() == 3
            assert proc.shard_ids() == [0, 2, 3]
            assert proc.n_shards == 3
        finally:
            proc.close()

    def test_cannot_remove_the_last_worker(self):
        proc = ProcessShardedRuntime({"S": SCHEMA}, n_shards=1, **FAST)
        try:
            proc.register("FROM S WHERE a0 == 1", query_id="q0", shard=0)
            with pytest.raises(LifecycleError, match="last worker"):
                proc.remove_worker(0)
        finally:
            proc.close()

    def test_dead_shard_ids_are_rejected(self):
        proc = make_proc()
        try:
            proc.add_worker()
            proc.remove_worker(1)
            with pytest.raises(LifecycleError, match="live shards"):
                proc.remove_worker(1)
            with pytest.raises(LifecycleError, match="live shards"):
                proc.rebalance("q0", 1)
            with pytest.raises(LifecycleError, match="live shards"):
                proc.register("FROM S WHERE a0 == 1", query_id="q9", shard=1)
        finally:
            proc.close()

    def test_resizes_ride_the_topology_audit_trail(self):
        proc = make_proc(observe=True)
        try:
            feed(proc, 0, 20)
            new = proc.add_worker()
            proc.remove_worker(new)
            events = proc.events.topology()
            assert [e["kind"] for e in events] == ["scale_up", "scale_down"]
            assert events[0]["shard"] == new
            assert events[1]["shard"] == new
        finally:
            proc.close()


class TestElasticPolicies:
    def test_on_grow_levels_load_onto_the_newcomer(self):
        # Six sources → six independent components (same-source selections
        # would merge into one sharable component and move as a block).
        proc = ProcessShardedRuntime(
            {f"S{i}": SCHEMA for i in range(6)},
            n_shards=2,
            capture_outputs=True,
            **FAST,
        )
        try:
            for i in range(6):
                proc.register(
                    f"FROM S{i} WHERE a0 == 1", query_id=f"q{i}", shard=i % 2
                )
            new = proc.add_worker(policy=QueryCountPolicy())
            loads = {s: len(proc.queries_on(s)) for s in proc.shard_ids()}
            assert sum(loads.values()) == 6, "grow lost queries"
            assert loads[new] == 2, f"on_grow did not level: {loads}"
        finally:
            proc.close()

    def test_on_shrink_chooses_the_drain_target(self):
        class PinnedTarget(RebalancePolicy):
            def propose(self, runtime):
                return []

            def on_shrink(self, runtime, departing, query_id):
                survivors = [s for s in runtime.shard_ids() if s != departing]
                return max(survivors)

        proc = make_proc()
        try:
            new = proc.add_worker()
            assert proc.queries_on(new) == []
            proc.remove_worker(0, policy=PinnedTarget())
            assert proc.shard_of("q0") == new
        finally:
            proc.close()
