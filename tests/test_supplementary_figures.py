"""Tests for the supplementary figure drivers (paper prose results)."""

import pytest

from repro.bench.figures import FIGURES, run_figure
from repro.bench.harness import BenchScale


@pytest.fixture
def micro_scale():
    return BenchScale(name="micro", events=150, rounds=15, hybrid_seconds=8)


class TestSupplementaryDrivers:
    def test_registry_contains_supplements(self):
        assert "10c-mu" in FIGURES
        assert "11a-d2" in FIGURES
        assert len(FIGURES) == 12

    def test_workload3_mu_driver(self, micro_scale):
        result = run_figure("10c-mu", micro_scale)
        assert result.figure == "10(c)-µ"
        assert len(result.rows) >= 3
        assert all(len(row) == 4 for row in result.rows)

    def test_d2_hybrid_driver(self, micro_scale):
        result = run_figure("11a-d2", micro_scale)
        assert result.figure == "11(a)-D2"
        assert [row[0] for row in result.rows] == [5, 10, 15, 20, 25]
        # all throughputs positive (the workload actually ran)
        assert all(row[1] > 0 and row[2] > 0 for row in result.rows)

    def test_workload3_mu_equivalence(self):
        """The µ channel plan computes the same answers as the plain plan."""
        from collections import Counter

        from repro.engine.executor import StreamEngine
        from repro.workloads.templates import Workload3, WorkloadParameters

        workload = Workload3(
            WorkloadParameters(num_queries=20), capacity=5, variant="mu", seed=17
        )
        rounds = workload.rounds(150)
        results = []
        for channels in (True, False):
            plan, name_map = workload.rumor_plan(channels=channels)
            engine = StreamEngine(plan, capture_outputs=True)
            engine.run(workload.sources(plan, name_map, rounds))
            results.append(
                {
                    q: Counter((t.ts, tuple(t.values)) for t in ts)
                    for q, ts in engine.captured.items()
                }
            )
        assert results[0] == results[1]
