"""The naive m-op: one-by-one execution of the implemented operators.

This is the paper's *definition* of m-op semantics (§2.2): "the m-op
conceptually executes all its operators that have input stream S, and it
writes the output produced for t by these operators to the corresponding
output streams. ... the definition ... is based on the one-by-one execution
of the implemented operators without sharing state."

Besides being the starting point of every plan (one instance per naive m-op),
it is the oracle the property tests compare every optimized m-op against.
"""

from __future__ import annotations

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector, Wiring
from repro.streams.channel import Channel, ChannelTuple


class NaiveMOp(MOp):
    """Implements its operator instances by executing each in isolation."""

    kind = "naive"

    def make_executor(self, wiring: Wiring) -> "NaiveMOpExecutor":
        return NaiveMOpExecutor(self, wiring)


class NaiveMOpExecutor(MOpExecutor):
    """Per-instance operator executors behind the channel decode/encode steps."""

    def __init__(self, mop: NaiveMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        # Decode table: for each input channel, stream position -> the
        # (executor, instance, input_index) triples consuming that stream.
        self._executors = [
            instance.operator.executor([s.schema for s in instance.inputs])
            for instance in mop.instances
        ]
        self._routing: dict[int, list[list[tuple[object, OpInstance, int]]]] = {}
        for position, instance in enumerate(mop.instances):
            executor = self._executors[position]
            for input_index, stream in enumerate(instance.inputs):
                channel = wiring.channel_of(stream)
                table = self._routing.setdefault(
                    channel.channel_id, [[] for __ in range(channel.capacity)]
                )
                table[channel.position_of(stream)].append(
                    (executor, instance, input_index)
                )
        # Batch-path memo: (channel_id, membership) -> prebound consumer
        # triples.  The routing table is immutable for the executor's
        # lifetime (migrations build fresh executors), so decode happens
        # once per distinct mask ever, not once per batch.
        self._active_by_mask: dict[tuple[int, int], list] = {}

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        table = self._routing.get(channel.channel_id)
        if table is None:
            return []
        emissions = []
        mask = channel_tuple.membership
        tuple_ = channel_tuple.tuple
        for position, consumers in enumerate(table):
            if not consumers or not mask & (1 << position):
                continue
            for executor, instance, input_index in consumers:
                for output in executor.process(input_index, tuple_):
                    emissions.append((instance.output, output))
        return self._collector.emit(emissions)

    def process_batch(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Amortized scan: mask decode cached per distinct membership, the
        per-instance operator executors run in batch order, and emission
        merging goes through the collector's batch path (scoped per input
        tuple, so outputs match per-tuple dispatch exactly)."""
        channel_id = channel.channel_id
        table = self._routing.get(channel_id)
        if table is None:
            return []
        consumers_by_mask = self._active_by_mask
        per_tuple_emissions = []
        for channel_tuple in batch:
            mask = channel_tuple.membership
            active = consumers_by_mask.get((channel_id, mask))
            if active is None:
                active = [
                    (executor.process, instance.output, input_index)
                    for position, consumers in enumerate(table)
                    if consumers and mask & (1 << position)
                    for executor, instance, input_index in consumers
                ]
                consumers_by_mask[(channel_id, mask)] = active
            if not active:
                continue
            tuple_ = channel_tuple.tuple
            emissions = []
            for process, output_stream, input_index in active:
                for output in process(input_index, tuple_):
                    emissions.append((output_stream, output))
            if emissions:
                per_tuple_emissions.append(emissions)
        return self._collector.emit_batch(per_tuple_emissions)

    @property
    def state_size(self) -> int:
        return sum(executor.state_size for executor in self._executors)

    def snapshot_state(self):
        # Per-instance snapshots, positionally aligned with mop.instances
        # (the instance list travels with the m-op, so a fresh executor
        # built from the same m-op rebuilds the same ordering).
        snapshots = [executor.snapshot_state() for executor in self._executors]
        return snapshots if any(s is not None for s in snapshots) else None

    def restore_state(self, snapshot) -> None:
        if snapshot is None:
            return
        for executor, entry in zip(self._executors, snapshot):
            executor.restore_state(entry)
