"""Shared evaluation of ``;`` / ``µ`` operators — the s; / sµ targets (§4.3).

Two m-ops live here:

- :class:`SharedSequenceMOp` — common subexpression elimination: a set of
  operators with the same definition reading the same pair of streams is
  evaluated once, and the single result stream is multiplexed to every
  implemented operator's output.  This is the paper's translation of Cayuga's
  *prefix state merging* into a plan rewrite (§4.3, Fig. 8).

- :class:`IndexedSequenceMOp` — the *Active Node index* behaviour: a large
  set of ``;`` operators reading the **same second stream** but *different*
  first streams (Workload 1: each query's left input is its own σθ1 output),
  whose predicates carry a constant equality on a common attribute of the
  second stream (the θ3 of Workload 1).  The m-op hash-indexes the
  constituent operators by their θ3 constant, so an arriving ``T`` event
  touches only the operators whose constant matches — instead of every
  operator in the plan.  Together with the sσ m-op upstream (the FR-index
  analogue) this reproduces the Cayuga index pair exercised by Fig. 9.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.expressions import RIGHT
from repro.operators.iterate import Iterate
from repro.operators.predicates import as_constant_equality, conjuncts
from repro.operators.sequence import Sequence
from repro.streams.channel import Channel, ChannelTuple


class SharedSequenceMOp(MOp):
    """CSE: one executor, outputs multiplexed to all same-definition queries."""

    kind = ";-shared"

    def __init__(self, instances):
        super().__init__(instances)
        definitions = {instance.operator.definition() for instance in self.instances}
        if len(definitions) != 1:
            raise PlanError("s;/sµ merge operators with the same definition")
        operator = self.instances[0].operator
        if not isinstance(operator, (Sequence, Iterate)):
            raise PlanError("SharedSequenceMOp implements ; and µ operators only")
        lefts = {instance.inputs[0].stream_id for instance in self.instances}
        rights = {instance.inputs[1].stream_id for instance in self.instances}
        if len(lefts) != 1 or len(rights) != 1:
            raise PlanError("s;/sµ merge operators reading the same pair of streams")

    def make_executor(self, wiring: Wiring) -> "SharedSequenceExecutor":
        return SharedSequenceExecutor(self, wiring)


class SharedSequenceExecutor(MOpExecutor):
    def __init__(self, mop: SharedSequenceMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        left_stream, right_stream = first.inputs
        left_channel = wiring.channel_of(left_stream)
        right_channel = wiring.channel_of(right_stream)
        self._left_slot = (
            left_channel.channel_id,
            1 << left_channel.position_of(left_stream),
        )
        self._right_slot = (
            right_channel.channel_id,
            1 << right_channel.position_of(right_stream),
        )
        operator = first.operator
        self._inner = operator.executor([left_stream.schema, right_stream.schema])
        self._advance = (
            self._inner.advance if isinstance(operator, Iterate) else self._inner.match
        )
        self._outputs = [instance.output for instance in mop.instances]

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        channel_id = channel.channel_id
        membership = channel_tuple.membership
        left_id, left_bit = self._left_slot
        right_id, right_bit = self._right_slot
        emissions = []
        if channel_id == left_id and membership & left_bit:
            self._inner.insert(channel_tuple.tuple)
        if channel_id == right_id and membership & right_bit:
            for output, __ in self._advance(channel_tuple.tuple):
                for output_stream in self._outputs:
                    emissions.append((output_stream, output))
        return self._collector.emit(emissions)

    @property
    def state_size(self) -> int:
        return self._inner.state_size

    def snapshot_state(self):
        return self._inner.snapshot_state()

    def restore_state(self, snapshot) -> None:
        self._inner.restore_state(snapshot)


class IndexedSequenceMOp(MOp):
    """AN-index: constant-indexed dispatch over many ``;`` operators.

    ``index_attribute`` names the second-stream attribute whose constant
    equality all constituent predicates carry.
    """

    kind = ";-index"

    def __init__(self, instances, index_attribute: str):
        super().__init__(instances)
        self.index_attribute = index_attribute
        rights = set()
        for instance in self.instances:
            operator = instance.operator
            if not isinstance(operator, Sequence):
                raise PlanError("IndexedSequenceMOp implements ; operators only")
            if guard_constant(operator, index_attribute) is None:
                raise PlanError(
                    f"every ; predicate must carry a constant equality on "
                    f"second-stream attribute {index_attribute!r}"
                )
            rights.add(instance.inputs[1].stream_id)
        if len(rights) != 1:
            raise PlanError("AN-indexed operators must read the same second stream")

    def make_executor(self, wiring: Wiring) -> "IndexedSequenceExecutor":
        return IndexedSequenceExecutor(self, wiring)


def guard_constant(operator: Sequence, attribute: str):
    """The constant c of the ``right.attribute == c`` conjunct, or None."""
    for part in conjuncts(operator.predicate):
        shape = as_constant_equality(part)
        if shape is not None and shape[0] == RIGHT and shape[1] == attribute:
            return shape[2]
    return None


class _DefinitionGroup:
    """One definition's shared executor plus its member queries.

    Queries with the same definition but different left streams share the
    executor; each stored instance is tagged (via the executor's mask
    plumbing) with the member that opened it, so matches are attributed to
    the right query — the behaviour of a merged Cayuga state holding
    instances that arrived via different prefixes.
    """

    __slots__ = ("executor", "members", "outputs")

    def __init__(self, executor):
        self.executor = executor
        self.members: list[OpInstance] = []
        self.outputs: list = []

    def add(self, instance: OpInstance) -> int:
        self.members.append(instance)
        self.outputs.append(instance.output)
        return len(self.members) - 1


class IndexedSequenceExecutor(MOpExecutor):
    def __init__(self, mop: IndexedSequenceMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        right_stream = mop.instances[0].inputs[1]
        right_channel = wiring.channel_of(right_stream)
        self._right_slot = (
            right_channel.channel_id,
            1 << right_channel.position_of(right_stream),
        )
        self._index_position = right_stream.schema.index_of(mop.index_attribute)

        #: definition -> group (shared executor + members)
        groups: dict[tuple, _DefinitionGroup] = {}
        #: guard constant -> groups whose events carry that constant
        self._by_constant: dict[object, list[_DefinitionGroup]] = defaultdict(list)
        #: (channel_id, position) -> [(group, member bit)] for left routing
        self._left_routes: dict[tuple[int, int], list[tuple[_DefinitionGroup, int]]] = (
            defaultdict(list)
        )
        for instance in mop.instances:
            operator: Sequence = instance.operator
            definition = operator.definition()
            group = groups.get(definition)
            if group is None:
                executor = operator.executor(
                    [instance.inputs[0].schema, right_stream.schema]
                )
                group = _DefinitionGroup(executor)
                groups[definition] = group
                constant = guard_constant(operator, mop.index_attribute)
                self._by_constant[constant].append(group)
            member = group.add(instance)
            left_stream = instance.inputs[0]
            left_channel = wiring.channel_of(left_stream)
            slot = (left_channel.channel_id, left_channel.position_of(left_stream))
            self._left_routes[slot].append((group, 1 << member))
        self._groups = list(groups.values())

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        emissions = []
        membership = channel_tuple.membership
        tuple_ = channel_tuple.tuple
        channel_id = channel.channel_id
        # Left inputs: route by originating stream to the owning group.
        remaining = membership
        position = 0
        while remaining:
            if remaining & 1:
                for group, member_bit in self._left_routes.get(
                    (channel_id, position), ()
                ):
                    group.executor.insert(tuple_, mask=member_bit)
            remaining >>= 1
            position += 1
        # Right events: one hash lookup selects the relevant groups.
        right_id, right_bit = self._right_slot
        if channel_id == right_id and membership & right_bit:
            relevant = self._by_constant.get(tuple_.values[self._index_position])
            if relevant:
                for group in relevant:
                    for output, member_mask in group.executor.match(tuple_):
                        outputs = group.outputs
                        remaining_members = member_mask
                        member = 0
                        while remaining_members:
                            if remaining_members & 1:
                                emissions.append((outputs[member], output))
                            remaining_members >>= 1
                            member += 1
        return self._collector.emit(emissions)

    @property
    def state_size(self) -> int:
        return sum(group.executor.state_size for group in self._groups)

    def snapshot_state(self):
        # Groups form in mop.instances order (first appearance of each
        # definition), which is identical for donor and receiver.
        snapshots = [group.executor.snapshot_state() for group in self._groups]
        return snapshots if any(s is not None for s in snapshots) else None

    def restore_state(self, snapshot) -> None:
        if snapshot is None:
            return
        for group, entry in zip(self._groups, snapshot):
            group.executor.restore_state(entry)
