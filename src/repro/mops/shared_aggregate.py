"""Shared evaluation of multiple aggregates — the sα target m-op [22].

Implements a set of sliding-window aggregation operators that read the same
stream and use the same aggregate function (and target attribute), but
potentially different group-by specifications and window lengths.

Sharing model (after Zhang et al.'s two-granularity scheme):

- the input is scanned and buffered **once**: a shared ring buffer holds one
  entry per input tuple — its timestamp, its value of the target attribute,
  and its values of the *finest* grouping (the union of all group-by
  attributes).  The per-query state references this shared buffer instead of
  duplicating the window content per query;
- each decomposable query (``sum``/``count``/``avg``) keeps only an O(groups)
  dictionary of running partials plus a cursor into the shared buffer, so a
  tuple entering (or leaving) the window costs O(1) per query;
- ``min``/``max`` are not subtractable, so those queries keep per-group
  monotonic-deque accumulators fed from the single shared scan (computation
  of decode/scan is still shared; extremum state is per query).

Emission follows the single-operator semantics: on each input tuple every
implemented aggregate emits its current value for the arriving tuple's group.
"""

from __future__ import annotations

from typing import Optional

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.aggregate import (
    AGGREGATE_FUNCTIONS,
    SlidingWindowAggregate,
    WindowAccumulator,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple

#: Compact the shared buffer when this many entries are dead at the front.
_COMPACT_THRESHOLD = 4096


class SharedAggregateMOp(MOp):
    """Implements same-function aggregates over one stream with shared state."""

    kind = "α-shared"

    def __init__(self, instances):
        super().__init__(instances)
        functions = set()
        targets = set()
        inputs = set()
        from repro.operators.window import TimeWindow

        for instance in self.instances:
            operator = instance.operator
            if not isinstance(operator, SlidingWindowAggregate):
                raise PlanError("SharedAggregateMOp implements aggregations only")
            if not isinstance(operator.window, TimeWindow):
                raise PlanError("sα shares time-window aggregates only")
            functions.add(operator.function)
            targets.add(operator.target)
            inputs.add(instance.inputs[0].stream_id)
        if len(functions) != 1 or len(targets) != 1:
            raise PlanError(
                "sα merges aggregates with the same function and target "
                f"(got functions={sorted(functions)}, targets={sorted(map(str, targets))})"
            )
        if len(inputs) != 1:
            raise PlanError("sα merges aggregates reading the same stream")

    def make_executor(self, wiring: Wiring) -> "SharedAggregateExecutor":
        return SharedAggregateExecutor(self, wiring)


class _DecomposableQueryState:
    """Cursor + running partials for one sum/count/avg query."""

    __slots__ = ("instance", "output_schema", "window", "key_positions", "cursor", "partials")

    def __init__(self, instance: OpInstance, finest: list[str]):
        operator: SlidingWindowAggregate = instance.operator
        self.instance = instance
        self.output_schema = operator.output_schema([instance.inputs[0].schema])
        self.window = operator.window.length
        # Positions of this query's group-by attributes inside the finest key.
        self.key_positions = [finest.index(name) for name in operator.group_by]
        self.cursor = 0
        self.partials: dict[tuple, list] = {}

    def project(self, finest_key: tuple) -> tuple:
        positions = self.key_positions
        return tuple(finest_key[p] for p in positions)


class _ExtremumQueryState:
    """Per-group monotonic accumulators for one min/max query."""

    __slots__ = ("instance", "output_schema", "window", "key_positions", "groups", "make")

    def __init__(self, instance: OpInstance, finest: list[str], make):
        operator: SlidingWindowAggregate = instance.operator
        self.instance = instance
        self.output_schema = operator.output_schema([instance.inputs[0].schema])
        self.window = operator.window.length
        self.key_positions = [finest.index(name) for name in operator.group_by]
        self.groups: dict[tuple, WindowAccumulator] = {}
        self.make = make

    def project(self, finest_key: tuple) -> tuple:
        positions = self.key_positions
        return tuple(finest_key[p] for p in positions)


class SharedAggregateExecutor(MOpExecutor):
    """Shared ring buffer + per-query cursors/partials."""

    def __init__(self, mop: SharedAggregateMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        input_stream = first.inputs[0]
        schema = input_stream.schema
        channel = wiring.channel_of(input_stream)
        self._channel_id = channel.channel_id
        self._member_bit = 1 << channel.position_of(input_stream)
        operator: SlidingWindowAggregate = first.operator
        self._spec = AGGREGATE_FUNCTIONS[operator.function]
        self._target_position: Optional[int] = (
            schema.index_of(operator.target) if operator.target else None
        )
        # Finest grouping: union of all group-by attribute sets, in
        # first-appearance order (deterministic across runs).
        finest: list[str] = []
        for instance in mop.instances:
            for name in instance.operator.group_by:
                if name not in finest:
                    finest.append(name)
        self._finest_positions = [schema.index_of(name) for name in finest]
        decomposable = operator.function in ("sum", "count", "avg")
        self._decomposable = decomposable
        if decomposable:
            self._queries = [
                _DecomposableQueryState(instance, finest)
                for instance in mop.instances
            ]
        else:
            self._queries = [
                _ExtremumQueryState(instance, finest, self._spec.make)
                for instance in mop.instances
            ]
        #: Shared buffer of (ts, finest_key, value); single copy of the window.
        self._buffer: list[tuple[int, tuple, object]] = []
        self._dead = 0  # smallest live cursor across queries (compaction)

    # -- shared scan -----------------------------------------------------------

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        if channel.channel_id != self._channel_id:
            return []
        if not channel_tuple.membership & self._member_bit:
            return []
        tuple_ = channel_tuple.tuple
        values = tuple_.values
        ts = tuple_.ts
        finest_key = tuple(values[p] for p in self._finest_positions)
        value = (
            values[self._target_position]
            if self._target_position is not None
            else 1
        )
        if self._decomposable:
            self._buffer.append((ts, finest_key, value))
            emissions = self._advance_decomposable(ts, finest_key, value)
            self._maybe_compact()
        else:
            emissions = self._advance_extremum(ts, finest_key, value)
        return self._collector.emit(emissions)

    def _advance_decomposable(self, ts, finest_key, value):
        buffer = self._buffer
        finalize = self._spec.finalize
        emissions = []
        for query in self._queries:
            partials = query.partials
            threshold = ts - query.window
            cursor = query.cursor
            while cursor < len(buffer) and buffer[cursor][0] < threshold:
                __, old_key, old_value = buffer[cursor]
                group_key = query.project(old_key)
                entry = partials[group_key]
                entry[0] -= old_value
                entry[1] -= 1
                if entry[1] == 0:
                    del partials[group_key]
                cursor += 1
            query.cursor = cursor
            key = query.project(finest_key)
            entry = partials.get(key)
            if entry is None:
                entry = [0, 0]
                partials[key] = entry
            entry[0] += value
            entry[1] += 1
            result = finalize((entry[0], entry[1]))
            emissions.append(
                (
                    query.instance.output,
                    StreamTuple(query.output_schema, key + (result,), ts),
                )
            )
        return emissions

    def _advance_extremum(self, ts, finest_key, value):
        finalize = self._spec.finalize
        emissions = []
        for query in self._queries:
            key = query.project(finest_key)
            accumulator = query.groups.get(key)
            if accumulator is None:
                accumulator = query.make()
                query.groups[key] = accumulator
            accumulator.insert(ts, value)
            accumulator.expire(ts - query.window)
            result = finalize(accumulator.partial())
            emissions.append(
                (
                    query.instance.output,
                    StreamTuple(query.output_schema, key + (result,), ts),
                )
            )
        return emissions

    def _maybe_compact(self):
        low = min(query.cursor for query in self._queries)
        if low >= _COMPACT_THRESHOLD:
            del self._buffer[:low]
            for query in self._queries:
                query.cursor -= low

    @property
    def state_size(self) -> int:
        return len(self._buffer)

    def snapshot_state(self):
        # Query states are positionally aligned with mop.instances.
        if self._decomposable:
            per_query = [(query.cursor, query.partials) for query in self._queries]
        else:
            per_query = [query.groups for query in self._queries]
        return (self._buffer, per_query)

    def restore_state(self, snapshot) -> None:
        if snapshot is None:
            return
        self._buffer, per_query = snapshot
        if self._decomposable:
            for query, (cursor, partials) in zip(self._queries, per_query):
                query.cursor = cursor
                query.partials = partials
        else:
            for query, groups in zip(self._queries, per_query):
                query.groups = groups
