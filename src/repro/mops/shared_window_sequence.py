"""Shared-window evaluation of ``;`` / ``µ`` operators differing only in
their duration predicate.

Cayuga's prefix state merging shares one automaton state among queries whose
edges differ only in the duration (window) constant — the state's loop edges
are identical, so its instance set evolves identically; only the *forward*
admission differs per query.  The plan-level image of this sharing is the
same idea as the shared window join [12]: keep **one** instance store sized
for the largest window, and per match route the output to exactly the
queries whose window admits the timestamp distance (binary search over the
sorted window list).

Soundness requires that instance *survival* be window-independent:

- ``µ`` operators qualify when their rebind predicates are identical and the
  forwards differ only in duration (survival is decided by the rebind edge);
- non-consuming ``;`` operators qualify (instances are never consumed);
- consuming ``;`` operators do **not** qualify — a match consumes the
  instance for one query but not for another with a smaller window, exactly
  the reason the corresponding Cayuga states do not merge (their θf = ¬θ_fwd
  filter edges differ).

The m-rule guarding these conditions is
:class:`repro.core.rules.SharedWindowSequenceRule`.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.instances import Instance, InstanceStore
from repro.operators.iterate import Iterate
from repro.operators.predicates import (
    Predicate,
    TruePredicate,
    conjunction,
    split_binary_predicate,
)
from repro.operators.sequence import Sequence
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple


def strip_duration(predicate: Predicate) -> tuple[Predicate, int | None]:
    """Split ``predicate`` into (duration-free remainder, window bound)."""
    from repro.operators.predicates import as_duration_bound, conjuncts

    window = None
    rest = []
    for part in conjuncts(predicate):
        bound = as_duration_bound(part)
        if bound is not None:
            window = bound if window is None else min(window, bound)
        else:
            rest.append(part)
    return conjunction(rest), window


def window_free_definition(operator) -> tuple | None:
    """Grouping key: the operator definition with the duration stripped.

    Returns None for operators this m-op cannot share (consuming ``;``).
    """
    if isinstance(operator, Sequence):
        if operator.consume_on_match:
            return None
        stripped, __ = strip_duration(operator.predicate)
        return (";", stripped, False)
    if isinstance(operator, Iterate):
        stripped, __ = strip_duration(operator.forward)
        return ("µ", stripped, operator.rebind)
    return None


def effective_window(operator) -> int | None:
    if isinstance(operator, Sequence):
        __, window = strip_duration(operator.predicate)
        return window
    __, window = strip_duration(operator.forward)
    return window


class SharedWindowSequenceMOp(MOp):
    """One instance store for n window-variant ``;``/``µ`` operators."""

    kind = ";-window"

    def __init__(self, instances):
        super().__init__(instances)
        keys = {window_free_definition(instance.operator) for instance in self.instances}
        if len(keys) != 1 or None in keys:
            raise PlanError(
                "shared-window sequence requires operators identical up to "
                "their duration predicate (and non-consuming for ;)"
            )
        lefts = {instance.inputs[0].stream_id for instance in self.instances}
        rights = {instance.inputs[1].stream_id for instance in self.instances}
        if len(lefts) != 1 or len(rights) != 1:
            raise PlanError(
                "shared-window sequence requires the same pair of input streams"
            )

    def make_executor(self, wiring: Wiring) -> "SharedWindowSequenceExecutor":
        return SharedWindowSequenceExecutor(self, wiring)


class SharedWindowSequenceExecutor(MOpExecutor):
    """Max-window store; per-match binary search over query windows."""

    def __init__(self, mop: SharedWindowSequenceMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        left_stream, right_stream = first.inputs
        left_schema, right_schema = left_stream.schema, right_stream.schema
        left_channel = wiring.channel_of(left_stream)
        right_channel = wiring.channel_of(right_stream)
        self._left_slot = (
            left_channel.channel_id,
            1 << left_channel.position_of(left_stream),
        )
        self._right_slot = (
            right_channel.channel_id,
            1 << right_channel.position_of(right_stream),
        )
        operator = first.operator
        self._is_iterate = isinstance(operator, Iterate)
        self.output_schema = operator.output_schema([left_schema, right_schema])

        # Order queries ascending by window; None (unbounded) sorts last.
        def sort_key(instance):
            window = effective_window(instance.operator)
            return (window is None, window if window is not None else 0)

        ordered = sorted(mop.instances, key=sort_key)
        self._ordered_outputs = [instance.output for instance in ordered]
        self._windows = [effective_window(instance.operator) for instance in ordered]
        self._bounded = [w for w in self._windows if w is not None]
        self._max_window = (
            None if len(self._bounded) < len(self._windows) else max(self._bounded)
        )

        # Shared predicate paths, from the window-free forward predicate.
        if self._is_iterate:
            forward = operator.forward
        else:
            forward = operator.predicate
        stripped, __ = strip_duration(forward)
        window, cross, constants, residual = split_binary_predicate(stripped)
        self._guards = [
            (right_schema.index_of(attribute), constant)
            for attribute, constant in constants
        ]
        if cross is not None:
            self._left_key_position = left_schema.index_of(cross[0])
            self._right_key_position = right_schema.index_of(cross[1])
        else:
            self._left_key_position = self._right_key_position = None
        residual_predicate = conjunction(residual)
        self._residual = (
            None
            if isinstance(residual_predicate, TruePredicate)
            else residual_predicate.compile(left_schema, right_schema, right_schema)
        )
        if self._is_iterate:
            rebind = operator.rebind
            self._rebind = (
                None
                if isinstance(rebind, TruePredicate)
                else rebind.compile(left_schema, right_schema, right_schema)
            )
            self._uses_last = left_schema == right_schema
        else:
            self._rebind = None
            self._uses_last = False
        self._store = InstanceStore(indexed=cross is not None)

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        channel_id = channel.channel_id
        membership = channel_tuple.membership
        left_id, left_bit = self._left_slot
        right_id, right_bit = self._right_slot
        emissions = []
        if channel_id == left_id and membership & left_bit:
            self._insert(channel_tuple.tuple)
        if channel_id == right_id and membership & right_bit:
            self._match(channel_tuple.tuple, emissions)
        return self._collector.emit(emissions)

    def process_batch(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Batch dispatch: channel-side resolution happens once per run
        instead of per tuple; inserts and matches stay in batch order and
        emission merging stays scoped per input tuple."""
        channel_id = channel.channel_id
        left_id, left_bit = self._left_slot
        right_id, right_bit = self._right_slot
        is_left = channel_id == left_id
        is_right = channel_id == right_id
        if not (is_left or is_right):
            return []
        insert = self._insert
        match = self._match
        per_tuple_emissions = []
        for channel_tuple in batch:
            membership = channel_tuple.membership
            if is_left and membership & left_bit:
                insert(channel_tuple.tuple)
            if is_right and membership & right_bit:
                emissions: list = []
                match(channel_tuple.tuple, emissions)
                if emissions:
                    per_tuple_emissions.append(emissions)
        return self._collector.emit_batch(per_tuple_emissions)

    def _insert(self, tuple_: StreamTuple) -> None:
        key = (
            tuple_.values[self._left_key_position]
            if self._left_key_position is not None
            else None
        )
        last = tuple_ if self._uses_last else None
        self._store.insert(Instance(tuple_, key=key, last=last))

    def _match(self, event: StreamTuple, emissions: list) -> None:
        for position, constant in self._guards:
            if event.values[position] != constant:
                return
        if self._max_window is not None:
            self._store.expire(event.ts - self._max_window)
        if self._right_key_position is not None:
            candidates = self._store.probe(event.values[self._right_key_position])
        else:
            candidates = self._store.scan()
        residual = self._residual
        rebind = self._rebind
        windows = self._bounded
        outputs = self._ordered_outputs
        bounded_count = len(windows)
        is_iterate = self._is_iterate
        rebound = []
        broken = []
        for instance in candidates:
            start, last = instance.start, instance.last
            if start.ts > event.ts:
                continue
            matched = residual is None or residual(start, event, last)
            if matched:
                distance = event.ts - start.ts
                first_admitted = bisect_left(windows, distance)
                if first_admitted < len(outputs):
                    output = StreamTuple(
                        self.output_schema, start.values + event.values, event.ts
                    )
                    for output_stream in outputs[first_admitted:]:
                        emissions.append((output_stream, output))
            if is_iterate:
                if rebind is None or rebind(start, event, last):
                    rebound.append(instance)
                else:
                    broken.append(instance)
        for instance in rebound:
            if self._uses_last:
                instance.last = event
        for instance in broken:
            self._store.kill(instance)

    @property
    def state_size(self) -> int:
        return len(self._store)

    def snapshot_state(self):
        return self._store

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._store = snapshot
