"""Membership-mask translation shared by the channel m-ops.

A channel m-op reads tuples whose membership masks are positions in its
*input* channel and emits tuples whose masks are positions in its *output*
channel(s).  The translator precomputes, for every input position, the output
(channel, bit) contributions of the operator instances consuming that
position, so per-tuple translation is a few shifts and ORs — the paper's
observation that "the decoding and encoding steps can often be implemented
very efficiently" (§3.1).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.mop import OpInstance, OutputCollector, Wiring
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple


class MaskTranslator:
    """Input-channel positions → output (channel, mask) contributions."""

    __slots__ = ("_tables", "_channels", "consumed_mask", "_cache")

    def __init__(
        self,
        input_channel: Channel,
        instances: Sequence[OpInstance],
        collector: OutputCollector,
        input_of: int = 0,
    ):
        #: Per output channel id: list indexed by input position of the OR-ed
        #: output bits contributed by that position.
        tables: dict[int, list[int]] = {}
        channels: dict[int, Channel] = {}
        consumed = 0
        for instance in instances:
            stream = instance.inputs[input_of]
            position = input_channel.position_of(stream)
            consumed |= 1 << position
            out_channel, out_bit = collector.route(instance.output)
            table = tables.setdefault(
                out_channel.channel_id, [0] * input_channel.capacity
            )
            channels[out_channel.channel_id] = out_channel
            table[position] |= out_bit
        self._tables = tables
        self._channels = channels
        #: Input positions that have at least one consumer.
        self.consumed_mask = consumed
        #: Memoized translations: membership masks repeat heavily inside a
        #: source run (every tuple of one source carries the same mask), so
        #: the per-position shift loop runs once per distinct mask.
        self._cache: dict[int, list[tuple[Channel, int]]] = {}

    def translate(self, mask: int) -> list[tuple[Channel, int]]:
        """Output (channel, mask) pairs for an input membership mask."""
        cached = self._cache.get(mask)
        if cached is not None:
            return cached
        results: list[tuple[Channel, int]] = []
        for channel_id, table in self._tables.items():
            out_mask = 0
            remaining = mask
            position = 0
            while remaining:
                if remaining & 1:
                    out_mask |= table[position]
                remaining >>= 1
                position += 1
            if out_mask:
                results.append((self._channels[channel_id], out_mask))
        self._cache[mask] = results
        return results

    def emit(
        self, tuple_: StreamTuple, mask: int
    ) -> list[tuple[Channel, ChannelTuple]]:
        """Encode one content tuple under a translated mask."""
        return [
            (channel, ChannelTuple(tuple_, out_mask))
            for channel, out_mask in self.translate(mask)
        ]

    def emit_batch(
        self, pairs: Iterable[tuple[StreamTuple, int]]
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Encode (tuple, input mask) pairs grouped per output channel."""
        grouped: dict[int, list[ChannelTuple]] = {}
        order: list[tuple[Channel, list[ChannelTuple]]] = []
        translate = self.translate
        for tuple_, mask in pairs:
            for channel, out_mask in translate(mask):
                channel_id = channel.channel_id
                bucket = grouped.get(channel_id)
                if bucket is None:
                    bucket = grouped[channel_id] = []
                    order.append((channel, bucket))
                bucket.append(ChannelTuple(tuple_, out_mask))
        return order
