"""Shared-fragment aggregation — the cα target m-op [15].

Implements a set of identically defined sliding-window aggregates whose input
streams are encoded in one channel.  Following Krishnamurthy et al.'s
on-the-fly sharing scheme, state is organized by *fragment*: the set of
tuples sharing a membership mask.  Each (group, fragment) pair owns one
accumulator; a channel tuple updates exactly one accumulator no matter how
many queries it belongs to.  A query's aggregate is the combination of the
fragments whose mask contains the query's bit — computed from the mergeable
partials of :mod:`repro.operators.aggregate`.

Queries whose visible fragment sets coincide necessarily produce the same
value, so their emissions are encoded as a single output channel tuple; when
every channel tuple belongs to all streams (one fragment), the whole m-op
emits exactly one tuple per input — the sharing that drives Fig. 11.
"""

from __future__ import annotations

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.mops.masking import MaskTranslator
from repro.operators.aggregate import AGGREGATE_FUNCTIONS, SlidingWindowAggregate
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple


class FragmentAggregateMOp(MOp):
    """Per-(group, fragment) accumulators serving n same-definition aggregates."""

    kind = "α-channel"

    def __init__(self, instances):
        super().__init__(instances)
        definitions = {instance.operator.definition() for instance in self.instances}
        if len(definitions) != 1:
            raise PlanError("cα merges aggregates with the same definition")
        operator = self.instances[0].operator
        if not isinstance(operator, SlidingWindowAggregate):
            raise PlanError("FragmentAggregateMOp implements aggregations only")
        from repro.operators.window import TimeWindow

        if not isinstance(operator.window, TimeWindow):
            raise PlanError("cα shares time-window aggregates only")

    def make_executor(self, wiring: Wiring) -> "FragmentAggregateExecutor":
        return FragmentAggregateExecutor(self, wiring)


class FragmentAggregateExecutor(MOpExecutor):
    def __init__(self, mop: FragmentAggregateMOp, wiring: Wiring):
        self.mop = mop
        collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        input_stream = first.inputs[0]
        schema = input_stream.schema
        input_channel = wiring.channel_of(input_stream)
        for instance in mop.instances:
            if wiring.channel_of(instance.inputs[0]) is not input_channel:
                raise PlanError("cα requires all input streams on one channel")
        self._channel_id = input_channel.channel_id
        self._translator = MaskTranslator(input_channel, mop.instances, collector)
        self._collector = collector

        operator: SlidingWindowAggregate = first.operator
        self._spec = AGGREGATE_FUNCTIONS[operator.function]
        self._window = operator.window.length
        self._group_positions = [schema.index_of(g) for g in operator.group_by]
        self._target_position = (
            schema.index_of(operator.target) if operator.target else None
        )
        self.output_schema = operator.output_schema([schema])
        #: group key -> {fragment mask -> accumulator}
        self._state: dict[tuple, dict[int, object]] = {}

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        if channel.channel_id != self._channel_id:
            return []
        mask = channel_tuple.membership & self._translator.consumed_mask
        if not mask:
            return []
        tuple_ = channel_tuple.tuple
        values = tuple_.values
        ts = tuple_.ts
        key = tuple(values[p] for p in self._group_positions)
        value = (
            values[self._target_position]
            if self._target_position is not None
            else 1
        )
        fragments = self._state.get(key)
        if fragments is None:
            fragments = {}
            self._state[key] = fragments
        accumulator = fragments.get(mask)
        if accumulator is None:
            accumulator = self._spec.make()
            fragments[mask] = accumulator
        accumulator.insert(ts, value)

        # Expire and snapshot partials for this group's fragments.
        threshold = ts - self._window
        partials: list[tuple[int, object]] = []
        dead = []
        for fragment_mask, acc in fragments.items():
            acc.expire(threshold)
            if len(acc) == 0:
                dead.append(fragment_mask)
            else:
                partials.append((fragment_mask, acc.partial()))
        for fragment_mask in dead:
            del fragments[fragment_mask]

        # Queries sharing the same visible fragment subset share one value
        # (and therefore one output channel tuple).
        by_subset: dict[tuple[int, ...], int] = {}
        remaining = mask
        position = 0
        while remaining:
            if remaining & 1:
                bit = 1 << position
                subset = tuple(
                    index
                    for index, (fragment_mask, __) in enumerate(partials)
                    if fragment_mask & bit
                )
                by_subset[subset] = by_subset.get(subset, 0) | bit
            remaining >>= 1
            position += 1

        emissions = []
        combine, finalize = self._spec.combine, self._spec.finalize
        for subset, bits in by_subset.items():
            result = finalize(combine([partials[index][1] for index in subset]))
            output = StreamTuple(self.output_schema, key + (result,), ts)
            emissions.extend(
                (out_channel, out_mask, output)
                for out_channel, out_mask in self._translator.translate(bits)
            )
        return self._collector.emit_masked(emissions)

    @property
    def state_size(self) -> int:
        return sum(
            len(acc)
            for fragments in self._state.values()
            for acc in fragments.values()
        )

    def snapshot_state(self):
        return self._state

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._state = snapshot
