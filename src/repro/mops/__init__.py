"""Optimized m-op implementations — the targets of the Table 1 m-rules.

==========  =====================================  ==============================
m-rule      target m-op                            technique (paper reference)
==========  =====================================  ==============================
(none)      :class:`~repro.mops.naive.NaiveMOp`    one-by-one reference semantics
sσ          :class:`~repro.mops.predicate_index.PredicateIndexMOp`  predicate indexing [10, 16]
sα          :class:`~repro.mops.shared_aggregate.SharedAggregateMOp`  shared aggregates [22]
s⋈          :class:`~repro.mops.shared_join.SharedJoinMOp`  shared window join [12]
s; / sµ     :class:`~repro.mops.shared_sequence.SharedSequenceMOp`  CSE (§4.3)
s;-ix       :class:`~repro.mops.shared_sequence.IndexedSequenceMOp`  AN/FR-index behaviour (§4.3)
cσ / cπ     :class:`~repro.mops.channel_ops.ChannelSelectionMOp` / ``ChannelProjectionMOp``  channel ops (§3.3)
cα          :class:`~repro.mops.fragment_aggregate.FragmentAggregateMOp`  shared fragment aggregation [15]
c⋈          :class:`~repro.mops.precision_join.PrecisionJoinMOp`  precision sharing [14]
c; / cµ     :class:`~repro.mops.channel_sequence.ChannelSequenceMOp`  channel-based event MQO (§4.4)
==========  =====================================  ==============================
"""

from repro.mops.naive import NaiveMOp
from repro.mops.predicate_index import PredicateIndexMOp
from repro.mops.shared_aggregate import SharedAggregateMOp
from repro.mops.shared_join import SharedJoinMOp
from repro.mops.shared_sequence import SharedSequenceMOp, IndexedSequenceMOp
from repro.mops.channel_ops import ChannelSelectionMOp, ChannelProjectionMOp
from repro.mops.fragment_aggregate import FragmentAggregateMOp
from repro.mops.precision_join import PrecisionJoinMOp
from repro.mops.channel_sequence import ChannelSequenceMOp

__all__ = [
    "NaiveMOp",
    "PredicateIndexMOp",
    "SharedAggregateMOp",
    "SharedJoinMOp",
    "SharedSequenceMOp",
    "IndexedSequenceMOp",
    "ChannelSelectionMOp",
    "ChannelProjectionMOp",
    "FragmentAggregateMOp",
    "PrecisionJoinMOp",
    "ChannelSequenceMOp",
]
