"""Predicate indexing for selections — the sσ target m-op [10, 16].

Implements a set of selection operators reading the same stream (or channel).
Equality predicates ``attr = c`` are organized into per-attribute hash
indexes: an arriving tuple performs one dictionary lookup per indexed
attribute and receives *all* satisfied selections at once, instead of
evaluating each predicate one by one.  Non-indexable predicates (inequality,
complex conditions — the paper's hybrid workload assumes the starting
conditions are not indexable, §5.3) are evaluated sequentially, still inside
the single m-op.

This m-op also realizes Cayuga's *FR index* once automata are translated to
plans (§4.3): the forward-edge predicates of a state become the selections
downstream of the state's operator, and applying sσ to them builds exactly
the per-state predicate index.

When several output streams share a channel, the emission path produces one
channel tuple whose membership encodes all satisfied selections — the σ{s1..sn}
behaviour of Fig. 6(c).
"""

from __future__ import annotations

from collections import defaultdict

import numpy as np

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.expressions import LEFT
from repro.operators.predicates import as_constant_equality
from repro.operators.select import Selection
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.columns import INT64_MAX, INT64_MIN, TAG_INT


class PredicateIndexMOp(MOp):
    """Implements selections over one input channel via predicate indexing."""

    kind = "σ-index"

    def __init__(self, instances):
        super().__init__(instances)
        input_ids = set()
        for instance in self.instances:
            if not isinstance(instance.operator, Selection):
                raise PlanError("PredicateIndexMOp implements selections only")
            input_ids.add(instance.inputs[0].stream_id)
        # All selections must read streams that arrive on one channel; with
        # singleton channels that means the same stream (the sσ condition).
        self._input_ids = input_ids

    def make_executor(self, wiring: Wiring) -> "PredicateIndexExecutor":
        return PredicateIndexExecutor(self, wiring)


class PredicateIndexExecutor(MOpExecutor):
    """Hash-indexed + sequential predicate evaluation."""

    def __init__(self, mop: PredicateIndexMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        # Per input stream: hash indexes per attribute, plus sequential list.
        # Keyed by (channel_id, position) so decode is one tuple lookup.
        #   indexes: attr_position -> {constant -> [instances]}
        #   scans:   [(compiled predicate, instance)]
        self._by_slot: dict[
            tuple[int, int],
            tuple[dict[int, dict[object, list[OpInstance]]], list],
        ] = {}
        for instance in mop.instances:
            stream = instance.inputs[0]
            channel = wiring.channel_of(stream)
            slot = (channel.channel_id, channel.position_of(stream))
            indexes, scans = self._by_slot.setdefault(slot, ({}, []))
            schema = stream.schema
            shape = as_constant_equality(instance.operator.predicate)
            if shape is not None and shape[0] == LEFT and shape[1] in schema:
                position = schema.index_of(shape[1])
                indexes.setdefault(position, defaultdict(list))[shape[2]].append(
                    instance
                )
            else:
                compiled = instance.operator.predicate.compile(schema)
                scans.append((compiled, instance))
        # Batch-path tables mirroring ``_by_slot`` with all per-hit work
        # precomputed: an index probe yields ready-made (channel, mask)
        # routes — the per-channel OR of every satisfied instance's output
        # bit — and scans carry their single route.  Output bits are
        # pairwise-disjoint (one bit per output stream), so the pre-merged
        # routes equal what per-tuple ``OutputCollector.emit`` produces.
        collector = self._collector
        self._batch_slots: dict[tuple[int, int], tuple[list, list]] = {}
        for slot, (indexes, scans) in self._by_slot.items():
            probe_tables = []
            for attr_position, table in indexes.items():
                routes_by_constant = {}
                for constant, instances in table.items():
                    merged: dict[int, list] = {}
                    order: list[int] = []
                    for instance in instances:
                        out_channel, bit = collector.route(instance.output)
                        entry = merged.get(out_channel.channel_id)
                        if entry is None:
                            merged[out_channel.channel_id] = [out_channel, bit]
                            order.append(out_channel.channel_id)
                        else:
                            entry[1] |= bit
                    routes_by_constant[constant] = tuple(
                        (merged[channel_id][0], merged[channel_id][1])
                        for channel_id in order
                    )
                probe_tables.append((attr_position, routes_by_constant))
            scan_routes = [
                (compiled, collector.route(instance.output))
                for compiled, instance in scans
            ]
            self._batch_slots[slot] = (probe_tables, scan_routes)
        # Fast path for the dominant shape — every selection fully indexed
        # on one attribute of one singleton input channel: (channel_id,
        # attr position, routes-by-constant), else None.
        self._fast_probe = None
        if len(self._batch_slots) == 1:
            (slot, (probe_tables, scan_routes)), = self._batch_slots.items()
            if slot[1] == 0 and len(probe_tables) == 1 and not scan_routes:
                self._fast_probe = (slot[0], *probe_tables[0])
        # Columnar probe: the fast-probe constants packed as int64, so an
        # arriving 'q' column is filtered with one vectorized ``np.isin``
        # and only the hit rows materialize.  Disabled (None) when any
        # constant is not a plain in-range int — bools are excluded on
        # purpose (``True`` hashes like ``1``, and int64 packing would
        # conflate them); such predicates keep the per-row dict probe.
        self._fast_constants = None
        if self._fast_probe is not None:
            constants = list(self._fast_probe[2])
            if constants and all(
                type(constant) is int and INT64_MIN <= constant <= INT64_MAX
                for constant in constants
            ):
                self._fast_constants = np.array(
                    sorted(constants), dtype=np.int64
                )
        # Batch-path memo: (channel_id, membership) -> resolved slot list.
        # ``_batch_slots`` is immutable for the executor's lifetime, so the
        # bit-scan resolution runs once per distinct mask ever.
        self._slots_by_mask: dict[tuple[int, int], list] = {}

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        mask = channel_tuple.membership
        tuple_ = channel_tuple.tuple
        values = tuple_.values
        emissions = []
        channel_id = channel.channel_id
        for position in range(channel.capacity):
            if not mask & (1 << position):
                continue
            slot = self._by_slot.get((channel_id, position))
            if slot is None:
                continue
            indexes, scans = slot
            for attr_position, table in indexes.items():
                matched = table.get(values[attr_position])
                if matched:
                    for instance in matched:
                        emissions.append((instance.output, tuple_))
            for compiled, instance in scans:
                if compiled(tuple_, None, None):
                    emissions.append((instance.output, tuple_))
        return self._collector.emit(emissions)

    def can_process_columns(self, channel: Channel, batch) -> bool:
        """Whether :meth:`process_columns` handles this packed batch: the
        fast probe covers the channel, the constants packed as int64, and
        the probed attribute arrived as an int column."""
        fast = self._fast_probe
        if (
            fast is None
            or self._fast_constants is None
            or channel.channel_id != fast[0]
            or channel.capacity != 1
        ):
            return False
        return batch.columns[fast[1]][0] == TAG_INT

    def process_columns(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Vectorized columnar probe: one ``np.isin`` over the packed
        attribute column selects the hit rows; only those materialize.

        Bucket contents and order match :meth:`process_batch`'s fast path
        exactly — hits keep arrival order (``np.nonzero`` is ascending)
        and route through the same precomputed routes-by-constant table.
        """
        __, attr_position, routes_by_constant = self._fast_probe
        column = batch.columns[attr_position][1]
        hit_indexes = np.nonzero(np.isin(column, self._fast_constants))[0]
        if not hit_indexes.size:
            return []
        rows = batch.take_rows(hit_indexes).tuples()
        hit_values = column[hit_indexes].tolist()
        grouped: dict[int, list[ChannelTuple]] = {}
        order: list[tuple[Channel, list[ChannelTuple]]] = []
        for tuple_, value in zip(rows, hit_values):
            for out_channel, out_mask in routes_by_constant[value]:
                out_id = out_channel.channel_id
                bucket = grouped.get(out_id)
                if bucket is None:
                    bucket = grouped[out_id] = []
                    order.append((out_channel, bucket))
                bucket.append(ChannelTuple(tuple_, out_mask))
        return order

    def process_batch(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Vectorized probe: slot resolution once per distinct mask, one
        hash probe per indexed attribute per tuple, pre-merged routes.

        Emission merging matches per-tuple :meth:`process` exactly — the
        single-probe case (the common one) reuses the precomputed routes
        verbatim; multi-hit tuples OR the per-channel masks in
        first-appearance order, which is what ``OutputCollector.emit`` does
        for disjoint bits over identical content.
        """
        channel_id = channel.channel_id
        fast = self._fast_probe
        if fast is not None and channel_id == fast[0] and channel.capacity == 1:
            # Singleton channel (membership is always bit 0), one attribute
            # index, no scans: one dict probe per tuple, routes prebuilt.
            __, attr_position, routes_by_constant = fast
            grouped = {}
            order = []
            for channel_tuple in batch:
                tuple_ = channel_tuple.tuple
                routes = routes_by_constant.get(tuple_.values[attr_position])
                if routes is None:
                    continue
                for out_channel, out_mask in routes:
                    out_id = out_channel.channel_id
                    bucket = grouped.get(out_id)
                    if bucket is None:
                        bucket = grouped[out_id] = []
                        order.append((out_channel, bucket))
                    bucket.append(ChannelTuple(tuple_, out_mask))
            return order
        batch_slots = self._batch_slots
        slots_by_mask = self._slots_by_mask
        grouped: dict[int, list[ChannelTuple]] = {}
        order: list[tuple[Channel, list[ChannelTuple]]] = []
        for channel_tuple in batch:
            mask = channel_tuple.membership
            slots = slots_by_mask.get((channel_id, mask))
            if slots is None:
                slots = []
                remaining = mask
                position = 0
                while remaining:
                    if remaining & 1:
                        slot = batch_slots.get((channel_id, position))
                        if slot is not None:
                            slots.append(slot)
                    remaining >>= 1
                    position += 1
                slots_by_mask[(channel_id, mask)] = slots
            if not slots:
                continue
            tuple_ = channel_tuple.tuple
            values = tuple_.values
            hits = None
            multi = False
            for probe_tables, scan_routes in slots:
                for attr_position, routes_by_constant in probe_tables:
                    routes = routes_by_constant.get(values[attr_position])
                    if routes is not None:
                        if hits is None:
                            hits = routes
                        else:
                            hits = list(hits) + list(routes)
                            multi = True
                for compiled, route in scan_routes:
                    if compiled(tuple_, None, None):
                        if hits is None:
                            hits = (route,)
                        else:
                            hits = list(hits) + [route]
                            multi = True
            if hits is None:
                continue
            if multi:
                merged: dict[int, list] = {}
                merged_order: list[int] = []
                for out_channel, out_mask in hits:
                    entry = merged.get(out_channel.channel_id)
                    if entry is None:
                        merged[out_channel.channel_id] = [out_channel, out_mask]
                        merged_order.append(out_channel.channel_id)
                    else:
                        entry[1] |= out_mask
                hits = [
                    (merged[cid][0], merged[cid][1]) for cid in merged_order
                ]
            for out_channel, out_mask in hits:
                out_id = out_channel.channel_id
                bucket = grouped.get(out_id)
                if bucket is None:
                    bucket = grouped[out_id] = []
                    order.append((out_channel, bucket))
                bucket.append(ChannelTuple(tuple_, out_mask))
        return order
