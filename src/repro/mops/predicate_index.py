"""Predicate indexing for selections — the sσ target m-op [10, 16].

Implements a set of selection operators reading the same stream (or channel).
Equality predicates ``attr = c`` are organized into per-attribute hash
indexes: an arriving tuple performs one dictionary lookup per indexed
attribute and receives *all* satisfied selections at once, instead of
evaluating each predicate one by one.  Non-indexable predicates (inequality,
complex conditions — the paper's hybrid workload assumes the starting
conditions are not indexable, §5.3) are evaluated sequentially, still inside
the single m-op.

This m-op also realizes Cayuga's *FR index* once automata are translated to
plans (§4.3): the forward-edge predicates of a state become the selections
downstream of the state's operator, and applying sσ to them builds exactly
the per-state predicate index.

When several output streams share a channel, the emission path produces one
channel tuple whose membership encodes all satisfied selections — the σ{s1..sn}
behaviour of Fig. 6(c).
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.expressions import LEFT
from repro.operators.predicates import as_constant_equality
from repro.operators.select import Selection
from repro.streams.channel import Channel, ChannelTuple


class PredicateIndexMOp(MOp):
    """Implements selections over one input channel via predicate indexing."""

    kind = "σ-index"

    def __init__(self, instances):
        super().__init__(instances)
        input_ids = set()
        for instance in self.instances:
            if not isinstance(instance.operator, Selection):
                raise PlanError("PredicateIndexMOp implements selections only")
            input_ids.add(instance.inputs[0].stream_id)
        # All selections must read streams that arrive on one channel; with
        # singleton channels that means the same stream (the sσ condition).
        self._input_ids = input_ids

    def make_executor(self, wiring: Wiring) -> "PredicateIndexExecutor":
        return PredicateIndexExecutor(self, wiring)


class PredicateIndexExecutor(MOpExecutor):
    """Hash-indexed + sequential predicate evaluation."""

    def __init__(self, mop: PredicateIndexMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        # Per input stream: hash indexes per attribute, plus sequential list.
        # Keyed by (channel_id, position) so decode is one tuple lookup.
        #   indexes: attr_position -> {constant -> [instances]}
        #   scans:   [(compiled predicate, instance)]
        self._by_slot: dict[
            tuple[int, int],
            tuple[dict[int, dict[object, list[OpInstance]]], list],
        ] = {}
        for instance in mop.instances:
            stream = instance.inputs[0]
            channel = wiring.channel_of(stream)
            slot = (channel.channel_id, channel.position_of(stream))
            indexes, scans = self._by_slot.setdefault(slot, ({}, []))
            schema = stream.schema
            shape = as_constant_equality(instance.operator.predicate)
            if shape is not None and shape[0] == LEFT and shape[1] in schema:
                position = schema.index_of(shape[1])
                indexes.setdefault(position, defaultdict(list))[shape[2]].append(
                    instance
                )
            else:
                compiled = instance.operator.predicate.compile(schema)
                scans.append((compiled, instance))

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        mask = channel_tuple.membership
        tuple_ = channel_tuple.tuple
        values = tuple_.values
        emissions = []
        channel_id = channel.channel_id
        for position in range(channel.capacity):
            if not mask & (1 << position):
                continue
            slot = self._by_slot.get((channel_id, position))
            if slot is None:
                continue
            indexes, scans = slot
            for attr_position, table in indexes.items():
                matched = table.get(values[attr_position])
                if matched:
                    for instance in matched:
                        emissions.append((instance.output, tuple_))
            for compiled, instance in scans:
                if compiled(tuple_, None, None):
                    emissions.append((instance.output, tuple_))
        return self._collector.emit(emissions)
