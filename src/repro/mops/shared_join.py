"""Shared evaluation of window joins — the s⋈ target m-op [12].

Implements a set of join operators that read the same two streams and share
the join predicate, but have potentially different window lengths.  Following
Hammad et al.'s shared-window-join scheme, the m-op keeps **one** pair of
window buffers sized for the *largest* window; each produced pair is then
routed to exactly the queries whose window admits its timestamp distance.

Queries are held sorted by window length, so the admitted set for a match at
distance ``d`` is the suffix of queries with ``window >= d`` — found with a
single binary search rather than a per-query check.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.join import SlidingWindowJoin, HashBuffer
from repro.operators.predicates import (
    TruePredicate,
    as_cross_equality,
    as_duration_bound,
    conjunction,
    conjuncts,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple


class SharedJoinMOp(MOp):
    """Implements same-predicate joins with shared buffers and routed output."""

    kind = "⋈-shared"

    def __init__(self, instances):
        super().__init__(instances)
        predicates = set()
        lefts = set()
        rights = set()
        for instance in self.instances:
            operator = instance.operator
            if not isinstance(operator, SlidingWindowJoin):
                raise PlanError("SharedJoinMOp implements joins only")
            predicates.add(operator.predicate)
            lefts.add(instance.inputs[0].stream_id)
            rights.add(instance.inputs[1].stream_id)
        if len(predicates) != 1:
            raise PlanError("s⋈ merges joins with the same join predicate")
        if len(lefts) != 1 or len(rights) != 1:
            raise PlanError("s⋈ merges joins reading the same two streams")

    def make_executor(self, wiring: Wiring) -> "SharedJoinExecutor":
        return SharedJoinExecutor(self, wiring)


class SharedJoinExecutor(MOpExecutor):
    """Max-window buffers; per-match binary search over query windows."""

    def __init__(self, mop: SharedJoinMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        left_stream, right_stream = first.inputs
        left_schema, right_schema = left_stream.schema, right_stream.schema
        left_channel = wiring.channel_of(left_stream)
        right_channel = wiring.channel_of(right_stream)
        self._left_slot = (
            left_channel.channel_id,
            1 << left_channel.position_of(left_stream),
        )
        self._right_slot = (
            right_channel.channel_id,
            1 << right_channel.position_of(right_stream),
        )
        self.output_schema = first.operator.output_schema([left_schema, right_schema])

        # Queries sorted ascending by effective window (operator window
        # tightened by any duration conjunct).
        def effective_window(operator: SlidingWindowJoin) -> int:
            window = operator.window.length
            for part in conjuncts(operator.predicate):
                bound = as_duration_bound(part)
                if bound is not None:
                    window = min(window, bound)
            return window

        ordered = sorted(
            mop.instances, key=lambda instance: effective_window(instance.operator)
        )
        self._windows = [effective_window(i.operator) for i in ordered]
        self._ordered = ordered
        self._max_window = self._windows[-1]

        # Predicate decomposition, as in JoinExecutor (shared predicate).
        predicate = first.operator.predicate
        cross = None
        leftover = []
        for part in conjuncts(predicate):
            if as_duration_bound(part) is not None:
                continue  # handled by per-query window routing
            if cross is None:
                pair = as_cross_equality(part)
                if pair is not None:
                    cross = pair
                    continue
            leftover.append(part)
        if cross is not None:
            self._left_key_position = left_schema.index_of(cross[0])
            self._right_key_position = right_schema.index_of(cross[1])
        else:
            self._left_key_position = self._right_key_position = None
        residual = conjunction(leftover)
        self._residual = (
            None
            if isinstance(residual, TruePredicate)
            else residual.compile(left_schema, right_schema)
        )
        self._left_buffer = HashBuffer(self._left_key_position)
        self._right_buffer = HashBuffer(self._right_key_position)

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        emissions = []
        mask = channel_tuple.membership
        tuple_ = channel_tuple.tuple
        channel_id = channel.channel_id
        left_id, left_bit = self._left_slot
        right_id, right_bit = self._right_slot
        if channel_id == left_id and mask & left_bit:
            self._probe(tuple_, probe_right=True, emissions=emissions)
        if channel_id == right_id and mask & right_bit:
            self._probe(tuple_, probe_right=False, emissions=emissions)
        return self._collector.emit(emissions)

    def _probe(self, tuple_: StreamTuple, probe_right: bool, emissions: list) -> None:
        threshold = tuple_.ts - self._max_window
        if probe_right:
            own, other = self._left_buffer, self._right_buffer
            key_position = self._left_key_position
        else:
            own, other = self._right_buffer, self._left_buffer
            key_position = self._right_key_position
        if key_position is not None:
            candidates = other.probe(tuple_.values[key_position], threshold)
        else:
            candidates = other.all_live(threshold)
        residual = self._residual
        windows = self._windows
        ordered = self._ordered
        for candidate in candidates:
            if probe_right:
                left_tuple, right_tuple = tuple_, candidate
            else:
                left_tuple, right_tuple = candidate, tuple_
            if residual is not None and not residual(left_tuple, right_tuple, None):
                continue
            distance = abs(left_tuple.ts - right_tuple.ts)
            start = bisect_left(windows, distance)
            if start >= len(ordered):
                continue
            output = StreamTuple(
                self.output_schema,
                left_tuple.values + right_tuple.values,
                max(left_tuple.ts, right_tuple.ts),
            )
            for instance in ordered[start:]:
                emissions.append((instance.output, output))
        own.insert(tuple_, threshold)

    @property
    def state_size(self) -> int:
        return len(self._left_buffer) + len(self._right_buffer)

    def snapshot_state(self):
        return (self._left_buffer, self._right_buffer)

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._left_buffer, self._right_buffer = snapshot
