"""Channel-based selection and projection m-ops — the cσ / cπ targets (§3.3).

Both implement a set of *identically defined* unary operators whose input
streams are encoded in one channel.  The work is done **once per channel
tuple** regardless of how many streams the tuple belongs to:

- cσ evaluates the (single, shared) predicate once and passes the tuple
  through with a translated membership mask,
- cπ applies the (single, shared) schema map once, "keeping the membership
  component of t intact in the output tuple" — the paper's π example of a
  free encode/decode step (§3.1).
"""

from __future__ import annotations

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.mops.masking import MaskTranslator
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple


def _validate_channel_unary(instances, operator_type, rule_name: str):
    definitions = {instance.operator.definition() for instance in instances}
    if len(definitions) != 1:
        raise PlanError(f"{rule_name} merges operators with the same definition")
    for instance in instances:
        if not isinstance(instance.operator, operator_type):
            raise PlanError(
                f"{rule_name} expects {operator_type.__name__} instances"
            )


class ChannelSelectionMOp(MOp):
    """One predicate evaluation per channel tuple, for n selections."""

    kind = "σ-channel"

    def __init__(self, instances):
        super().__init__(instances)
        _validate_channel_unary(self.instances, Selection, "cσ")

    def make_executor(self, wiring: Wiring) -> "ChannelSelectionExecutor":
        return ChannelSelectionExecutor(self, wiring)


class ChannelSelectionExecutor(MOpExecutor):
    def __init__(self, mop: ChannelSelectionMOp, wiring: Wiring):
        self.mop = mop
        collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        input_channel = wiring.channel_of(first.inputs[0])
        self._channel_id = input_channel.channel_id
        self._translator = MaskTranslator(input_channel, mop.instances, collector)
        self._test = first.operator.predicate.compile(first.inputs[0].schema)

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        if channel.channel_id != self._channel_id:
            return []
        mask = channel_tuple.membership & self._translator.consumed_mask
        if not mask:
            return []
        tuple_ = channel_tuple.tuple
        if not self._test(tuple_, None, None):
            return []
        return self._translator.emit(tuple_, mask)

    def process_batch(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        if channel.channel_id != self._channel_id:
            return []
        test = self._test
        consumed = self._translator.consumed_mask
        passed = []
        for channel_tuple in batch:
            mask = channel_tuple.membership & consumed
            if not mask:
                continue
            tuple_ = channel_tuple.tuple
            if test(tuple_, None, None):
                passed.append((tuple_, mask))
        return self._translator.emit_batch(passed)


class ChannelProjectionMOp(MOp):
    """One schema-map evaluation per channel tuple, for n projections."""

    kind = "π-channel"

    def __init__(self, instances):
        super().__init__(instances)
        _validate_channel_unary(self.instances, Projection, "cπ")

    def make_executor(self, wiring: Wiring) -> "ChannelProjectionExecutor":
        return ChannelProjectionExecutor(self, wiring)


class ChannelProjectionExecutor(MOpExecutor):
    def __init__(self, mop: ChannelProjectionMOp, wiring: Wiring):
        self.mop = mop
        collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        input_schema = first.inputs[0].schema
        input_channel = wiring.channel_of(first.inputs[0])
        self._channel_id = input_channel.channel_id
        self._translator = MaskTranslator(input_channel, mop.instances, collector)
        operator: Projection = first.operator
        self.output_schema = operator.output_schema([input_schema])
        self._evaluators = [
            expression.compile(input_schema) for __, expression in operator.items
        ]

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        if channel.channel_id != self._channel_id:
            return []
        mask = channel_tuple.membership & self._translator.consumed_mask
        if not mask:
            return []
        tuple_ = channel_tuple.tuple
        values = [evaluate(tuple_, None, None) for evaluate in self._evaluators]
        output = StreamTuple(self.output_schema, values, tuple_.ts)
        return self._translator.emit(output, mask)

    def process_batch(
        self, channel: Channel, batch
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        if channel.channel_id != self._channel_id:
            return []
        evaluators = self._evaluators
        output_schema = self.output_schema
        consumed = self._translator.consumed_mask
        projected = []
        for channel_tuple in batch:
            mask = channel_tuple.membership & consumed
            if not mask:
                continue
            tuple_ = channel_tuple.tuple
            values = [evaluate(tuple_, None, None) for evaluate in evaluators]
            projected.append(
                (StreamTuple(output_schema, values, tuple_.ts), mask)
            )
        return self._translator.emit_batch(projected)
