"""Channel-based sequence / iteration m-op — the c; and cµ targets (§4.4).

This is the paper's headline new technique: event pattern queries "that can
be evaluated more efficiently in the form of RUMOR query plans than in the
Cayuga engine", because the evaluation strategy is outside the automaton
model.

The m-op implements a set of identically defined ``;`` (or ``µ``) operators
whose *first* input streams are sharable and encoded in one channel, and
whose *second* input stream is the same (§4.4, conditions (a)–(c) of the c;
rule).  Because the definitions are identical, all member queries advance in
lock-step: an arriving left channel tuple opens **one** instance whose mask
records which queries it belongs to; each right event is then matched **once**
per instance — not once per query — and every emission carries the instance's
mask translated into output-channel positions.  This is why the throughput of
the channel plan in Fig. 11(b) is flat in the starting-condition selectivity:
"the amount of work for processing [a channel tuple] in µ{1..n} remains the
same, regardless of how many stream tuples it encodes".
"""

from __future__ import annotations

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.mops.masking import MaskTranslator
from repro.operators.iterate import Iterate
from repro.operators.sequence import Sequence
from repro.streams.channel import Channel, ChannelTuple


class ChannelSequenceMOp(MOp):
    """Shared instance state for n same-definition ``;`` / ``µ`` operators."""

    kind = ";-channel"

    def __init__(self, instances):
        super().__init__(instances)
        definitions = {instance.operator.definition() for instance in self.instances}
        if len(definitions) != 1:
            raise PlanError("c;/cµ merge operators with the same definition")
        operator = self.instances[0].operator
        if not isinstance(operator, (Sequence, Iterate)):
            raise PlanError("ChannelSequenceMOp implements ; and µ operators only")
        rights = {instance.inputs[1].stream_id for instance in self.instances}
        if len(rights) != 1:
            raise PlanError(
                "c;/cµ require the same second input stream for all operators"
            )
        self._is_iterate = isinstance(operator, Iterate)

    def make_executor(self, wiring: Wiring) -> "ChannelSequenceExecutor":
        return ChannelSequenceExecutor(self, wiring)


class ChannelSequenceExecutor(MOpExecutor):
    """One mask-aware inner executor servicing every member query."""

    def __init__(self, mop: ChannelSequenceMOp, wiring: Wiring):
        self.mop = mop
        collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        left_stream, right_stream = first.inputs
        left_channel = wiring.channel_of(left_stream)
        right_channel = wiring.channel_of(right_stream)
        for instance in mop.instances:
            if wiring.channel_of(instance.inputs[0]) is not left_channel:
                raise PlanError(
                    "c;/cµ require all first input streams on one channel"
                )
        self._left_channel_id = left_channel.channel_id
        self._right_slot = (
            right_channel.channel_id,
            1 << right_channel.position_of(right_stream),
        )
        self._translator = MaskTranslator(left_channel, mop.instances, collector)
        operator = first.operator
        self._inner = operator.executor([left_stream.schema, right_stream.schema])
        self._advance = (
            self._inner.advance if isinstance(operator, Iterate) else self._inner.match
        )
        self._collector = collector

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        results: list[tuple[Channel, ChannelTuple]] = []
        channel_id = channel.channel_id
        if channel_id == self._left_channel_id:
            mask = channel_tuple.membership & self._translator.consumed_mask
            if mask:
                # Decoding step + one shared instance for all member queries.
                self._inner.insert(channel_tuple.tuple, mask=mask)
        right_id, right_bit = self._right_slot
        if channel_id == right_id and channel_tuple.membership & right_bit:
            emissions = []
            for output, mask in self._advance(channel_tuple.tuple):
                emissions.extend(
                    (out_channel, out_mask, output)
                    for out_channel, out_mask in self._translator.translate(mask)
                )
            results.extend(self._collector.emit_masked(emissions))
        return results

    @property
    def state_size(self) -> int:
        return self._inner.state_size

    def snapshot_state(self):
        return self._inner.snapshot_state()

    def restore_state(self, snapshot) -> None:
        self._inner.restore_state(snapshot)
