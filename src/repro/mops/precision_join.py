"""Precision-sharing join — the c⋈ target m-op [14].

Implements a set of identically defined window joins whose input streams are
sharable and channel-encoded (on either or both sides).  Tuples are buffered
**once** per channel tuple, with their membership masks; each candidate pair
is evaluated **once**, and the member queries that own the pair are recovered
exactly from the two masks — Krishnamurthy et al.'s "precision sharing":
shared work with neither false positives nor duplicate results.

A query ``k`` owns a pair iff the left tuple belongs to ``k``'s left stream
and the right tuple belongs to ``k``'s right stream.  With both channels
aligned (query ``k`` at position ``k`` on both sides) this is a single
``left_mask & right_mask``; the general case uses precomputed position maps.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.core.mop import MOp, MOpExecutor, OutputCollector, Wiring
from repro.errors import PlanError
from repro.operators.join import SlidingWindowJoin
from repro.operators.predicates import (
    TruePredicate,
    as_cross_equality,
    as_duration_bound,
    conjunction,
    conjuncts,
)
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.tuples import StreamTuple


class MaskedBuffer:
    """A window buffer of (tuple, mask) entries with optional hash key."""

    __slots__ = ("_key_position", "_buckets", "_fifo")

    def __init__(self, key_position: Optional[int]):
        self._key_position = key_position
        self._buckets: dict = {}
        self._fifo: deque = deque()

    def insert(self, tuple_: StreamTuple, mask: int, threshold: int) -> None:
        fifo = self._fifo
        buckets = self._buckets
        while fifo and fifo[0][0] < threshold:
            __, old_key, old_entry = fifo.popleft()
            bucket = buckets.get(old_key)
            if bucket and bucket[0] is old_entry:
                bucket.popleft()
                if not bucket:
                    del buckets[old_key]
        key = (
            tuple_.values[self._key_position]
            if self._key_position is not None
            else None
        )
        entry = (tuple_, mask)
        bucket = buckets.get(key)
        if bucket is None:
            bucket = deque()
            buckets[key] = bucket
        bucket.append(entry)
        fifo.append((tuple_.ts, key, entry))

    def probe(self, key, threshold: int) -> list[tuple[StreamTuple, int]]:
        bucket = self._buckets.get(key)
        if not bucket:
            return []
        while bucket and bucket[0][0].ts < threshold:
            bucket.popleft()
        if not bucket:
            del self._buckets[key]
            return []
        return list(bucket)

    def all_live(self, threshold: int) -> list[tuple[StreamTuple, int]]:
        return self.probe(None, threshold)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class PrecisionJoinMOp(MOp):
    """Mask-precise shared evaluation of same-definition windowed joins."""

    kind = "⋈-channel"

    def __init__(self, instances):
        super().__init__(instances)
        definitions = {instance.operator.definition() for instance in self.instances}
        if len(definitions) != 1:
            raise PlanError("c⋈ merges joins with the same definition")
        if not isinstance(self.instances[0].operator, SlidingWindowJoin):
            raise PlanError("PrecisionJoinMOp implements joins only")

    def make_executor(self, wiring: Wiring) -> "PrecisionJoinExecutor":
        return PrecisionJoinExecutor(self, wiring)


class PrecisionJoinExecutor(MOpExecutor):
    def __init__(self, mop: PrecisionJoinMOp, wiring: Wiring):
        self.mop = mop
        self._collector = OutputCollector(wiring, mop.output_streams)
        first = mop.instances[0]
        left_stream, right_stream = first.inputs
        left_schema, right_schema = left_stream.schema, right_stream.schema
        left_channel = wiring.channel_of(left_stream)
        right_channel = wiring.channel_of(right_stream)
        for instance in mop.instances:
            if wiring.channel_of(instance.inputs[0]) is not left_channel:
                raise PlanError("c⋈ requires all left inputs on one channel")
            if wiring.channel_of(instance.inputs[1]) is not right_channel:
                raise PlanError("c⋈ requires all right inputs on one channel")
        self._left_channel = left_channel
        self._right_channel = right_channel
        self.output_schema = first.operator.output_schema([left_schema, right_schema])

        # Per instance: (left bit, right bit, output stream).
        self._routes = [
            (
                1 << left_channel.position_of(instance.inputs[0]),
                1 << right_channel.position_of(instance.inputs[1]),
                instance.output,
            )
            for instance in mop.instances
        ]

        operator: SlidingWindowJoin = first.operator
        window = operator.window.length
        cross = None
        leftover = []
        for part in conjuncts(operator.predicate):
            bound = as_duration_bound(part)
            if bound is not None:
                window = min(window, bound)
                continue
            if cross is None:
                pair = as_cross_equality(part)
                if pair is not None:
                    cross = pair
                    continue
            leftover.append(part)
        self._window = window
        if cross is not None:
            self._left_key_position = left_schema.index_of(cross[0])
            self._right_key_position = right_schema.index_of(cross[1])
        else:
            self._left_key_position = self._right_key_position = None
        residual = conjunction(leftover)
        self._residual = (
            None
            if isinstance(residual, TruePredicate)
            else residual.compile(left_schema, right_schema)
        )
        self._left_buffer = MaskedBuffer(self._left_key_position)
        self._right_buffer = MaskedBuffer(self._right_key_position)

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        emissions = []
        channel_id = channel.channel_id
        # A stream may appear on both sides (self-join); handle each role.
        if channel_id == self._left_channel.channel_id:
            self._probe(channel_tuple, from_left=True, emissions=emissions)
        if channel_id == self._right_channel.channel_id:
            self._probe(channel_tuple, from_left=False, emissions=emissions)
        return self._collector.emit(emissions)

    def _probe(self, channel_tuple: ChannelTuple, from_left: bool, emissions: list):
        tuple_ = channel_tuple.tuple
        mask = channel_tuple.membership
        threshold = tuple_.ts - self._window
        if from_left:
            own, other = self._left_buffer, self._right_buffer
            key_position = self._left_key_position
        else:
            own, other = self._right_buffer, self._left_buffer
            key_position = self._right_key_position
        if key_position is not None:
            candidates = other.probe(tuple_.values[key_position], threshold)
        else:
            candidates = other.all_live(threshold)
        residual = self._residual
        for candidate_tuple, candidate_mask in candidates:
            if from_left:
                left_tuple, left_mask = tuple_, mask
                right_tuple, right_mask = candidate_tuple, candidate_mask
            else:
                left_tuple, left_mask = candidate_tuple, candidate_mask
                right_tuple, right_mask = tuple_, mask
            if residual is not None and not residual(left_tuple, right_tuple, None):
                continue
            output = None
            for left_bit, right_bit, output_stream in self._routes:
                if left_mask & left_bit and right_mask & right_bit:
                    if output is None:
                        output = StreamTuple(
                            self.output_schema,
                            left_tuple.values + right_tuple.values,
                            max(left_tuple.ts, right_tuple.ts),
                        )
                    emissions.append((output_stream, output))
        own.insert(tuple_, mask, threshold)

    @property
    def state_size(self) -> int:
        return len(self._left_buffer) + len(self._right_buffer)

    def snapshot_state(self):
        return (self._left_buffer, self._right_buffer)

    def restore_state(self, snapshot) -> None:
        if snapshot is not None:
            self._left_buffer, self._right_buffer = snapshot
