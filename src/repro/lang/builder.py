"""Fluent builder for logical queries.

Example — the paper's Query 1 (§4.1)::

    from repro.lang import from_stream
    from repro.operators import left, right, last, attr, lit, Comparison

    query = (
        from_stream("CPU")
        .aggregate("avg", "load", over=5, by=("pid",), name="load")
        .where(Comparison(attr("load"), "<", lit(20)))           # θs
        .iterate(
            from_stream("SMOOTHED"),
            forward=Comparison(left("pid"), "==", right("pid"))
            & Comparison(right("load"), ">", last("load")),
            rebind=Comparison(left("pid"), "==", right("pid"))
            & Comparison(right("load"), ">", last("load")),
        )
        .where(Comparison(attr("load"), ">", lit(90)))           # stop
        .named("query1")
    )
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import QueryLanguageError
from repro.lang.ast import (
    AggregateNode,
    IterateNode,
    JoinNode,
    LogicalQuery,
    ProjectNode,
    QueryNode,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.operators.expressions import Expression
from repro.operators.predicates import Predicate


class QueryBuilder:
    """Immutable fluent wrapper around a :class:`QueryNode`."""

    def __init__(self, node: QueryNode):
        self._node = node

    @property
    def node(self) -> QueryNode:
        return self._node

    # -- unary steps -------------------------------------------------------------

    def where(self, predicate: Predicate) -> "QueryBuilder":
        """Append a selection."""
        return QueryBuilder(SelectNode(self._node, predicate))

    def select(self, items: Sequence[tuple[str, Expression]]) -> "QueryBuilder":
        """Append a projection / schema map."""
        return QueryBuilder(ProjectNode(self._node, tuple(items)))

    def aggregate(
        self,
        function: str,
        target: Optional[str],
        over: int,
        by: Sequence[str] = (),
        name: Optional[str] = None,
    ) -> "QueryBuilder":
        """Append a sliding-window aggregate (window length ``over``)."""
        return QueryBuilder(
            AggregateNode(self._node, function, target, over, tuple(by), name)
        )

    # -- binary steps ---------------------------------------------------------------

    def join(
        self, other: "QueryBuilder | QueryNode", on: Predicate, within: int
    ) -> "QueryBuilder":
        """Windowed join with another stream expression."""
        return QueryBuilder(JoinNode(self._node, _node_of(other), on, within))

    def followed_by(
        self,
        other: "QueryBuilder | QueryNode",
        matching: Predicate,
        consume_on_match: bool = True,
    ) -> "QueryBuilder":
        """Cayuga sequence: this expression's events followed by ``other``'s."""
        return QueryBuilder(
            SequenceNode(self._node, _node_of(other), matching, consume_on_match)
        )

    def iterate(
        self,
        other: "QueryBuilder | QueryNode",
        forward: Predicate,
        rebind: Predicate,
    ) -> "QueryBuilder":
        """Cayuga iteration: build unbounded sequences of ``other``'s events."""
        return QueryBuilder(
            IterateNode(self._node, _node_of(other), forward, rebind)
        )

    # -- finalization ------------------------------------------------------------------

    def named(self, query_id: str) -> LogicalQuery:
        """Finish the pipeline as a registered query."""
        return LogicalQuery(query_id, self._node)

    def __repr__(self):
        return f"QueryBuilder({self._node!r})"


def _node_of(value: "QueryBuilder | QueryNode") -> QueryNode:
    if isinstance(value, QueryBuilder):
        return value.node
    if isinstance(value, QueryNode):
        return value
    raise QueryLanguageError(
        f"expected a QueryBuilder or QueryNode, got {type(value).__name__}"
    )


def from_stream(name: str) -> QueryBuilder:
    """Start a pipeline from a named source stream."""
    return QueryBuilder(SourceNode(name))
