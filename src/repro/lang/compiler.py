"""Compiling logical queries onto a query plan.

``compile_query`` walks the AST bottom-up, appending one operator instance
per node to the target plan (all wrapped in naive single-instance m-ops —
the unoptimized starting point of §2.1).  Source nodes resolve against the
caller's name → :class:`~repro.streams.stream.StreamDef` map; the same map
also resolves *derived* stream names, so a query can reference a stream
produced by an earlier compilation (Query 1's ``SMOOTHED``, §4.1) — register
it via the ``publish`` argument.
"""

from __future__ import annotations

from typing import Optional

from repro.core.plan import QueryPlan
from repro.errors import QueryLanguageError
from repro.lang.ast import (
    AggregateNode,
    IterateNode,
    JoinNode,
    LogicalQuery,
    ProjectNode,
    QueryNode,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.iterate import Iterate
from repro.operators.join import SlidingWindowJoin
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.stream import StreamDef


def as_logical(query, query_id: Optional[str] = None) -> LogicalQuery:
    """Normalize pipeline-language text or a :class:`LogicalQuery` to the AST.

    Text requires an explicit ``query_id`` (it becomes the query's name); a
    logical query passed alongside a mismatching ``query_id`` is rejected.
    """
    if isinstance(query, str):
        from repro.lang.parser import parse_query

        if not query_id:
            raise QueryLanguageError(
                "compiling query text requires an explicit query_id"
            )
        return parse_query(query, query_id)
    if query_id is not None and query.query_id != query_id:
        raise QueryLanguageError(
            f"query is named {query.query_id!r} but {query_id!r} was requested"
        )
    return query


def compile_into(
    query,
    plan: QueryPlan,
    streams: dict[str, StreamDef],
    query_id: Optional[str] = None,
    mark_output: bool = True,
    publish: Optional[str] = None,
) -> tuple[StreamDef, list]:
    """Compile a query — text or :class:`LogicalQuery` — into a *live* plan.

    The online-runtime entry point: accepts either pipeline-language text
    (parsed with ``query_id`` as the name) or an already-built logical query,
    grafts its operators onto ``plan``, and returns both the output stream
    and the list of freshly-added m-ops — the dirty set the incremental
    optimizer scopes its fixpoint to.
    """
    query = as_logical(query, query_id)
    before = len(plan.mops)
    output = compile_query(
        query, plan, streams, mark_output=mark_output, publish=publish
    )
    return output, list(plan.mops[before:])


def compile_query(
    query: LogicalQuery,
    plan: QueryPlan,
    streams: dict[str, StreamDef],
    mark_output: bool = True,
    publish: Optional[str] = None,
) -> StreamDef:
    """Append ``query``'s operators to ``plan``; returns the output stream.

    ``streams`` maps stream names (sources or previously published derived
    streams) to plan streams.  With ``publish`` set, the query's output
    stream is added to ``streams`` under that name for later queries.
    """
    output = _compile_node(query.root, plan, streams, query.query_id)
    if mark_output:
        plan.mark_output(output, query.query_id)
    if publish:
        if publish in streams:
            raise QueryLanguageError(f"stream name {publish!r} already registered")
        streams[publish] = output
    return output


def _compile_node(
    node: QueryNode,
    plan: QueryPlan,
    streams: dict[str, StreamDef],
    query_id: str,
) -> StreamDef:
    if isinstance(node, SourceNode):
        try:
            return streams[node.name]
        except KeyError:
            raise QueryLanguageError(
                f"unknown stream {node.name!r}; register it in the stream map"
            ) from None
    if isinstance(node, SelectNode):
        upstream = _compile_node(node.input, plan, streams, query_id)
        return plan.add_operator(
            Selection(node.predicate), [upstream], query_id=query_id
        )
    if isinstance(node, ProjectNode):
        upstream = _compile_node(node.input, plan, streams, query_id)
        return plan.add_operator(
            Projection(list(node.items)), [upstream], query_id=query_id
        )
    if isinstance(node, AggregateNode):
        upstream = _compile_node(node.input, plan, streams, query_id)
        operator = SlidingWindowAggregate(
            node.function,
            node.target,
            TimeWindow(node.window),
            group_by=node.group_by,
            output_name=node.output_name,
        )
        return plan.add_operator(operator, [upstream], query_id=query_id)
    if isinstance(node, JoinNode):
        left = _compile_node(node.left, plan, streams, query_id)
        right = _compile_node(node.right, plan, streams, query_id)
        operator = SlidingWindowJoin(node.predicate, TimeWindow(node.window))
        return plan.add_operator(operator, [left, right], query_id=query_id)
    if isinstance(node, SequenceNode):
        left = _compile_node(node.left, plan, streams, query_id)
        right = _compile_node(node.right, plan, streams, query_id)
        operator = Sequence(node.predicate, consume_on_match=node.consume_on_match)
        return plan.add_operator(operator, [left, right], query_id=query_id)
    if isinstance(node, IterateNode):
        left = _compile_node(node.left, plan, streams, query_id)
        right = _compile_node(node.right, plan, streams, query_id)
        operator = Iterate(node.forward, node.rebind)
        return plan.add_operator(operator, [left, right], query_id=query_id)
    raise QueryLanguageError(f"cannot compile node type {type(node).__name__}")
