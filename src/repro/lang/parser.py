"""A small pipeline text language for stream queries.

Grammar (keywords case-insensitive, ``#`` starts a line comment)::

    query      := FROM source clause*
    source     := IDENT | '(' query ')'
    clause     := WHERE predicate
                | SELECT item (',' item)*
                | AGG IDENT '(' (IDENT | '*') ')' OVER INT [BY idents] [AS IDENT]
                | JOIN source ON predicate WITHIN INT
                | SEQ source MATCHING predicate [KEEP]
                | MU  source FORWARD predicate REBIND predicate
    item       := expression [AS IDENT]
    predicate  := disjunction
    disjunction:= conjunction (OR conjunction)*
    conjunction:= negation (AND negation)*
    negation   := NOT negation | comparison | '(' predicate ')' | TRUE | FALSE
               |  WITHIN INT                       # duration predicate
    comparison := expression op expression          # op ∈ == != < <= > >=
    expression := term (('+'|'-') term)*
    term       := factor (('*'|'/'|'%') factor)*
    factor     := NUMBER | attref | '(' expression ')'
    attref     := [('left'|'right'|'last') '.'] IDENT

Bare identifiers reference the (left) input tuple; ``left.x`` / ``right.x`` /
``last.x`` give explicit sides for binary operators (``last`` is the µ
rebind target, paper §4.2).
"""

from __future__ import annotations

import re
from typing import Optional

from repro.errors import ParseError
from repro.lang.ast import (
    AggregateNode,
    IterateNode,
    JoinNode,
    LogicalQuery,
    ProjectNode,
    QueryNode,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.operators.expressions import (
    Arith,
    AttrRef,
    Expression,
    LAST,
    LEFT,
    Literal,
    RIGHT,
)
from repro.operators.predicates import (
    And,
    Comparison,
    DurationWithin,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
)

_KEYWORDS = {
    "FROM", "WHERE", "SELECT", "AGG", "OVER", "BY", "AS", "JOIN", "ON",
    "WITHIN", "SEQ", "MATCHING", "KEEP", "MU", "FORWARD", "REBIND",
    "AND", "OR", "NOT", "TRUE", "FALSE",
}

_SIDES = {"left": LEFT, "right": RIGHT, "last": LAST}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op>==|!=|<=|>=|<|>|\+|-|\*|/|%|\(|\)|,|\.)
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind  # 'number' | 'ident' | 'keyword' | 'op' | 'end'
        self.value = value
        self.position = position

    def __repr__(self):
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError("unexpected character", position, text)
        if match.lastgroup != "ws":
            value = match.group()
            if match.lastgroup == "ident" and value.upper() in _KEYWORDS:
                tokens.append(_Token("keyword", value.upper(), position))
            else:
                tokens.append(_Token(match.lastgroup, value, position))
        position = match.end()
    tokens.append(_Token("end", "", position))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers ------------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self.peek()
        if token.kind == "keyword" and token.value in keywords:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, keyword: str) -> None:
        token = self.advance()
        if token.kind != "keyword" or token.value != keyword:
            raise ParseError(
                f"expected {keyword}, got {token.value!r}", token.position, self.text
            )

    def expect_op(self, op: str) -> None:
        token = self.advance()
        if token.kind != "op" or token.value != op:
            raise ParseError(
                f"expected {op!r}, got {token.value!r}", token.position, self.text
            )

    def expect_ident(self) -> str:
        token = self.advance()
        if token.kind != "ident":
            raise ParseError(
                f"expected identifier, got {token.value!r}", token.position, self.text
            )
        return token.value

    def expect_int(self) -> int:
        token = self.advance()
        if token.kind != "number" or "." in token.value:
            raise ParseError(
                f"expected integer, got {token.value!r}", token.position, self.text
            )
        return int(token.value)

    # -- query ----------------------------------------------------------------------

    def parse_query(self) -> QueryNode:
        self.expect_keyword("FROM")
        node = self._source()
        while True:
            keyword = self.accept_keyword(
                "WHERE", "SELECT", "AGG", "JOIN", "SEQ", "MU"
            )
            if keyword is None:
                return node
            if keyword == "WHERE":
                node = SelectNode(node, self.parse_predicate())
            elif keyword == "SELECT":
                node = ProjectNode(node, tuple(self._select_items()))
            elif keyword == "AGG":
                node = self._aggregate(node)
            elif keyword == "JOIN":
                other = self._source()
                self.expect_keyword("ON")
                predicate = self.parse_predicate()
                self.expect_keyword("WITHIN")
                window = self.expect_int()
                node = JoinNode(node, other, predicate, window)
            elif keyword == "SEQ":
                other = self._source()
                self.expect_keyword("MATCHING")
                predicate = self.parse_predicate()
                consume = self.accept_keyword("KEEP") is None
                node = SequenceNode(node, other, predicate, consume)
            else:  # MU
                other = self._source()
                self.expect_keyword("FORWARD")
                forward = self.parse_predicate()
                self.expect_keyword("REBIND")
                rebind = self.parse_predicate()
                node = IterateNode(node, other, forward, rebind)

    def _source(self) -> QueryNode:
        token = self.peek()
        if token.kind == "op" and token.value == "(":
            self.advance()
            node = self.parse_query()
            self.expect_op(")")
            return node
        return SourceNode(self.expect_ident())

    def _select_items(self):
        items = []
        while True:
            expression = self.parse_expression()
            if self.accept_keyword("AS"):
                name = self.expect_ident()
            elif isinstance(expression, AttrRef):
                name = expression.name
            else:
                token = self.peek()
                raise ParseError(
                    "computed SELECT items need AS <name>", token.position, self.text
                )
            items.append((name, expression))
            token = self.peek()
            if token.kind == "op" and token.value == ",":
                self.advance()
                continue
            return items

    def _aggregate(self, node: QueryNode) -> AggregateNode:
        function = self.expect_ident().lower()
        self.expect_op("(")
        token = self.peek()
        if token.kind == "op" and token.value == "*":
            self.advance()
            target = None
        else:
            target = self.expect_ident()
        self.expect_op(")")
        self.expect_keyword("OVER")
        window = self.expect_int()
        group_by: tuple[str, ...] = ()
        if self.accept_keyword("BY"):
            names = [self.expect_ident()]
            while self.peek().kind == "op" and self.peek().value == ",":
                self.advance()
                names.append(self.expect_ident())
            group_by = tuple(names)
        output_name = None
        if self.accept_keyword("AS"):
            output_name = self.expect_ident()
        return AggregateNode(node, function, target, window, group_by, output_name)

    # -- predicates ---------------------------------------------------------------

    def parse_predicate(self) -> Predicate:
        return self._disjunction()

    def _disjunction(self) -> Predicate:
        parts = [self._conjunction()]
        while self.accept_keyword("OR"):
            parts.append(self._conjunction())
        if len(parts) == 1:
            return parts[0]
        return Or(tuple(parts))

    def _conjunction(self) -> Predicate:
        parts = [self._negation()]
        while self.accept_keyword("AND"):
            parts.append(self._negation())
        return conjunction(parts)

    def _negation(self) -> Predicate:
        if self.accept_keyword("NOT"):
            return Not(self._negation())
        if self.accept_keyword("TRUE"):
            return TruePredicate()
        if self.accept_keyword("FALSE"):
            return FalsePredicate()
        if self.accept_keyword("WITHIN"):
            return DurationWithin(self.expect_int())
        token = self.peek()
        if token.kind == "op" and token.value == "(":
            # Could be a parenthesized predicate or expression; try predicate
            # first by scanning for a comparison at this nesting level.
            saved = self.index
            self.advance()
            try:
                predicate = self.parse_predicate()
                self.expect_op(")")
                return predicate
            except ParseError:
                self.index = saved
        return self._comparison()

    def _comparison(self) -> Predicate:
        lhs = self.parse_expression()
        token = self.advance()
        if token.kind != "op" or token.value not in ("==", "!=", "<", "<=", ">", ">="):
            raise ParseError(
                f"expected comparison operator, got {token.value!r}",
                token.position,
                self.text,
            )
        rhs = self.parse_expression()
        return Comparison(lhs, token.value, rhs)

    # -- expressions -----------------------------------------------------------------

    def parse_expression(self) -> Expression:
        node = self._term()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("+", "-"):
                self.advance()
                node = Arith(node, token.value, self._term())
            else:
                return node

    def _term(self) -> Expression:
        node = self._factor()
        while True:
            token = self.peek()
            if token.kind == "op" and token.value in ("*", "/", "%"):
                self.advance()
                node = Arith(node, token.value, self._factor())
            else:
                return node

    def _factor(self) -> Expression:
        token = self.advance()
        if token.kind == "number":
            value = float(token.value) if "." in token.value else int(token.value)
            return Literal(value)
        if token.kind == "op" and token.value == "(":
            node = self.parse_expression()
            self.expect_op(")")
            return node
        if token.kind == "ident":
            name = token.value
            if name in _SIDES and self.peek().kind == "op" and self.peek().value == ".":
                self.advance()
                return AttrRef(_SIDES[name], self.expect_ident())
            return AttrRef(LEFT, name)
        raise ParseError(
            f"unexpected token {token.value!r}", token.position, self.text
        )

    def expect_end(self) -> None:
        token = self.peek()
        if token.kind != "end":
            raise ParseError(
                f"trailing input starting at {token.value!r}",
                token.position,
                self.text,
            )


def parse_query(text: str, query_id: str) -> LogicalQuery:
    """Parse one pipeline query; raises :class:`ParseError` on bad input."""
    parser = _Parser(text)
    node = parser.parse_query()
    parser.expect_end()
    return LogicalQuery(query_id, node)


def parse_predicate(text: str) -> Predicate:
    """Parse a standalone predicate (useful for tests and interactive use)."""
    parser = _Parser(text)
    predicate = parser.parse_predicate()
    parser.expect_end()
    return predicate
