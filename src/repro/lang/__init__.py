"""Query language front end.

The paper assumes logical queries "specified by a user through a query
language such as CQL" (§2.1) without fixing a surface syntax.  This package
provides three equivalent entry points that all produce the same logical
query AST, compiled onto a :class:`~repro.core.plan.QueryPlan`:

- :mod:`~repro.lang.ast` — the logical operator tree,
- :mod:`~repro.lang.builder` — a fluent Python builder
  (``from_stream("S").where(...).followed_by(...)``),
- :mod:`~repro.lang.parser` — a small pipeline text language::

      FROM CPU
        AGG avg(load) OVER 60 BY pid AS load
        WHERE load < 20
        MU SMOOTHED FORWARD left.pid == right.pid AND right.load > last.load
                    REBIND left.pid == right.pid AND right.load > last.load
        WHERE load > 90

- :mod:`~repro.lang.compiler` — compilation of the AST into plan operators.
"""

from repro.lang.ast import (
    AggregateNode,
    IterateNode,
    JoinNode,
    LogicalQuery,
    ProjectNode,
    QueryNode,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.lang.builder import QueryBuilder, from_stream
from repro.lang.parser import parse_predicate, parse_query
from repro.lang.compiler import as_logical, compile_into, compile_query

__all__ = [
    "QueryNode",
    "SourceNode",
    "SelectNode",
    "ProjectNode",
    "AggregateNode",
    "JoinNode",
    "SequenceNode",
    "IterateNode",
    "LogicalQuery",
    "QueryBuilder",
    "from_stream",
    "parse_query",
    "parse_predicate",
    "compile_query",
    "compile_into",
    "as_logical",
]
