"""The logical query AST.

A logical query is a tree of operator nodes over named source streams.  The
tree is deliberately close to the physical operator suite — RUMOR's rewrite
power lives in the *multi-query* optimizer, not in single-query logical
rewrites — but stays independent of any plan, so one AST can be compiled into
many plans (or the same plan many times with different parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import QueryLanguageError
from repro.operators.expressions import Expression
from repro.operators.predicates import Predicate


class QueryNode:
    """Base class for logical operator nodes."""

    def children(self) -> tuple["QueryNode", ...]:
        return ()

    def sources(self) -> list[str]:
        """Names of all source streams referenced under this node."""
        names: list[str] = []
        stack: list[QueryNode] = [self]
        while stack:
            node = stack.pop()
            if isinstance(node, SourceNode):
                if node.name not in names:
                    names.append(node.name)
            else:
                stack.extend(reversed(node.children()))
        return names


@dataclass(frozen=True)
class SourceNode(QueryNode):
    """A reference to a named source stream."""

    name: str

    def __repr__(self):
        return f"FROM {self.name}"


@dataclass(frozen=True)
class SelectNode(QueryNode):
    """σ over the input node."""

    input: QueryNode
    predicate: Predicate

    def children(self):
        return (self.input,)

    def __repr__(self):
        return f"{self.input!r} WHERE {self.predicate!r}"


@dataclass(frozen=True)
class ProjectNode(QueryNode):
    """π (schema map) over the input node."""

    input: QueryNode
    items: tuple[tuple[str, Expression], ...]

    def children(self):
        return (self.input,)

    def __repr__(self):
        inner = ", ".join(f"{e!r} AS {n}" for n, e in self.items)
        return f"{self.input!r} SELECT {inner}"


@dataclass(frozen=True)
class AggregateNode(QueryNode):
    """Sliding-window α over the input node."""

    input: QueryNode
    function: str
    target: Optional[str]
    window: int
    group_by: tuple[str, ...] = ()
    output_name: Optional[str] = None

    def children(self):
        return (self.input,)

    def __repr__(self):
        by = f" BY {','.join(self.group_by)}" if self.group_by else ""
        return (
            f"{self.input!r} AGG {self.function}({self.target}) "
            f"OVER {self.window}{by}"
        )


@dataclass(frozen=True)
class JoinNode(QueryNode):
    """Sliding-window ⋈ of two nodes."""

    left: QueryNode
    right: QueryNode
    predicate: Predicate
    window: int

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return f"({self.left!r}) JOIN ({self.right!r}) ON {self.predicate!r}"


@dataclass(frozen=True)
class SequenceNode(QueryNode):
    """Cayuga ``;`` of two nodes."""

    left: QueryNode
    right: QueryNode
    predicate: Predicate
    consume_on_match: bool = True

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return f"({self.left!r}) SEQ ({self.right!r}) MATCHING {self.predicate!r}"


@dataclass(frozen=True)
class IterateNode(QueryNode):
    """Cayuga ``µ`` of two nodes."""

    left: QueryNode
    right: QueryNode
    forward: Predicate
    rebind: Predicate

    def children(self):
        return (self.left, self.right)

    def __repr__(self):
        return (
            f"({self.left!r}) MU ({self.right!r}) "
            f"FORWARD {self.forward!r} REBIND {self.rebind!r}"
        )


@dataclass
class LogicalQuery:
    """A named logical query: the unit users register with the system."""

    query_id: str
    root: QueryNode

    def __post_init__(self):
        if not self.query_id:
            raise QueryLanguageError("query_id must be non-empty")

    def sources(self) -> list[str]:
        return self.root.sources()

    def __repr__(self):
        return f"LogicalQuery({self.query_id!r}: {self.root!r})"
