"""Command-line interface for the RUMOR engine.

Three subcommands cover the downstream-user loop:

``optimize``
    Read pipeline queries from a file (one per non-empty line, or ``---``
    separated blocks; ``name: query`` prefixes name them), print the naive
    plan, the optimized plan, the applied rules, and the cost-model estimate.

``run``
    Optimize and then execute the queries over a generated source — the
    synthetic S/T streams or the simulated performance-counter trace — and
    print per-query output counts and throughput.

``figures``
    Alias for :mod:`repro.bench.figures` (regenerate the paper's figures).

``churn``
    Serve a dynamic workload with the online lifecycle runtime: queries
    arrive and depart (Poisson churn) while the stream flows, each change
    handled by incremental re-optimization and state-preserving engine
    migration — or, with ``--full-rebuild``, by the stop-the-world baseline.
    ``--shards N`` serves over the sharded lifecycle runtime with periodic
    component rebalancing (``--policy count|throughput``); ``--process``
    pushes each shard onto a worker process behind the command protocol;
    ``--durable`` / ``--checkpoint-every N`` / ``--checkpoint-dir DIR``
    enable the durable checkpoint subsystem (crashed workers restore from
    their last checkpoint and replay the write-ahead-log suffix instead of
    losing operator state); ``--coordinator-journal DIR`` journals the
    coordinator's own state so a killed serve cold-starts with ``--resume``
    and picks up exactly where the journal ends; ``--grow-at`` /
    ``--shrink-at N`` script an elastic resize (add or drain a worker)
    after N lifecycle events; ``--observe`` switches on the telemetry
    subsystem, with ``--metrics-out`` / ``--trace-out`` / ``--events-out``
    exporting metrics snapshots, the serve's span tree, and the structured
    lifecycle event log.

``serve``
    Boot the live serving front door: an asyncio socket server accepts
    client connections pushing events over the length-prefixed JSON
    protocol (credit-based backpressure per connection), a single pump
    thread drives the runtime against the wall clock, and idle-period
    heartbeats keep failure detection running between arrivals.  With
    ``--schedule`` the server drives itself through its own socket using
    a loadgen schedule; ``--verify`` replays the recorded arrivals
    offline and asserts byte-identical outputs.  Shares the runtime
    option group with ``churn`` (``--shards`` / ``--process`` /
    ``--durable`` / ``--coordinator-journal`` / ``--observe`` …).

``loadgen``
    Drive an already-running ``serve`` front door over its socket with a
    BRAD-style epoch arrival schedule (zipf stream skew, diurnal rate
    curve, or bursty spikes); stream schemas come from the server's
    welcome message.

``bench-throughput``
    Regenerate ``BENCH_throughput.json``: events/sec for batched vs
    per-tuple dispatch across the zipf, perfmon-hybrid and churn workloads,
    asserting batched dispatch stays output-identical and clears its
    speedup floor on the optimized zipf workload.

``bench-shard``
    Regenerate ``BENCH_shard.json``: aggregate throughput of the sharded
    engine (1/2/4 shards) vs the single-engine batched baseline on the
    partitionable zipf workload, plus a live sharded churn serve with
    load-levelling rebalances — asserting sharded outputs stay identical
    and the 4-shard speedup clears its floor.

``bench-obs``
    Regenerate ``BENCH_obs.json``: throughput of observed vs unobserved
    dispatch in interleaved trials, asserting telemetry stays output-
    identical and its batched-dispatch overhead under the 5% ceiling.

``bench-serve``
    Regenerate ``BENCH_serve.json``: sustained live-ingest events/sec
    with p50/p99 ship latency (verified byte-identical against offline
    replay), plus overlapped (pipelined) vs serial command fan-out on a
    multi-worker fleet.

Examples::

    python -m repro.cli optimize queries.rql
    python -m repro.cli run queries.rql --source perfmon --events 20000
    python -m repro.cli figures 10c --full
    python -m repro.cli churn --events 5000 --arrival-rate 0.02 --latency
    python -m repro.cli bench-throughput --scale smoke
    python -m repro.cli bench-shard --scale smoke
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.core.cost import CostModel
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.engine.executor import StreamEngine
from repro.errors import RumorError
from repro.lang.compiler import compile_query
from repro.lang.parser import parse_query
from repro.streams.schema import Schema
from repro.streams.sources import StreamSource
from repro.workloads.perfmon import CPU_SCHEMA, PerfmonDataset
from repro.workloads.synthetic import interleaved_events, synthetic_schema

#: Default schemas the CLI exposes as source streams.
DEFAULT_SOURCES: dict[str, Schema] = {
    "S": synthetic_schema(),
    "T": synthetic_schema(),
    "CPU": CPU_SCHEMA,
}


def load_queries(path: str) -> list[tuple[str, str]]:
    """Parse a query file into (name, text) pairs.

    Blocks are separated by lines containing only ``---``; a block may start
    with ``name:`` to name its query, otherwise queries are numbered q0, q1…
    Lines starting with ``#`` are comments.
    """
    with open(path) as handle:
        content = handle.read()
    blocks = [block.strip() for block in content.split("---")]
    queries: list[tuple[str, str]] = []
    for index, block in enumerate(blocks):
        lines = [
            line for line in block.splitlines() if not line.strip().startswith("#")
        ]
        text = "\n".join(lines).strip()
        if not text:
            continue
        name = f"q{index}"
        first = text.split("\n", 1)[0]
        if ":" in first and not first.upper().startswith("FROM"):
            name, __, rest = text.partition(":")
            name = name.strip()
            text = rest.strip()
        queries.append((name, text))
    return queries


def build_plan(
    queries: list[tuple[str, str]],
    sources: Optional[dict[str, Schema]] = None,
) -> tuple[QueryPlan, dict]:
    """Compile queries onto a fresh plan with the default source streams."""
    plan = QueryPlan()
    schemas = sources or DEFAULT_SOURCES
    streams = {
        name: plan.add_source(name, schema) for name, schema in schemas.items()
    }
    for name, text in queries:
        logical = parse_query(text, name)
        compile_query(logical, plan, streams)
    return plan, streams


def cmd_optimize(args: argparse.Namespace) -> int:
    queries = load_queries(args.queries)
    if not queries:
        print("no queries found", file=sys.stderr)
        return 1
    plan, __ = build_plan(queries)
    model = CostModel()
    naive_cost = model.plan_cost(plan)
    print("== naive plan ==")
    print(plan.describe())
    report = Optimizer().optimize(plan)
    optimized_cost = model.plan_cost(plan)
    print(f"\n== optimized plan ({report}) ==")
    print(plan.describe())
    print(
        f"\nestimated cost: {naive_cost:.2f} -> {optimized_cost:.2f} "
        f"({naive_cost / max(optimized_cost, 1e-9):.1f}x cheaper)"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    import numpy as np

    queries = load_queries(args.queries)
    if not queries:
        print("no queries found", file=sys.stderr)
        return 1
    plan, streams = build_plan(queries)
    Optimizer().optimize(plan)

    if args.source == "synthetic":
        events = interleaved_events(
            synthetic_schema(), args.events, np.random.default_rng(args.seed)
        )
        by_name: dict[str, list] = {}
        for name, tuple_ in events:
            by_name.setdefault(name, []).append(tuple_)
        sources = [
            StreamSource(plan.channel_of(streams[name]), tuples,
                         member_streams=[streams[name]])
            for name, tuples in by_name.items()
        ]
    else:  # perfmon
        processes = max(1, args.events // 600)
        seconds = max(1, args.events // max(1, processes))
        dataset = PerfmonDataset(
            processes=processes, duration_seconds=seconds, seed=args.seed
        )
        sources = [
            StreamSource(
                plan.channel_of(streams["CPU"]),
                list(dataset.generate()),
                member_streams=[streams["CPU"]],
            )
        ]

    engine = StreamEngine(plan, capture_outputs=args.show_outputs > 0)
    stats = engine.run(sources)
    print(stats)
    for query_id, count in sorted(stats.outputs_by_query.items()):
        print(f"  {query_id}: {count} outputs")
        if args.show_outputs:
            for output in engine.captured.get(query_id, [])[: args.show_outputs]:
                print(f"    {output.as_dict()} @ {output.ts}")
    return 0


def _add_runtime_options(parser: argparse.ArgumentParser) -> None:
    """Attach the shared runtime option group to a subcommand.

    ``churn``, ``serve`` and the bench subcommands that boot a live
    runtime all accept the same knobs; keeping them in one group means
    one help text, one set of defaults, and one
    :func:`_runtime_config_from_args` translation into
    :class:`~repro.runtime.RuntimeConfig`.
    """
    group = parser.add_argument_group(
        "runtime options",
        "shared across churn/serve/bench subcommands; validated together "
        "through repro.RuntimeConfig",
    )
    group.add_argument(
        "--shards",
        type=int,
        default=None,
        help="serve over N shards with the sharded lifecycle runtime "
        "(default: 1, or 2 with --process)",
    )
    group.add_argument(
        "--process",
        action="store_true",
        help="run each shard on a worker process (command protocol + "
        "cross-process rebalance)",
    )
    group.add_argument(
        "--data-plane",
        choices=("columnar", "pickle"),
        default="columnar",
        help="process mode: source-run transport — 'columnar' ships packed "
        "columns over shared-memory rings (per-run pickle fallback), "
        "'pickle' forces the legacy tuple wire (the equivalence oracle)",
    )
    group.add_argument(
        "--full-rebuild",
        action="store_true",
        help="stop-the-world baseline: full re-optimization + engine rebuild "
        "on every lifecycle change (loses operator state)",
    )
    group.add_argument(
        "--latency",
        action="store_true",
        help="track and report per-query mean output latency",
    )
    group.add_argument(
        "--durable",
        action="store_true",
        help="process mode: keep a write-ahead log so a crashed worker "
        "recovers by replay instead of blank re-registration",
    )
    group.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="process mode: checkpoint every N batches (implies --durable); "
        "recovery restores the latest checkpoint and replays only the log "
        "suffix",
    )
    group.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="persist checkpoints as files under DIR (implies --durable)",
    )
    group.add_argument(
        "--coordinator-journal",
        default=None,
        metavar="DIR",
        help="process mode: journal the coordinator's own state (placement, "
        "WAL mirror, query catalog) under DIR alongside the checkpoints, "
        "making the whole serve restartable (implies --durable)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="cold-start the coordinator from a previous serve's "
        "--coordinator-journal DIR and serve only the unserved tail of "
        "the schedule",
    )
    group.add_argument(
        "--observe",
        action="store_true",
        help="enable the telemetry subsystem: per-m-op metrics on every "
        "engine, wire-propagated tracing in process mode, and busy-time "
        "heat for the throughput policy",
    )
    group.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the merged metrics snapshot to PATH at the end of the "
        "serve (.jsonl for JSON lines, anything else Prometheus text)",
    )
    group.add_argument(
        "--metrics-every",
        type=int,
        default=0,
        metavar="N",
        help="additionally rewrite --metrics-out every N lifecycle events "
        "(a periodic flush a scraper can poll)",
    )
    group.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="process mode with --observe: write the serve's span tree "
        "(coordinator + workers) as JSONL",
    )
    group.add_argument(
        "--events-out",
        default=None,
        metavar="PATH",
        help="process mode: write the structured lifecycle event log "
        "(register/unregister/rebalance/checkpoint/recovery) as JSONL",
    )


def _runtime_config_from_args(
    args: argparse.Namespace,
    sources: Optional[dict[str, Schema]] = None,
    capture_outputs: bool = False,
):
    """Translate the shared runtime option group into a RuntimeConfig.

    Validation lives in :meth:`RuntimeConfig.validate`, so ``churn`` and
    ``serve`` reject a bad flag combination with the same actionable
    one-liner (e.g. ``--resume`` without ``--coordinator-journal``).
    CLI-only flags (``--grow-at``, ``--trace-out``) are checked by their
    subcommands.
    """
    from repro.runtime import RuntimeConfig

    shards = args.shards
    if shards is None:
        # Default: unsharded serve; a bare --process gets two workers (an
        # explicit --shards 1 --process still means one worker).
        shards = 2 if args.process else 1
    config = RuntimeConfig(
        sources=sources,
        shards=shards,
        process=args.process,
        capture_outputs=capture_outputs,
        track_latency=args.latency,
        incremental=not args.full_rebuild,
        observe=args.observe,
        data_plane=args.data_plane,
        durable=args.durable,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
        journal=args.coordinator_journal,
        resume=args.resume,
    )
    config.validate()
    return config


def _dump_metrics(runtime, path: str) -> None:
    """Write the runtime's current metrics snapshot to ``path``.

    Format follows the extension: ``.jsonl`` gets JSON lines, anything else
    the Prometheus text exposition.  Each call rewrites the file with the
    latest cumulative snapshot (the node-exporter convention), so periodic
    flushes are safe to point a scraper at.
    """
    from repro.obs.metrics import to_jsonl, to_prometheus

    snapshot = runtime.metrics_registry().snapshot()
    text = (
        to_jsonl(snapshot) if path.endswith(".jsonl")
        else to_prometheus(snapshot)
    )
    with open(path, "w") as handle:
        handle.write(text)


def cmd_churn(args: argparse.Namespace) -> int:
    from repro.runtime import open_runtime
    from repro.workloads.churn import ChurnWorkload, drive

    workload = ChurnWorkload(
        arrival_rate=args.arrival_rate,
        mean_lifetime=args.mean_lifetime,
        horizon=args.events,
        initial_queries=args.initial_queries,
        seed=args.seed,
    )
    sources = {"S": workload.schema, "T": workload.schema}
    config = _runtime_config_from_args(args, sources)
    if (args.grow_at or args.shrink_at) and not args.process:
        from repro.errors import LifecycleError

        raise LifecycleError(
            "--grow-at/--shrink-at require --process (only the "
            "process-mode coordinator resizes its worker fleet)"
        )
    if (args.trace_out or args.events_out) and not args.process:
        from repro.errors import LifecycleError

        raise LifecycleError(
            "--trace-out/--events-out require --process (spans and the "
            "structured event log live on the process-mode coordinator)"
        )
    if args.trace_out and not args.observe:
        from repro.errors import LifecycleError

        raise LifecycleError("--trace-out requires --observe")
    if config.resolved_shards > 1 or args.process:
        return _churn_sharded(args, config, workload)
    runtime = open_runtime(config)
    mode = "full-rebuild" if args.full_rebuild else "incremental"
    print(
        f"churn: {workload.registrations()} queries over {args.events} events "
        f"({mode} mode)"
    )
    applied = 0
    for event in drive(runtime, workload.stream_events(), workload.schedule()):
        applied += 1
        if args.metrics_out and args.metrics_every:
            if applied % args.metrics_every == 0:
                _dump_metrics(runtime, args.metrics_out)
        if args.verbose:
            print(f"  [{event.at:>6}] {event.kind:<10} {event.query_id:<6} "
                  f"active={len(runtime.active_queries)} "
                  f"state={runtime.state_size}")
    stats = runtime.stats
    print(stats)
    if args.metrics_out:
        _dump_metrics(runtime, args.metrics_out)
        print(f"  wrote metrics to {args.metrics_out}")
    print(
        f"  migrations: {stats.migrations}, "
        f"final active queries: {len(runtime.active_queries)}, "
        f"final state: {runtime.state_size}"
    )
    reused = sum(m.reused_executors for m in runtime.migration_log)
    built = sum(m.built_executors for m in runtime.migration_log)
    migration_seconds = sum(m.elapsed_seconds for m in runtime.migration_log)
    print(
        f"  executors reused: {reused}, built: {built}, "
        f"migration overhead: {migration_seconds * 1e3:.1f}ms"
    )
    print(
        f"  m-ops considered by re-optimization: "
        f"{sum(report.mops_considered for report in runtime.reports)}"
    )
    if args.latency:
        for query_id in sorted(stats.outputs_by_query):
            mean = stats.mean_latency(query_id)
            print(
                f"  {query_id}: {stats.outputs_by_query[query_id]} outputs, "
                f"mean latency {mean * 1e6:.1f}µs"
            )
    return 0


def _churn_sharded(args: argparse.Namespace, config, workload) -> int:
    """Serve the churn schedule over shards — in-process or worker processes."""
    from repro.runtime import open_runtime
    from repro.shard import QueryCountPolicy, ThroughputPolicy
    from repro.workloads.churn import drive_sharded

    stream_events = workload.stream_events()
    churn_events = workload.schedule()
    runtime = open_runtime(config)
    if args.process and args.resume:
        from repro.workloads.churn import resume_tail

        stream_events, churn_events = resume_tail(
            stream_events,
            churn_events,
            runtime.input_positions(),
            runtime.lifecycle_ops,
        )
        print(
            f"  resumed from {args.coordinator_journal}: "
            f"{len(stream_events)} stream events and "
            f"{len(churn_events)} lifecycle events left to serve"
        )
    heat = "busy" if args.observe else "outputs"
    policy = (
        ThroughputPolicy(heat=heat)
        if args.policy == "throughput"
        else QueryCountPolicy()
    )
    mode = "process" if args.process else "in-process"
    print(
        f"churn: {workload.registrations()} queries over {args.events} events, "
        f"{config.resolved_shards} shards ({mode} mode, {args.policy} rebalancing "
        f"every {args.rebalance_every} lifecycle events)"
    )
    try:
        applied = 0
        for event in drive_sharded(
            runtime,
            stream_events,
            churn_events,
            rebalance_every=args.rebalance_every,
            policy=policy,
            # Process mode: keep failure detection alive across idle gaps
            # (the inline per-event heartbeat only fires when data flows).
            heartbeat_interval=0.25 if args.process else 0.0,
        ):
            applied += 1
            if args.grow_at and applied == args.grow_at:
                new_shard = runtime.add_worker(policy=policy)
                print(
                    f"  [{event.at:>6}] scale-up: shard {new_shard} joined "
                    f"(loads={runtime.shard_loads()})"
                )
            if args.shrink_at and applied == args.shrink_at:
                if runtime.n_shards > 1:
                    departing = min(
                        runtime.shard_ids(),
                        key=lambda shard: len(runtime.queries_on(shard)),
                    )
                    retired = runtime.remove_worker(departing, policy=policy)
                    print(
                        f"  [{event.at:>6}] scale-down: shard "
                        f"{retired['shard']} retired, drained "
                        f"{len(retired['moved'])} queries "
                        f"(loads={runtime.shard_loads()})"
                    )
                else:
                    print("  --shrink-at skipped: only one worker left")
            if args.metrics_out and args.metrics_every:
                if applied % args.metrics_every == 0:
                    _dump_metrics(runtime, args.metrics_out)
            if args.verbose:
                print(
                    f"  [{event.at:>6}] {event.kind:<10} {event.query_id:<6} "
                    f"loads={runtime.shard_loads()}"
                )
        stats = (
            runtime.collect_stats() if args.process else runtime.stats
        )
        print(stats)
        print(
            f"  final active queries: {len(runtime.active_queries)}, "
            f"loads: {runtime.shard_loads()}, "
            f"rebalances: {runtime.rebalances}, "
            f"oversized alerts: {policy.oversized_alerts}"
        )
        if args.process:
            print(f"  crash recoveries: {runtime.crash_recoveries}")
            for report in runtime.recovery_log:
                print(f"    {report}")
            if runtime.durable:
                runtime.collect_checkpoints()
                print(
                    f"  checkpoints stored: {runtime.checkpoints_stored} "
                    f"({runtime.checkpoint_failures} failures), "
                    f"wal spans: "
                    f"{[runtime.wal_span(s) for s in runtime.shard_ids()]}"
                )
            if args.coordinator_journal:
                print(
                    f"  coordinator journal: {args.coordinator_journal} "
                    f"({runtime._journal.record_count()} records since last "
                    f"snapshot); resume with --resume"
                )
            print(runtime.describe())
        if args.metrics_out:
            _dump_metrics(runtime, args.metrics_out)
            print(f"  wrote metrics to {args.metrics_out}")
        if args.trace_out:
            # Drain the workers' spans into the coordinator recorder first
            # so the export holds the complete coordinator→worker tree.
            runtime.shard_telemetry()
            with open(args.trace_out, "w") as handle:
                handle.write(runtime.recorder.to_jsonl())
            print(
                f"  wrote {len(runtime.recorder.spans)} spans to "
                f"{args.trace_out}"
            )
        if args.events_out:
            with open(args.events_out, "w") as handle:
                handle.write(runtime.events.to_jsonl())
            print(
                f"  wrote {len(runtime.events.events)} events to "
                f"{args.events_out}"
            )
    finally:
        if args.process:
            runtime.close()
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    import json
    import pickle
    import time

    from repro.runtime import open_runtime
    from repro.serve import (
        IngestServer,
        ServeSession,
        build_schedule,
        run_loadgen,
        verify_equivalence,
    )

    sources = dict(DEFAULT_SOURCES)
    config = _runtime_config_from_args(
        args, sources, capture_outputs=args.verify
    )
    runtime = open_runtime(config)
    exit_code = 0
    try:
        session = ServeSession(
            runtime, record=True, heartbeat_interval=args.heartbeat_interval
        )
        registered = 0
        if args.queries:
            for name, text in load_queries(args.queries):
                session.submit_register(text, name)
                registered += 1
        mode = "process" if args.process else "in-process"
        with IngestServer(
            session,
            host=args.host,
            port=args.port,
            window=args.window,
            max_run=args.max_run,
        ) as server:
            host, port = server.address
            print(
                f"serving {sorted(sources)} on {host}:{port} "
                f"({config.resolved_shards} shards, {mode} mode, "
                f"{registered} queries)"
            )
            if args.schedule:
                schedule = build_schedule(
                    args.schedule,
                    args.streams,
                    epochs=args.epochs,
                    events_per_epoch=args.events_per_epoch,
                    epoch_seconds=args.epoch_seconds,
                    seed=args.seed,
                )
                stats = run_loadgen(
                    host,
                    port,
                    schedule,
                    sources,
                    seed=args.seed,
                    speedup=args.speedup,
                )
                print(
                    f"  loadgen: {stats['sent_events']} events sent, "
                    f"{stats['accepted_events']} accepted, "
                    f"{stats['credit_waits']} flow-control waits"
                )
            else:
                print(
                    f"  accepting clients for {args.duration:.1f}s "
                    f"(Ctrl-C to finish early)"
                )
                try:
                    time.sleep(args.duration)
                except KeyboardInterrupt:
                    print("  interrupted; draining")
            ingest_stats = server.stats()
        report = session.finish()
        print(
            f"  served {report.events} events in {report.runs} runs "
            f"({report.events_per_second:.0f} ev/s, ship p50 "
            f"{report.ship_p50_ms:.2f}ms / p99 {report.ship_p99_ms:.2f}ms, "
            f"{report.lifecycle_ops} lifecycle ops, "
            f"{report.heartbeats} idle heartbeats)"
        )
        if args.metrics_out:
            from repro.obs.metrics import publish_serve_report

            registry = runtime.metrics_registry()
            publish_serve_report(registry, report)
            from repro.obs.metrics import to_jsonl, to_prometheus

            snapshot = registry.snapshot()
            text = (
                to_jsonl(snapshot)
                if args.metrics_out.endswith(".jsonl")
                else to_prometheus(snapshot)
            )
            with open(args.metrics_out, "w") as handle:
                handle.write(text)
            print(f"  wrote metrics to {args.metrics_out}")
        if args.arrivals_out:
            with open(args.arrivals_out, "wb") as handle:
                pickle.dump(session.log.entries, handle)
            print(
                f"  wrote {len(session.log.entries)} arrival-log entries "
                f"to {args.arrivals_out}"
            )
        if args.verify:
            result = verify_equivalence(
                runtime.captured, session.log, sources
            )
            print(
                f"  verified: {result['outputs']} outputs across "
                f"{result['queries']} queries byte-identical to offline "
                f"replay"
            )
        if args.report_out:
            payload = report.to_dict()
            payload["ingest"] = ingest_stats
            with open(args.report_out, "w") as handle:
                json.dump(payload, handle, indent=2)
            print(f"  wrote report to {args.report_out}")
    finally:
        close = getattr(runtime, "close", None)
        if close is not None:
            close()
    return exit_code


def cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.serve import build_schedule, run_loadgen

    schedule = build_schedule(
        args.schedule,
        args.streams,
        epochs=args.epochs,
        events_per_epoch=args.events_per_epoch,
        epoch_seconds=args.epoch_seconds,
        seed=args.seed,
    )
    print(
        f"loadgen: {args.schedule} schedule, {schedule.total_events} events "
        f"over {len(schedule.epochs)} epochs -> {args.host}:{args.port} "
        f"(speedup {args.speedup:g}x)"
    )
    stats = run_loadgen(
        args.host,
        args.port,
        schedule,
        sources=None,  # schemas come from the server's welcome
        seed=args.seed,
        speedup=args.speedup,
    )
    print(
        f"  sent {stats['sent_events']} events, server accepted "
        f"{stats['accepted_events']}, {stats['credit_waits']} "
        f"flow-control waits"
    )
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.bench.figures import main as figures_main

    argv = list(args.figure)
    if args.full:
        argv.append("--full")
    return figures_main(argv)


def cmd_bench_throughput(args: argparse.Namespace) -> int:
    from repro.bench.throughput import main as throughput_main

    return throughput_main(["--scale", args.scale, "--output", args.output])


def cmd_bench_shard(args: argparse.Namespace) -> int:
    from repro.bench.shard import main as shard_main

    return shard_main(["--scale", args.scale, "--output", args.output])


def cmd_bench_obs(args: argparse.Namespace) -> int:
    from repro.bench.obs import main as obs_main

    return obs_main(["--scale", args.scale, "--output", args.output])


def cmd_bench_serve(args: argparse.Namespace) -> int:
    from repro.bench.serve import main as serve_main

    return serve_main(["--scale", args.scale, "--output", args.output])


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="RUMOR rule-based multi-query optimizer CLI"
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        help="configure logging for the repro tree (one consistent "
        "formatter: timestamp, level, worker process name, logger)",
    )
    parser.add_argument(
        "--log-format",
        choices=["text", "json"],
        default="text",
        help="log line layout: human-readable text or one JSON object "
        "per record",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    optimize = commands.add_parser(
        "optimize", help="compile + optimize queries; print plans and cost"
    )
    optimize.add_argument("queries", help="query file (pipeline language)")
    optimize.set_defaults(handler=cmd_optimize)

    run = commands.add_parser("run", help="optimize and execute queries")
    run.add_argument("queries", help="query file (pipeline language)")
    run.add_argument(
        "--source",
        choices=["synthetic", "perfmon"],
        default="synthetic",
        help="input generator (default: synthetic S/T streams)",
    )
    run.add_argument("--events", type=int, default=10_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--show-outputs",
        type=int,
        default=0,
        metavar="N",
        help="print the first N output tuples per query",
    )
    run.set_defaults(handler=cmd_run)

    figures = commands.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    figures.add_argument("figure", nargs="*", default=["all"])
    figures.add_argument("--full", action="store_true")
    figures.set_defaults(handler=cmd_figures)

    churn = commands.add_parser(
        "churn",
        help="serve a Poisson register/unregister workload with the online "
        "lifecycle runtime",
    )
    churn.add_argument("--events", type=int, default=5_000)
    churn.add_argument(
        "--arrival-rate",
        type=float,
        default=0.01,
        help="query arrivals per timestamp unit (Poisson)",
    )
    churn.add_argument(
        "--mean-lifetime",
        type=float,
        default=1_000.0,
        help="mean query lifetime in timestamp units (exponential)",
    )
    churn.add_argument("--initial-queries", type=int, default=4)
    churn.add_argument("--seed", type=int, default=0)
    _add_runtime_options(churn)
    churn.add_argument(
        "--rebalance-every",
        type=int,
        default=5,
        help="attempt a component rebalance every N lifecycle events "
        "(sharded modes only)",
    )
    churn.add_argument(
        "--policy",
        choices=["count", "throughput"],
        default="count",
        help="rebalance policy: query-count levelling or adaptive "
        "busy-time (move the hottest component off the slowest shard)",
    )
    churn.add_argument(
        "--grow-at",
        type=int,
        default=0,
        metavar="N",
        help="process mode: add one worker after N applied lifecycle "
        "events (scripted elastic scale-out)",
    )
    churn.add_argument(
        "--shrink-at",
        type=int,
        default=0,
        metavar="N",
        help="process mode: drain and retire one worker after N applied "
        "lifecycle events (scripted elastic scale-in)",
    )
    churn.add_argument("--verbose", action="store_true")
    churn.set_defaults(handler=cmd_churn)

    serve = commands.add_parser(
        "serve",
        help="boot the live serving front door: an async socket server "
        "feeding a wall-clock-driven runtime, with credit-based "
        "backpressure and byte-identical replay verification",
    )
    serve.add_argument(
        "queries",
        nargs="?",
        default=None,
        help="optional query file registered at boot (pipeline language)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="listen port (0 binds an ephemeral port and prints it)",
    )
    serve.add_argument(
        "--duration",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long to accept external clients (ignored with --schedule)",
    )
    serve.add_argument(
        "--schedule",
        choices=["zipf", "diurnal", "bursty"],
        default=None,
        help="self-drive: run the named loadgen schedule against this "
        "server's own socket instead of waiting for external clients",
    )
    serve.add_argument("--epochs", type=int, default=10)
    serve.add_argument("--events-per-epoch", type=int, default=500)
    serve.add_argument("--epoch-seconds", type=float, default=1.0)
    serve.add_argument(
        "--speedup",
        type=float,
        default=1.0,
        help="wall-clock compression for --schedule (10 = run the "
        "schedule 10x faster than its declared epoch timing)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--streams",
        nargs="+",
        default=["S", "T"],
        help="streams the self-drive schedule targets",
    )
    serve.add_argument(
        "--window",
        type=int,
        default=1024,
        help="per-connection flow-control credit window (events)",
    )
    serve.add_argument(
        "--max-run",
        type=int,
        default=256,
        help="assembled run size before a buffered stream flushes",
    )
    serve.add_argument(
        "--heartbeat-interval",
        type=float,
        default=0.25,
        help="idle heartbeat cadence in seconds (failure detection "
        "independent of data arrival)",
    )
    serve.add_argument(
        "--verify",
        action="store_true",
        help="capture outputs and assert the serve is byte-identical to "
        "an offline replay of the recorded arrivals",
    )
    serve.add_argument(
        "--arrivals-out",
        default=None,
        metavar="PATH",
        help="pickle the recorded arrival log to PATH",
    )
    serve.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write the serve report (throughput, latency percentiles, "
        "ingest stats) as JSON",
    )
    _add_runtime_options(serve)
    serve.set_defaults(handler=cmd_serve)

    loadgen = commands.add_parser(
        "loadgen",
        help="drive an already-running serve front door over its socket "
        "with a BRAD-style epoch arrival schedule",
    )
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, required=True)
    loadgen.add_argument(
        "--schedule",
        choices=["zipf", "diurnal", "bursty"],
        default="zipf",
    )
    loadgen.add_argument("--epochs", type=int, default=10)
    loadgen.add_argument("--events-per-epoch", type=int, default=500)
    loadgen.add_argument("--epoch-seconds", type=float, default=1.0)
    loadgen.add_argument("--speedup", type=float, default=1.0)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--streams",
        nargs="+",
        default=["S", "T"],
        help="streams the schedule targets (schemas come from the "
        "server's welcome message)",
    )
    loadgen.set_defaults(handler=cmd_loadgen)

    bench = commands.add_parser(
        "bench-throughput",
        help="measure batched vs per-tuple dispatch throughput and write "
        "BENCH_throughput.json",
    )
    bench.add_argument(
        "--scale",
        choices=["full", "smoke"],
        default="full",
        help="smoke: reduced event counts for CI",
    )
    bench.add_argument("--output", default="BENCH_throughput.json")
    bench.set_defaults(handler=cmd_bench_throughput)

    bench_shard = commands.add_parser(
        "bench-shard",
        help="measure sharded vs single-engine batched throughput and write "
        "BENCH_shard.json",
    )
    bench_shard.add_argument(
        "--scale",
        choices=["full", "smoke"],
        default="full",
        help="smoke: reduced event counts for CI",
    )
    bench_shard.add_argument("--output", default="BENCH_shard.json")
    bench_shard.set_defaults(handler=cmd_bench_shard)

    bench_obs = commands.add_parser(
        "bench-obs",
        help="measure telemetry overhead (observed vs unobserved dispatch) "
        "and write BENCH_obs.json",
    )
    bench_obs.add_argument(
        "--scale",
        choices=["full", "smoke"],
        default="full",
        help="smoke: reduced event counts for CI",
    )
    bench_obs.add_argument("--output", default="BENCH_obs.json")
    bench_obs.set_defaults(handler=cmd_bench_obs)

    bench_serve = commands.add_parser(
        "bench-serve",
        help="measure sustained live-ingest throughput and latency, and "
        "overlapped vs serial command pipelining; write BENCH_serve.json",
    )
    bench_serve.add_argument(
        "--scale",
        choices=["full", "smoke"],
        default="full",
        help="smoke: reduced event counts for CI",
    )
    bench_serve.add_argument("--output", default="BENCH_serve.json")
    bench_serve.set_defaults(handler=cmd_bench_serve)
    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.obs.logsetup import configure_logging

        configure_logging(args.log_level, args.log_format)
    try:
        return args.handler(args)
    except RumorError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
