"""Multi-query transformation rules (m-rules, paper §2.3) and the Table 1 set.

An m-rule pairs a *condition* — a side-effect-free test over a set of m-ops —
with an *action* that replaces the set with a single target m-op implementing
them more efficiently.  This module provides:

- :class:`MRule`, the base class realizing the condition/action contract with
  shared candidate-scanning, purity and refire guards,
- the concrete rules of Table 1 (sσ, sα, s⋈, s;/sµ as CSE, cσ, cπ, cα, c⋈,
  c;/cµ), plus
- :class:`CseRule` — classical common subexpression elimination (the paper
  maps Cayuga's prefix state merging onto it, §4.3), and
- :class:`IndexedSequenceRule` — the Active-Node-index behaviour of §4.3,
  expressed as grouping same-second-stream ``;`` operators under a
  constant-indexed dispatch m-op.

Rules carry priorities; the optimizer applies them lowest-priority-first to a
fixpoint.  This realizes the conflict-resolution strategy the paper sketches
in §7 ("rule priorities can be assigned to establish a partial order").
The default priorities run CSE first, then same-input sharing (s-rules), then
channel formation (c-rules) — see :mod:`repro.core.registry`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Sequence, Type

from repro.core.mop import MOp, OpInstance
from repro.core.plan import QueryPlan
from repro.core.sharable import sharability_signature
from repro.errors import RuleError
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.iterate import Iterate
from repro.operators.join import SlidingWindowJoin
from repro.operators.project import Projection
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.streams.stream import StreamDef


class MRule:
    """Base m-rule: condition/action over sets of m-ops.

    Subclasses implement :meth:`find_groups` (candidate instance sets, the
    powerset restriction of the paper made tractable by structural grouping),
    optionally :meth:`condition` (extra semantic checks), and :meth:`build`
    (construct the target m-op, performing any channel encoding first).
    """

    name: str = "m-rule"
    priority: int = 100
    #: Target m-op class; a group already implemented by a single m-op of
    #: this class is skipped (fixpoint/refire guard).
    target_class: Optional[Type[MOp]] = None
    #: Extra classes the refire guard accepts: a group already implemented by
    #: a single m-op of any of these is also left alone.  Rules whose target
    #: classes overlap on the same groups (the shared-sequence family) must
    #: list each other here, or the fixpoint loop livelocks re-merging one
    #: group between the classes forever.
    refire_guard_classes: tuple[Type[MOp], ...] = ()
    #: Whether :meth:`build` may encode pre-existing streams into channels;
    #: scoped (incremental) application uses this to protect frozen m-ops
    #: from wiring changes (see :meth:`_channel_affected_mops`).
    forms_channels: bool = False
    #: Input positions whose streams :meth:`build` may channelize.
    channel_input_indexes: tuple[int, ...] = ()

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        raise NotImplementedError

    def condition(self, plan: QueryPlan, instances: list[OpInstance]) -> bool:
        """Semantic applicability check (structural grouping already done)."""
        return True

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        raise NotImplementedError

    # -- shared application machinery ---------------------------------------------

    def apply(
        self,
        plan: QueryPlan,
        scope: Optional[set[int]] = None,
        frozen: Optional[set[int]] = None,
        frontier: Optional[set[int]] = None,
    ) -> int:
        """Apply the rule to every eligible group; returns merges performed.

        With ``scope`` (a set of ``id(instance)`` values), only groups
        containing at least one scoped instance are considered — the
        incremental mode of :meth:`Optimizer.optimize_incremental`.  Merged
        target instances join the scope, growing the dirty frontier.

        ``frozen`` m-op ids are never replaced, and groups whose application
        would re-channelize streams produced or consumed by a frozen m-op
        are skipped (their executors' wiring must stay valid mid-stream).

        ``frontier`` is the incrementally-maintained set of mop_ids owning a
        scoped instance: a merge removes the replaced owners and adds the
        target, keeping it equal to what a full plan scan would find.
        """
        applied = 0
        for group in list(self.find_groups(plan)):
            if len(group) < 2:
                continue
            if scope is not None and not any(
                id(instance) in scope for instance in group
            ):
                continue
            owners = _pure_owners(group)
            if owners is None:
                continue
            if frozen and any(owner.mop_id in frozen for owner in owners):
                continue
            guard = tuple(
                cls
                for cls in (self.target_class, *self.refire_guard_classes)
                if cls is not None
            )
            if guard and len(owners) == 1 and isinstance(owners[0], guard):
                continue
            if not self.condition(plan, group):
                continue
            if frozen and self._channel_affected_mops(plan, group, owners) & frozen:
                continue
            target = self.build(plan, group)
            plan.replace_mops(owners, target)
            if scope is not None:
                scope.update(id(instance) for instance in target.instances)
            if frontier is not None:
                frontier.difference_update(owner.mop_id for owner in owners)
                frontier.add(target.mop_id)
            applied += 1
        return applied

    def _channel_affected_mops(
        self, plan: QueryPlan, group: list[OpInstance], owners: list[MOp]
    ) -> set[int]:
        """m-op ids (beyond ``owners``) whose wiring :meth:`build` may change.

        Channel formation rewires more than the replaced m-ops: encoding
        input streams into a channel touches their producer's output wiring
        and every sibling stream's consumers; channelizing the target's
        outputs touches pre-existing consumers of those streams.  Incremental
        application must keep all of these off the frozen set.
        """
        if not self.forms_channels:
            return set()
        owner_ids = {id(owner) for owner in owners}
        affected: set[int] = set()

        def add_consumers(stream: StreamDef) -> None:
            for mop, __, __index in plan.consumers_of(stream):
                if id(mop) not in owner_ids:
                    affected.add(mop.mop_id)

        for index in self.channel_input_indexes:
            streams = _distinct_streams(
                instance.inputs[index] for instance in group
            )
            if len(streams) < 2:
                continue
            if not plan.channel_of(streams[0]).is_singleton:
                continue  # already encoded; no rewiring will happen
            producer = plan.producer_mop_of(streams[0])
            if producer is not None:
                affected.add(producer.mop_id)
            for sibling in _sibling_streams(plan, streams[0]):
                add_consumers(sibling)
        outputs = _distinct_streams(instance.output for instance in group)
        if len(outputs) >= 2 and all(
            plan.channel_of(stream).is_singleton for stream in outputs
        ):
            for stream in outputs:
                add_consumers(stream)
        return affected

    def __repr__(self):
        return f"{type(self).__name__}(name={self.name!r}, priority={self.priority})"


def _pure_owners(group: list[OpInstance]) -> Optional[list[MOp]]:
    """Owning m-ops if every owner's instances are all inside ``group``.

    The m-rule action replaces whole m-ops; an owner with instances outside
    the group cannot be replaced, so such groups are skipped (a later
    fixpoint round may catch them after other rules reshuffle ownership).
    """
    members = {id(instance) for instance in group}
    owners: list[MOp] = []
    seen: set[int] = set()
    for instance in group:
        owner = instance.owner
        if owner is None:
            return None
        if id(owner) in seen:
            continue
        seen.add(id(owner))
        for sibling in owner.instances:
            if id(sibling) not in members:
                return None
        owners.append(owner)
    return owners


def _distinct_streams(streams: Iterable[StreamDef]) -> list[StreamDef]:
    seen: set[int] = set()
    result: list[StreamDef] = []
    for stream in streams:
        if stream.stream_id not in seen:
            seen.add(stream.stream_id)
            result.append(stream)
    return result


def _streams_sharable(plan: QueryPlan, streams: Sequence[StreamDef]) -> bool:
    memo: dict = {}
    signatures = {
        sharability_signature(plan, stream, memo) for stream in streams
    }
    return len(signatures) == 1


def _same_producer(plan: QueryPlan, streams: Sequence[StreamDef]) -> bool:
    producers = {id(plan.producer_mop_of(stream)) for stream in streams}
    if len(producers) != 1:
        return False
    if plan.producer_mop_of(streams[0]) is None:
        labels = {stream.sharable_label for stream in streams}
        return len(labels) == 1 and None not in labels
    return True


def _sibling_streams(plan: QueryPlan, seed: StreamDef) -> list[StreamDef]:
    """All streams sharable with ``seed`` from the same producer.

    This is the §3.2 channel population: one channel encodes the *whole*
    equivalence class coming out of one m-op (or out of co-labeled sources),
    so that every definition group of consumers can ride the same channel —
    "repeated applications of cτ form a partition of this set of operators"
    over a single shared channel (Fig. 3).
    """
    memo: dict = {}
    seed_signature = sharability_signature(plan, seed, memo)
    producer = plan.producer_mop_of(seed)
    if producer is None:
        candidates = [
            stream
            for stream in plan.sources
            if stream.sharable_label is not None
            and stream.sharable_label == seed.sharable_label
        ]
    else:
        candidates = producer.output_streams
    return [
        stream
        for stream in candidates
        if sharability_signature(plan, stream, memo) == seed_signature
    ]


def _ensure_channel(plan: QueryPlan, streams: Sequence[StreamDef]):
    """Encode the full sibling set of ``streams`` into one channel."""
    distinct = _distinct_streams(streams)
    channels = {plan.channel_of(stream).channel_id for stream in distinct}
    if len(channels) == 1 and not plan.channel_of(distinct[0]).is_singleton:
        return plan.channel_of(distinct[0])
    siblings = _sibling_streams(plan, distinct[0])
    if len(siblings) == 1:
        return plan.channel_of(siblings[0])
    return plan.channelize(siblings)


def _channel_ready(plan: QueryPlan, streams: Sequence[StreamDef]) -> bool:
    """True if streams share one channel already or are all singletons."""
    distinct = _distinct_streams(streams)
    channels = {plan.channel_of(stream).channel_id for stream in distinct}
    if len(channels) == 1:
        return True
    return all(plan.channel_of(stream).is_singleton for stream in distinct)


def _channelize_outputs(plan: QueryPlan, mop: MOp) -> None:
    """Encode a freshly built channel m-op's output streams into one channel.

    The outputs of a same-definition m-op over sharable inputs are sharable
    and share a producer by construction, so the §3.2 criteria hold; this is
    what turns the µ m-op's outputs into the channel D of Fig. 6(c) and lets
    the m-op emit one channel tuple for all member queries.
    """
    outputs = _distinct_streams(mop.output_streams)
    if len(outputs) < 2:
        return
    if not all(plan.channel_of(stream).is_singleton for stream in outputs):
        return
    plan.channelize(outputs)


# ---------------------------------------------------------------------------------
# Common subexpression elimination (Table 1 row s; — "CSE, Section 4.3")
# ---------------------------------------------------------------------------------


class CseRule(MRule):
    """Collapse identical operators reading identical streams to one instance.

    Consumers (and sink registrations) of the eliminated duplicates are
    rewired to the representative's output stream.  This is what lets the
    hybrid workload share a single α ("it produces a single stream called
    SMOOTHED, and multiplexes it to all its consumer operators", §4.3) and is
    the plan-level image of Cayuga's prefix state merging.
    """

    name = "cse"
    priority = 5

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            key = (
                instance.operator.definition(),
                tuple(stream.stream_id for stream in instance.inputs),
            )
            if key not in groups:
                order.append(key)
            groups[key].append(instance)
        return [groups[key] for key in order]

    def apply(
        self,
        plan: QueryPlan,
        scope: Optional[set[int]] = None,
        frozen: Optional[set[int]] = None,
        frontier: Optional[set[int]] = None,
    ) -> int:
        # Each elimination rewires consumers, which can turn downstream
        # instances into fresh duplicates (a collapsed σ makes its two
        # consumers read the same stream).  Groups are computed per round, so
        # iterate until a round eliminates nothing — otherwise those cascade
        # duplicates leak to the merge rules, which must not see them.
        applied = 0
        while True:
            round_applied = 0
            for group in list(self.find_groups(plan)):
                if len(group) < 2:
                    continue
                representative = group[0]
                if frozen and (
                    representative.owner is None
                    or representative.owner.mop_id in frozen
                ):
                    # Folding a new duplicate into a stateful live operator
                    # would hand the new query the representative's accrued
                    # history; keep them separate until the state drains.
                    continue
                for duplicate in group[1:]:
                    if scope is not None and id(duplicate) not in scope:
                        continue  # incremental mode only removes *new* ones
                    owner = duplicate.owner
                    if owner is None or len(owner.instances) != 1:
                        continue  # already merged; leave to other rules
                    plan.eliminate_duplicate(duplicate, representative)
                    if frontier is not None:
                        # The duplicate's (single-instance) owner left the
                        # plan; the representative stays unscoped, so the
                        # frontier only shrinks here.
                        frontier.discard(owner.mop_id)
                    round_applied += 1
            applied += round_applied
            if not round_applied:
                return applied


# ---------------------------------------------------------------------------------
# s-rules: sharing among operators reading the same stream(s) (§2.4, §4.3)
# ---------------------------------------------------------------------------------


def _sequence_family() -> tuple[Type[MOp], ...]:
    """The sequence-sharing m-op classes whose rules overlap on groups.

    A group of identical-definition ``;``/``µ`` instances satisfies s;/sµ,
    s;-ix *and* s;-w at once; without a shared refire guard, each rule would
    keep replacing the others' target m-op and the fixpoint never converges.
    """
    from repro.mops.channel_sequence import ChannelSequenceMOp
    from repro.mops.shared_sequence import IndexedSequenceMOp, SharedSequenceMOp
    from repro.mops.shared_window_sequence import SharedWindowSequenceMOp

    return (
        SharedSequenceMOp,
        IndexedSequenceMOp,
        SharedWindowSequenceMOp,
        ChannelSequenceMOp,
    )


class PredicateIndexRule(MRule):
    """sσ — selections reading the same stream → predicate-index m-op."""

    name = "sσ"
    priority = 10

    def __init__(self):
        from repro.mops.predicate_index import PredicateIndexMOp

        self.target_class = PredicateIndexMOp

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[int, list[OpInstance]] = defaultdict(list)
        order: list[int] = []
        for instance in plan.instances():
            if isinstance(instance.operator, Selection):
                key = instance.inputs[0].stream_id
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.predicate_index import PredicateIndexMOp

        return PredicateIndexMOp(instances)


class SharedAggregateRule(MRule):
    """sα — same-function aggregates on the same stream → shared m-op [22]."""

    name = "sα"
    priority = 20

    def __init__(self):
        from repro.mops.shared_aggregate import SharedAggregateMOp

        self.target_class = SharedAggregateMOp

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        from repro.operators.window import TimeWindow

        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, SlidingWindowAggregate) and isinstance(
                operator.window, TimeWindow
            ):
                key = (
                    instance.inputs[0].stream_id,
                    operator.function,
                    operator.target,
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.shared_aggregate import SharedAggregateMOp

        return SharedAggregateMOp(instances)


class SharedJoinRule(MRule):
    """s⋈ — same-predicate joins on the same streams → shared m-op [12]."""

    name = "s⋈"
    priority = 20

    def __init__(self):
        from repro.mops.shared_join import SharedJoinMOp

        self.target_class = SharedJoinMOp

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, SlidingWindowJoin):
                key = (
                    instance.inputs[0].stream_id,
                    instance.inputs[1].stream_id,
                    operator.predicate,
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.shared_join import SharedJoinMOp

        return SharedJoinMOp(instances)


class SharedSequenceRule(MRule):
    """s;/sµ — same-definition ``;``/``µ`` on the same stream pair → one state.

    After :class:`CseRule` this only fires for instances that could not be
    textually collapsed (e.g. their outputs are distinct sinks kept apart on
    purpose); it shares the executor and multiplexes outputs.
    """

    name = "s;/sµ"
    priority = 15

    def __init__(self):
        from repro.mops.shared_sequence import SharedSequenceMOp

        self.target_class = SharedSequenceMOp
        self.refire_guard_classes = _sequence_family()

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, (Sequence, Iterate)):
                key = (
                    instance.inputs[0].stream_id,
                    instance.inputs[1].stream_id,
                    operator.definition(),
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.shared_sequence import SharedSequenceMOp

        return SharedSequenceMOp(instances)


class IndexedSequenceRule(MRule):
    """AN-index — same-second-stream ``;`` ops with a common constant-guarded
    attribute → constant-indexed dispatch m-op (§4.3).
    """

    name = "s;-ix"
    priority = 18

    def __init__(self):
        from repro.mops.shared_sequence import IndexedSequenceMOp

        self.target_class = IndexedSequenceMOp
        self.refire_guard_classes = _sequence_family()
        self._attribute_by_group: dict[int, str] = {}

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        from repro.operators.expressions import RIGHT
        from repro.operators.predicates import as_constant_equality, conjuncts

        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, Sequence):
                key = (instance.inputs[1].stream_id, operator.consume_on_match)
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        self._attribute_by_group.clear()
        results: list[list[OpInstance]] = []
        for key in order:
            group = groups[key]
            common: Optional[set[str]] = None
            for instance in group:
                attributes = {
                    shape[1]
                    for part in conjuncts(instance.operator.predicate)
                    if (shape := as_constant_equality(part)) is not None
                    and shape[0] == RIGHT
                }
                common = attributes if common is None else common & attributes
                if not common:
                    break
            if common:
                self._attribute_by_group[id(group)] = sorted(common)[0]
                results.append(group)
        return results

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.shared_sequence import IndexedSequenceMOp

        attribute = self._attribute_by_group.get(id(instances))
        if attribute is None:
            raise RuleError("IndexedSequenceRule.build called without find_groups")
        return IndexedSequenceMOp(instances, attribute)


class SharedWindowSequenceRule(MRule):
    """Window-variant ``;``/``µ`` sharing — the plan image of Cayuga's merged
    states whose edges differ only in the duration constant (§4.3).

    Applies to operators on the same stream pair whose definitions coincide
    once the duration predicate is stripped; consuming ``;`` operators are
    excluded (their θf = ¬θ_fwd filter edges differ per window, so the
    corresponding automaton states do not merge either).
    """

    name = "s;-w"
    priority = 19

    def __init__(self):
        from repro.mops.shared_window_sequence import SharedWindowSequenceMOp

        self.target_class = SharedWindowSequenceMOp
        self.refire_guard_classes = _sequence_family()

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        from repro.mops.shared_window_sequence import window_free_definition

        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, (Sequence, Iterate)):
                stripped = window_free_definition(operator)
                if stripped is None:
                    continue
                key = (
                    instance.inputs[0].stream_id,
                    instance.inputs[1].stream_id,
                    stripped,
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.shared_window_sequence import SharedWindowSequenceMOp

        return SharedWindowSequenceMOp(instances)


# ---------------------------------------------------------------------------------
# c-rules: sharing among same-definition operators on sharable streams (§3.3, §4.4)
# ---------------------------------------------------------------------------------


class ChannelUnaryRuleBase(MRule):
    """Shared grouping logic for cσ / cπ / cα."""

    operator_type: type = object
    forms_channels = True
    channel_input_indexes = (0,)

    def accepts(self, operator) -> bool:
        """Extra per-operator filter (e.g. cα takes time windows only)."""
        return True

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, self.operator_type) and self.accepts(operator):
                producer = plan.producer_mop_of(instance.inputs[0])
                key = (operator.definition(), id(producer))
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def condition(self, plan: QueryPlan, instances: list[OpInstance]) -> bool:
        streams = [instance.inputs[0] for instance in instances]
        distinct = _distinct_streams(streams)
        if len(distinct) < 2:
            return False  # same-stream sharing belongs to the s-rules / CSE
        return (
            _streams_sharable(plan, distinct)
            and _same_producer(plan, distinct)
            and _channel_ready(plan, distinct)
        )

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        _ensure_channel(plan, [instance.inputs[0] for instance in instances])
        mop = self.make_mop(instances)
        _channelize_outputs(plan, mop)
        return mop

    def make_mop(self, instances: list[OpInstance]) -> MOp:
        raise NotImplementedError


class ChannelSelectionRule(ChannelUnaryRuleBase):
    """cσ — same-definition selections on sharable streams (§3.3)."""

    name = "cσ"
    priority = 40
    operator_type = Selection

    def __init__(self):
        from repro.mops.channel_ops import ChannelSelectionMOp

        self.target_class = ChannelSelectionMOp

    def make_mop(self, instances: list[OpInstance]) -> MOp:
        from repro.mops.channel_ops import ChannelSelectionMOp

        return ChannelSelectionMOp(instances)


class ChannelProjectionRule(ChannelUnaryRuleBase):
    """cπ — same-definition projections on sharable streams (§3.1 example)."""

    name = "cπ"
    priority = 40
    operator_type = Projection

    def __init__(self):
        from repro.mops.channel_ops import ChannelProjectionMOp

        self.target_class = ChannelProjectionMOp

    def make_mop(self, instances: list[OpInstance]) -> MOp:
        from repro.mops.channel_ops import ChannelProjectionMOp

        return ChannelProjectionMOp(instances)


class FragmentAggregateRule(ChannelUnaryRuleBase):
    """cα — shared fragment aggregation [15] (Table 1 row 4)."""

    name = "cα"
    priority = 40
    operator_type = SlidingWindowAggregate

    def __init__(self):
        from repro.mops.fragment_aggregate import FragmentAggregateMOp

        self.target_class = FragmentAggregateMOp

    def accepts(self, operator) -> bool:
        from repro.operators.window import TimeWindow

        return isinstance(operator.window, TimeWindow)

    def make_mop(self, instances: list[OpInstance]) -> MOp:
        from repro.mops.fragment_aggregate import FragmentAggregateMOp

        return FragmentAggregateMOp(instances)


class PrecisionJoinRule(MRule):
    """c⋈ — precision-sharing join [14] (Table 1 row 5)."""

    name = "c⋈"
    priority = 40
    forms_channels = True
    channel_input_indexes = (0, 1)

    def __init__(self):
        from repro.mops.precision_join import PrecisionJoinMOp

        self.target_class = PrecisionJoinMOp

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, SlidingWindowJoin):
                key = (
                    operator.definition(),
                    id(plan.producer_mop_of(instance.inputs[0])),
                    id(plan.producer_mop_of(instance.inputs[1])),
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def condition(self, plan: QueryPlan, instances: list[OpInstance]) -> bool:
        lefts = _distinct_streams(instance.inputs[0] for instance in instances)
        rights = _distinct_streams(instance.inputs[1] for instance in instances)
        if len(lefts) < 2 and len(rights) < 2:
            return False
        for side in (lefts, rights):
            if len(side) > 1:
                if not (
                    _streams_sharable(plan, side)
                    and _same_producer(plan, side)
                    and _channel_ready(plan, side)
                ):
                    return False
        return True

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.precision_join import PrecisionJoinMOp

        lefts = _distinct_streams(instance.inputs[0] for instance in instances)
        rights = _distinct_streams(instance.inputs[1] for instance in instances)
        if len(lefts) > 1:
            _ensure_channel(plan, lefts)
        if len(rights) > 1:
            _ensure_channel(plan, rights)
        mop = PrecisionJoinMOp(instances)
        _channelize_outputs(plan, mop)
        return mop


class ChannelSequenceRule(MRule):
    """c;/cµ — channel-based event MQO (§4.4, Table 1 last row).

    Conditions (a)–(c): same definition; sharable first-input streams
    produced by the same m-op; identical second input stream.
    """

    name = "c;/cµ"
    priority = 40
    forms_channels = True
    channel_input_indexes = (0,)

    def __init__(self):
        from repro.mops.channel_sequence import ChannelSequenceMOp

        self.target_class = ChannelSequenceMOp

    def find_groups(self, plan: QueryPlan) -> Iterable[list[OpInstance]]:
        groups: dict[tuple, list[OpInstance]] = defaultdict(list)
        order: list[tuple] = []
        for instance in plan.instances():
            operator = instance.operator
            if isinstance(operator, (Sequence, Iterate)):
                key = (
                    operator.definition(),
                    id(plan.producer_mop_of(instance.inputs[0])),
                    instance.inputs[1].stream_id,
                )
                if key not in groups:
                    order.append(key)
                groups[key].append(instance)
        return [groups[key] for key in order]

    def condition(self, plan: QueryPlan, instances: list[OpInstance]) -> bool:
        lefts = _distinct_streams(instance.inputs[0] for instance in instances)
        if len(lefts) < 2:
            return False
        return (
            _streams_sharable(plan, lefts)
            and _same_producer(plan, lefts)
            and _channel_ready(plan, lefts)
        )

    def build(self, plan: QueryPlan, instances: list[OpInstance]) -> MOp:
        from repro.mops.channel_sequence import ChannelSequenceMOp

        _ensure_channel(plan, [instance.inputs[0] for instance in instances])
        mop = ChannelSequenceMOp(instances)
        _channelize_outputs(plan, mop)
        return mop
