"""Confluence diagnostics for the rule system (paper §7, future work).

"Different orderings of m-rule applications may result in different
optimized query plans" (§3.3, Fig. 2/3), and the paper suggests "static
analysis techniques ... to reason about the confluence of the rule-based
query rewrite system".  Full static analysis is open research; this module
provides the practical dynamic counterpart:

- :func:`plan_shape` — an order-insensitive structural fingerprint of an
  optimized plan (m-op kinds, instance counts, channel capacities);
- :func:`check_confluence` — optimize freshly built copies of the same
  logical workload under permuted rule orders and report whether all
  orderings converge to the same shape.

The default registry's priorities pin one deterministic order; this checker
is how the test suite demonstrates both that determinism and the genuine
order-sensitivity of rule systems when priorities are scrambled.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.rules import MRule


def plan_shape(plan: QueryPlan) -> tuple:
    """Order-insensitive structural fingerprint of a plan.

    Two plans with equal shapes implement the same queries with the same
    m-op kinds over channels of the same capacities — the granularity at
    which rule-ordering differences show up.
    """
    entries = []
    for mop in plan.mops:
        input_capacities = tuple(
            sorted(
                plan.channel_of(stream).capacity for stream in mop.input_streams
            )
        )
        output_capacities = tuple(
            sorted(
                plan.channel_of(stream).capacity for stream in mop.output_streams
            )
        )
        entries.append(
            (type(mop).__name__, len(mop.instances), input_capacities, output_capacities)
        )
    return tuple(sorted(entries))


@dataclass
class ConfluenceReport:
    """Outcome of a confluence check."""

    orders_tried: int = 0
    shapes: dict = field(default_factory=dict)  # shape -> first order producing it

    @property
    def confluent(self) -> bool:
        return len(self.shapes) <= 1

    def __str__(self):
        verdict = "confluent" if self.confluent else "NOT confluent"
        return (
            f"ConfluenceReport({self.orders_tried} orders, "
            f"{len(self.shapes)} distinct shapes: {verdict})"
        )


def check_confluence(
    plan_factory: Callable[[], QueryPlan],
    rules: Sequence[MRule],
    max_orders: int = 24,
    respect_priorities: bool = False,
) -> ConfluenceReport:
    """Optimize fresh plans under permuted rule orders; compare shapes.

    ``plan_factory`` must build an identical naive plan each call.  With
    ``respect_priorities`` the permutations are re-sorted by priority first —
    useful to confirm that priorities pin a unique outcome regardless of the
    registry's list order.
    """
    report = ConfluenceReport()
    for permutation in itertools.islice(
        itertools.permutations(rules), max_orders
    ):
        ordered = list(permutation)
        if respect_priorities:
            ordered.sort(key=lambda rule: rule.priority)
        plan = plan_factory()
        optimizer = Optimizer.__new__(Optimizer)
        optimizer.rules = ordered  # bypass the constructor's priority sort
        optimizer.optimize(plan)
        shape = plan_shape(plan)
        report.orders_tried += 1
        if shape not in report.shapes:
            report.shapes[shape] = tuple(rule.name for rule in ordered)
    return report
