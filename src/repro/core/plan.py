"""The query plan: a DAG of m-ops connected by channels.

Following the paper's extension of the classical notion, *one* plan
implements *all* currently active logical queries (§2.1).  The plan tracks:

- the streams (sources and derived), each carried by exactly one channel,
- the m-ops, each implementing a set of operator instances,
- which streams are query outputs (sinks), for per-query accounting.

Plans start *naive*: :meth:`QueryPlan.add_operator` wraps every operator in a
single-instance :class:`~repro.mops.naive.NaiveMOp` on singleton channels.
The optimizer then rewrites the plan by replacing m-op sets with target m-ops
(:meth:`replace_mops`) and by encoding stream sets into channels
(:meth:`channelize`) — the two primitive mutations every m-rule action is
built from.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional, Sequence

from repro.errors import PlanError
from repro.core.mop import MOp, OpInstance
from repro.streams.channel import Channel
from repro.streams.schema import Schema
from repro.streams.stream import StreamDef


class QueryPlan:
    """Plan graph and wiring authority.

    The plan is the single source of truth for which channel carries each
    stream; executors read the wiring when they are built, so rewrites must
    happen before execution starts.
    """

    def __init__(self):
        self.sources: list[StreamDef] = []
        self.mops: list[MOp] = []
        self._streams: dict[int, StreamDef] = {}
        self._channel_by_stream: dict[int, Channel] = {}
        #: stream_id -> list of (mop, instance, input_index) consuming it.
        self._consumers: dict[int, list[tuple[MOp, OpInstance, int]]] = defaultdict(list)
        #: stream_id -> the OpInstance producing it (None for sources).
        self._producer_instance: dict[int, OpInstance] = {}
        #: stream_id -> query ids, for streams that are query outputs.  After
        #: common-subexpression elimination several queries may share one
        #: output stream, hence the list.
        self._sinks: dict[int, list] = {}

    # -- construction -----------------------------------------------------------

    def add_source(
        self,
        name: str,
        schema: Schema,
        sharable_label: Optional[str] = None,
    ) -> StreamDef:
        """Register a source stream (on its own singleton channel)."""
        stream = StreamDef(name, schema, sharable_label=sharable_label)
        self.sources.append(stream)
        self._register_stream(stream)
        return stream

    def adopt_source(self, stream: StreamDef, channel: Optional[Channel] = None) -> StreamDef:
        """Register an *existing* source stream (and its channel) in this plan.

        Several plans may adopt the same stream/channel objects — that is the
        sharding contract: shard sub-plans read the same source channels as
        the plan they were partitioned from, so wiring signatures (and hence
        executor state) stay valid when a component moves between plans.
        The adopting plan must not re-channelize an adopted source; channels
        are owned by whoever created them.
        """
        if stream.stream_id in self._streams:
            raise PlanError(f"{stream!r} is already part of this plan")
        if channel is not None and not channel.contains(stream):
            raise PlanError(
                f"channel {channel.name!r} does not encode {stream!r}"
            )
        self.sources.append(stream)
        self._streams[stream.stream_id] = stream
        self._channel_by_stream[stream.stream_id] = (
            channel if channel is not None else Channel.singleton(stream)
        )
        return stream

    def add_operator(
        self,
        operator,
        inputs: Sequence[StreamDef],
        query_id=None,
        name: Optional[str] = None,
    ) -> StreamDef:
        """Append an operator on existing streams; returns its output stream.

        The operator is wrapped in a single-instance naive m-op — the
        unoptimized starting point every plan begins from.
        """
        from repro.mops.naive import NaiveMOp  # deferred: mops build on this module

        for stream in inputs:
            if stream.stream_id not in self._streams:
                raise PlanError(f"{stream!r} is not part of this plan")
        schema = operator.output_schema([s.schema for s in inputs])
        output = StreamDef(name or self._derived_name(operator, inputs), schema)
        instance = OpInstance(operator, inputs, output, query_id=query_id)
        mop = NaiveMOp([instance])
        self._register_stream(output)
        self._producer_instance[output.stream_id] = instance
        self._attach_mop(mop)
        return output

    def mark_output(self, stream: StreamDef, query_id) -> None:
        """Declare ``stream`` a query output (a plan sink)."""
        if stream.stream_id not in self._streams:
            raise PlanError(f"{stream!r} is not part of this plan")
        self._sinks.setdefault(stream.stream_id, []).append(query_id)

    def unmark_output(self, query_id) -> int:
        """Remove every sink registration of ``query_id``; returns how many.

        After common-subexpression elimination several queries may share one
        sink stream, so only the query's membership is dropped — the stream
        stays a sink while other queries still read it.  Streams left with no
        registrations stop being sinks (and become eligible for
        :meth:`prune_unreachable`).
        """
        removed = 0
        for stream_id in list(self._sinks):
            query_ids = self._sinks[stream_id]
            remaining = [qid for qid in query_ids if qid != query_id]
            removed += len(query_ids) - len(remaining)
            if remaining:
                self._sinks[stream_id] = remaining
            else:
                del self._sinks[stream_id]
        return removed

    def live_instances(self) -> set[int]:
        """``id()`` of every instance transitively feeding a sink."""
        needed: set[int] = set(self._sinks)
        queue = list(needed)
        live: set[int] = set()
        while queue:
            stream_id = queue.pop()
            instance = self._producer_instance.get(stream_id)
            if instance is None or id(instance) in live:
                continue
            live.add(id(instance))
            for stream in instance.inputs:
                if stream.stream_id not in needed:
                    needed.add(stream.stream_id)
                    queue.append(stream.stream_id)
        return live

    def prune_unreachable(self) -> list[MOp]:
        """Garbage-collect m-ops no longer reachable from any sink.

        An m-op is *dead* when none of its instances transitively feed a
        sink; a dead m-op is removed once nothing consumes its output
        streams, which cascades bottom-up as downstream dead m-ops go first.
        Partially-dead m-ops (some instances live — e.g. a merged m-op whose
        member query departed) are kept whole: splitting a target m-op is
        not a paper operation, and the surviving members still need it.
        Removed m-ops' output streams (and their channels) leave the plan.
        """
        live = self.live_instances()
        dead = [
            mop
            for mop in self.mops
            if not any(id(instance) in live for instance in mop.instances)
        ]
        removed: list[MOp] = []
        progressed = True
        while progressed:
            progressed = False
            for mop in list(dead):
                if any(
                    entry[0] is not mop
                    for instance in mop.instances
                    for entry in self._consumers.get(instance.output.stream_id, ())
                ):
                    continue  # still feeding another (dead) m-op; next round
                self._detach_mop(mop)
                for stream in mop.output_streams:
                    self._streams.pop(stream.stream_id, None)
                    self._channel_by_stream.pop(stream.stream_id, None)
                    self._producer_instance.pop(stream.stream_id, None)
                    self._consumers.pop(stream.stream_id, None)
                dead.remove(mop)
                removed.append(mop)
                progressed = True
        self.validate()
        return removed

    # -- component transfer (sharding support) ---------------------------------------

    def view_component(self, mops: Sequence[MOp]) -> dict:
        """The transfer dict :meth:`release_component` would return, built
        as a **view** of the live plan — nothing detached.

        Same closed-set validation, same shape (one construction path, so a
        released transfer and a checkpoint snapshot can never disagree
        about what a component carries).  The returned dict references live
        plan objects; it is only safe to serialize immediately (pickling
        copies it) or to hand to :meth:`release_component`'s detach step.
        """
        releasing = {id(mop) for mop in mops}
        for mop in mops:
            if mop not in self.mops:
                raise PlanError(f"{mop!r} is not part of this plan")
        output_ids = {
            stream.stream_id for mop in mops for stream in mop.output_streams
        }
        for stream_id in output_ids:
            for consumer, __, __index in self._consumers.get(stream_id, ()):
                if id(consumer) not in releasing:
                    raise PlanError(
                        "cannot release component: stream "
                        f"{self._streams[stream_id].name!r} is consumed by "
                        f"{consumer!r} outside the component"
                    )
        streams: list[StreamDef] = []
        channels: dict[int, Channel] = {}
        sinks: dict[int, list] = {}
        for stream_id in output_ids:
            stream = self._streams[stream_id]
            streams.append(stream)
            channels[stream_id] = self._channel_by_stream[stream_id]
            registered = self._sinks.get(stream_id)
            if registered:
                sinks[stream_id] = list(registered)
        return {
            "mops": list(mops),
            "streams": streams,
            "channels": channels,
            "sinks": sinks,
        }

    def release_component(self, mops: Sequence[MOp]) -> dict:
        """Detach a *closed* set of m-ops (and their derived streams, channels
        and sink registrations) from this plan.

        The set must be consumption-closed: every consumer of a released
        m-op's output stream must itself be released — otherwise the plan
        would be left with dangling wiring.  Source streams are never
        released; they stay behind (shared infrastructure).  Returns a
        transfer dict consumable by :meth:`adopt_component` on another plan
        whose source streams include (by identity) every source the
        component reads.
        """
        transfer = self.view_component(mops)
        for mop in transfer["mops"]:
            self._detach_mop(mop)
        for stream in transfer["streams"]:
            stream_id = stream.stream_id
            self._streams.pop(stream_id)
            self._channel_by_stream.pop(stream_id)
            self._producer_instance.pop(stream_id, None)
            self._consumers.pop(stream_id, None)
            self._sinks.pop(stream_id, None)
        self.validate()
        return transfer

    def adopt_component(self, transfer: dict) -> None:
        """Attach a component released from another plan.

        Every input stream the component's m-ops read must already be part of
        this plan — either one of its (shared) source streams or a stream
        carried inside the transfer.  Streams keep their channels, instances
        keep their identity, so wiring signatures are unchanged and the
        engine migration can reuse the component's executors, state intact.

        Identity is by ``stream_id``: a transfer that crossed a process
        boundary references unpickled *copies* of the shared source streams.
        Those references are rebound to this plan's canonical objects, so
        repeated rebalances never accumulate stale copies and downstream
        code may keep relying on object identity for plan-resident streams.
        """
        streams: list[StreamDef] = transfer["streams"]
        channels: dict[int, Channel] = transfer["channels"]
        carried = {stream.stream_id for stream in streams}
        for mop in transfer["mops"]:
            for instance in mop.instances:
                for stream in instance.inputs:
                    if (
                        stream.stream_id not in self._streams
                        and stream.stream_id not in carried
                    ):
                        raise PlanError(
                            f"cannot adopt component: {mop!r} reads "
                            f"{stream!r}, which this plan does not carry"
                        )
        for mop in transfer["mops"]:
            for instance in mop.instances:
                if any(
                    self._streams.get(stream.stream_id) is not None
                    and self._streams[stream.stream_id] is not stream
                    for stream in instance.inputs
                ):
                    instance.inputs = tuple(
                        self._streams.get(stream.stream_id, stream)
                        for stream in instance.inputs
                    )
        for stream in streams:
            if stream.stream_id in self._streams:
                raise PlanError(f"{stream!r} is already part of this plan")
            self._streams[stream.stream_id] = stream
            self._channel_by_stream[stream.stream_id] = channels[stream.stream_id]
        for mop in transfer["mops"]:
            for instance in mop.instances:
                self._producer_instance[instance.output.stream_id] = instance
            self._attach_mop(mop)
        for stream_id, query_ids in transfer["sinks"].items():
            self._sinks.setdefault(stream_id, []).extend(query_ids)
        self.validate()

    def _derived_name(self, operator, inputs: Sequence[StreamDef]) -> str:
        base = "+".join(s.name for s in inputs)
        return f"{operator.symbol}({base})"

    def _register_stream(self, stream: StreamDef) -> None:
        self._streams[stream.stream_id] = stream
        self._channel_by_stream[stream.stream_id] = Channel.singleton(stream)

    def _attach_mop(self, mop: MOp) -> None:
        self.mops.append(mop)
        for instance in mop.instances:
            for index, stream in enumerate(instance.inputs):
                self._consumers[stream.stream_id].append((mop, instance, index))

    def _detach_mop(self, mop: MOp) -> None:
        self.mops.remove(mop)
        for instance in mop.instances:
            for index, stream in enumerate(instance.inputs):
                self._consumers[stream.stream_id] = [
                    entry
                    for entry in self._consumers[stream.stream_id]
                    if entry[1] is not instance
                ]

    # -- wiring queries ------------------------------------------------------------

    def channel_of(self, stream: StreamDef) -> Channel:
        try:
            return self._channel_by_stream[stream.stream_id]
        except KeyError:
            raise PlanError(f"{stream!r} is not part of this plan") from None

    def streams(self) -> list[StreamDef]:
        return list(self._streams.values())

    def channels(self) -> list[Channel]:
        """Distinct channels currently in the plan."""
        seen: set[int] = set()
        result: list[Channel] = []
        for channel in self._channel_by_stream.values():
            if channel.channel_id not in seen:
                seen.add(channel.channel_id)
                result.append(channel)
        return result

    def consumers_of(self, stream: StreamDef) -> list[tuple[MOp, OpInstance, int]]:
        return list(self._consumers.get(stream.stream_id, ()))

    def producer_instance_of(self, stream: StreamDef) -> Optional[OpInstance]:
        return self._producer_instance.get(stream.stream_id)

    def producer_mop_of(self, stream: StreamDef) -> Optional[MOp]:
        instance = self._producer_instance.get(stream.stream_id)
        return instance.owner if instance is not None else None

    @property
    def sinks(self) -> dict[int, list]:
        """stream_id -> query ids for all declared query outputs."""
        return {stream_id: list(qs) for stream_id, qs in self._sinks.items()}

    def sink_streams(self) -> list[tuple[StreamDef, list]]:
        return [
            (self._streams[stream_id], list(query_ids))
            for stream_id, query_ids in self._sinks.items()
        ]

    def instances(self) -> list[OpInstance]:
        """All operator instances across all m-ops."""
        result: list[OpInstance] = []
        for mop in self.mops:
            result.extend(mop.instances)
        return result

    # -- rewrite primitives (used by m-rule actions) ---------------------------------

    def replace_mops(self, old_mops: Sequence[MOp], new_mop: MOp) -> None:
        """Replace a set of m-ops with a target m-op implementing their union.

        The target must implement exactly the union of the old m-ops'
        instances (the m-rule action contract, §2.3): "we simply replace all
        edges that previously connected other operators with the to-be merged
        operators by edges to the corresponding input and output streams of
        the target m-op".  Channels are untouched — wiring is per-stream.
        """
        old_instances = {
            id(instance) for mop in old_mops for instance in mop.instances
        }
        new_instances = {id(instance) for instance in new_mop.instances}
        if old_instances != new_instances:
            raise PlanError(
                "target m-op must implement exactly the union of the replaced "
                "m-ops' instances"
            )
        for mop in old_mops:
            if mop not in self.mops:
                raise PlanError(f"{mop!r} is not part of this plan")
        for mop in old_mops:
            self._detach_mop(mop)
        self._attach_mop(new_mop)

    def eliminate_duplicate(
        self, duplicate: OpInstance, representative: OpInstance
    ) -> None:
        """Common-subexpression elimination: drop ``duplicate``, rewiring its
        consumers (and sink registrations) to ``representative``'s output.

        Both instances must have the same operator definition and identical
        input streams (the classical CSE condition, Table 1 row s;), and the
        duplicate must be the only instance of its m-op — CSE runs before the
        merging rules, when every instance still sits in its own naive m-op.
        """
        if duplicate.operator.definition() != representative.operator.definition():
            raise PlanError("CSE requires identical operator definitions")
        if [s.stream_id for s in duplicate.inputs] != [
            s.stream_id for s in representative.inputs
        ]:
            raise PlanError("CSE requires identical input streams")
        owner = duplicate.owner
        if owner is None or len(owner.instances) != 1:
            raise PlanError("CSE can only eliminate single-instance m-ops")
        old_stream = duplicate.output
        new_stream = representative.output
        if not self.channel_of(old_stream).is_singleton:
            raise PlanError("cannot eliminate a stream already in a channel")
        # Rewire consumers of the duplicate's output.
        for __, instance, index in list(self._consumers.get(old_stream.stream_id, ())):
            self._rewire_input(instance, index, new_stream)
        # Move sink registrations over.
        moved = self._sinks.pop(old_stream.stream_id, None)
        if moved:
            self._sinks.setdefault(new_stream.stream_id, []).extend(moved)
        # Drop the m-op and the now-orphaned stream.
        self._detach_mop(owner)
        del self._streams[old_stream.stream_id]
        del self._channel_by_stream[old_stream.stream_id]
        self._producer_instance.pop(old_stream.stream_id, None)
        self._consumers.pop(old_stream.stream_id, None)

    def _rewire_input(self, instance: OpInstance, index: int, new_stream: StreamDef) -> None:
        old_stream = instance.inputs[index]
        entries = self._consumers.get(old_stream.stream_id, [])
        self._consumers[old_stream.stream_id] = [
            entry
            for entry in entries
            if not (entry[1] is instance and entry[2] == index)
        ]
        inputs = list(instance.inputs)
        inputs[index] = new_stream
        instance.inputs = tuple(inputs)
        self._consumers[new_stream.stream_id].append(
            (instance.owner, instance, index)
        )

    def channelize(self, streams: Sequence[StreamDef], name: Optional[str] = None) -> Channel:
        """Encode a set of streams into one channel (paper §3.2 criteria (a)–(b)
        are the caller's responsibility; this enforces the structural rules).

        Requirements checked here:

        - every stream is currently on a singleton channel (re-channeling a
          stream out of a multi-stream channel is not a paper operation),
        - all streams have the same producer m-op, or are all source streams
          sharing a sharable label (synchronized external feeds).
        """
        if len(streams) < 2:
            raise PlanError("channelize needs at least two streams")
        for stream in streams:
            if stream.stream_id not in self._streams:
                raise PlanError(f"{stream!r} is not part of this plan")
            if not self.channel_of(stream).is_singleton:
                raise PlanError(
                    f"{stream!r} is already encoded in a multi-stream channel"
                )
        producers = {id(self.producer_mop_of(stream)) for stream in streams}
        if len(producers) != 1:
            raise PlanError(
                "streams must be produced by the same m-op to share a channel"
            )
        if self.producer_mop_of(streams[0]) is None:
            labels = {stream.sharable_label for stream in streams}
            if len(labels) != 1 or None in labels:
                raise PlanError(
                    "source streams must share a sharable label to be encoded "
                    "into one channel"
                )
        channel = Channel(list(streams), name=name)
        for stream in streams:
            self._channel_by_stream[stream.stream_id] = channel
        return channel

    # -- integrity ----------------------------------------------------------------

    def validate(self) -> None:
        """Check plan invariants; raises :class:`PlanError` on violation."""
        for mop in self.mops:
            for instance in mop.instances:
                if instance.owner is not mop:
                    raise PlanError(f"{instance!r} owner pointer is stale")
                for stream in instance.inputs:
                    if stream.stream_id not in self._streams:
                        raise PlanError(f"{instance!r} reads unknown {stream!r}")
                if instance.output.stream_id not in self._streams:
                    raise PlanError(f"{instance!r} writes unknown stream")
        for stream_id, entries in self._consumers.items():
            for mop, instance, index in entries:
                if mop not in self.mops:
                    raise PlanError("consumer index references removed m-op")
                if instance.inputs[index].stream_id != stream_id:
                    raise PlanError("consumer index entry is inconsistent")

    def describe(self) -> str:
        """Multi-line plan rendering for debugging and examples."""
        lines = [f"QueryPlan: {len(self.mops)} m-ops, {len(self._streams)} streams"]
        for mop in self.mops:
            inputs = ", ".join(
                f"{s.name}@{self.channel_of(s).name}" for s in mop.input_streams
            )
            outputs = ", ".join(
                f"{s.name}@{self.channel_of(s).name}" for s in mop.output_streams
            )
            lines.append(f"  {mop.describe()}: [{inputs}] -> [{outputs}]")
        return "\n".join(lines)

    def to_dot(self) -> str:
        """Graphviz rendering of the plan: m-ops as boxes, channels as edges.

        Channels with capacity > 1 are drawn as dashed edges labeled with
        their capacity — the paper's visual convention (dashed arrows denote
        channels, Fig. 1(c) / 6(c)).
        """
        lines = [
            "digraph rumor_plan {",
            "  rankdir=BT;",
            '  node [shape=box, fontname="Helvetica"];',
        ]
        for source in self.sources:
            lines.append(
                f'  src_{source.stream_id} [label="{source.name}", shape=ellipse];'
            )
        for mop in self.mops:
            label = mop.describe().replace('"', "'")
            lines.append(f'  mop_{mop.mop_id} [label="{label}"];')
        sink_ids = set(self._sinks)

        def node_of(stream: StreamDef) -> str:
            producer = self.producer_mop_of(stream)
            if producer is None:
                return f"src_{stream.stream_id}"
            return f"mop_{producer.mop_id}"

        drawn: set[tuple[str, str, int]] = set()
        for mop in self.mops:
            for stream in mop.input_streams:
                channel = self.channel_of(stream)
                edge = (node_of(stream), f"mop_{mop.mop_id}", channel.channel_id)
                if edge in drawn:
                    continue
                drawn.add(edge)
                style = "dashed" if not channel.is_singleton else "solid"
                label = (
                    f"{channel.name} (cap {channel.capacity})"
                    if not channel.is_singleton
                    else stream.name
                )
                label = label.replace('"', "'")
                lines.append(
                    f'  {edge[0]} -> {edge[1]} [style={style}, label="{label}"];'
                )
        for stream_id, query_ids in self._sinks.items():
            stream = self._streams[stream_id]
            sink_node = f"sink_{stream_id}"
            label = ",".join(str(q) for q in query_ids).replace('"', "'")
            lines.append(
                f'  {sink_node} [label="{label}", shape=plaintext];'
            )
            lines.append(f"  {node_of(stream)} -> {sink_node};")
        lines.append("}")
        return "\n".join(lines)
