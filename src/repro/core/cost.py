"""An analytical cost model for RUMOR plans (paper §7, future work).

The paper closes by noting that "it is valuable to supplement the rule-based
query optimizer with a cost model, such that the optimizer can drive the rule
applications based on a cost function".  This module provides that
supplement:

- :class:`SelectivityEstimator` — heuristic selectivities for predicates
  (equality through an assumed domain size, inequalities via fixed
  fractions, conjunction via independence);
- :class:`CostModel` — per-tuple processing cost of a plan, derived by
  propagating estimated tuple rates through the m-op DAG with per-m-op-kind
  cost formulas.  The formulas charge exactly the effects the paper's
  heuristics reason about: hash lookups vs sequential scans for selections,
  per-instance state touches for event operators, and the channel
  overhead/savings trade-off of §3.2 (membership handling per tuple vs
  one-evaluation-for-n-queries).

The model is intentionally coarse — its purpose is *ordering* alternative
plans, not predicting wall-clock time.  ``CostModel.plan_cost`` is used by
the ablation benchmarks and by :func:`cheapest_plan` to realize a minimal
cost-based optimizer: build candidate plans under different rule sets and
keep the cheapest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.core.plan import QueryPlan
from repro.operators.expressions import LEFT, RIGHT
from repro.operators.predicates import (
    And,
    Comparison,
    DurationWithin,
    FalsePredicate,
    Not,
    Or,
    Predicate,
    TruePredicate,
    as_constant_equality,
)


@dataclass
class SelectivityEstimator:
    """Heuristic predicate selectivities.

    ``domain_size`` is the assumed distinct-value count behind equality
    predicates (the paper's synthetic attributes draw from 1000 values).
    """

    domain_size: int = 1000
    inequality_selectivity: float = 1.0 / 3.0
    range_selectivity: float = 0.5

    def selectivity(self, predicate: Predicate) -> float:
        if isinstance(predicate, TruePredicate):
            return 1.0
        if isinstance(predicate, FalsePredicate):
            return 0.0
        if isinstance(predicate, DurationWithin):
            return 1.0  # duration handled through state sizing, not rate
        if isinstance(predicate, And):
            result = 1.0
            for part in predicate.parts:
                result *= self.selectivity(part)
            return result
        if isinstance(predicate, Or):
            result = 1.0
            for part in predicate.parts:
                result *= 1.0 - self.selectivity(part)
            return 1.0 - result
        if isinstance(predicate, Not):
            return 1.0 - self.selectivity(predicate.part)
        if isinstance(predicate, Comparison):
            if predicate.op == "==":
                return 1.0 / max(2, self.domain_size)
            if predicate.op == "!=":
                return 1.0 - 1.0 / max(2, self.domain_size)
            return self.inequality_selectivity
        return self.range_selectivity


#: Relative unit costs of primitive actions (hash lookup ≪ predicate eval).
HASH_LOOKUP_COST = 0.3
PREDICATE_EVAL_COST = 1.0
EMIT_COST = 0.5
MEMBERSHIP_COST = 0.1  # per-tuple channel decode/encode overhead (§3.2)
STATE_TOUCH_COST = 0.8
#: Per-tuple cost of re-emitting a derived channel into another shard's
#: entry (encode + queue hop + decode).  Charged against the bridge
#: stream's estimated rate when the shard planner scores a candidate cut
#: the Roy-et-al way: the benefit of splitting a sharing group must exceed
#: the relay traffic it creates.
RELAY_HOP_COST = 2.0


@dataclass
class CostModel:
    """Per-tuple cost estimation over a query plan."""

    selectivity: SelectivityEstimator = field(default_factory=SelectivityEstimator)

    # -- public API ---------------------------------------------------------------

    def plan_cost(self, plan: QueryPlan) -> float:
        """Expected processing cost per unit of source input.

        Source streams are assigned rate 1; every m-op charges its per-kind
        formula against its input rates and propagates estimated output
        rates downstream (topologically, which plan construction order
        already guarantees).
        """
        rates: dict[int, float] = {}
        for source in plan.sources:
            rates[source.stream_id] = 1.0
        total = 0.0
        for mop in self._topological(plan):
            total += self._mop_cost(plan, mop, rates)
        return total

    def attributed_costs(
        self, plan: QueryPlan
    ) -> tuple[dict[int, float], dict[int, float]]:
        """Per-m-op cost attribution and per-stream rate estimates.

        Returns ``(mop_costs, stream_rates)``: ``mop_costs`` maps
        ``id(mop)`` to the m-op's share of :meth:`plan_cost` (they sum to
        it exactly) and ``stream_rates`` maps ``stream_id`` to the
        estimated tuples per unit of source input on that stream.  The
        shard planner uses both as edge weights when scoring candidate
        bridge cuts: fragment cost is the sum of its m-ops' attributed
        costs, and the relay traffic a cut creates is the cut stream's
        rate.
        """
        rates: dict[int, float] = {}
        for source in plan.sources:
            rates[source.stream_id] = 1.0
        costs: dict[int, float] = {}
        for mop in self._topological(plan):
            costs[id(mop)] = self._mop_cost(plan, mop, rates)
        return costs, rates

    def compare(self, first: QueryPlan, second: QueryPlan) -> float:
        """cost(first) - cost(second); negative means ``first`` is cheaper."""
        return self.plan_cost(first) - self.plan_cost(second)

    # -- internals ------------------------------------------------------------------

    def _topological(self, plan: QueryPlan):
        """M-ops in dependency order (inputs before consumers)."""
        produced: set[int] = {source.stream_id for source in plan.sources}
        remaining = list(plan.mops)
        ordered = []
        while remaining:
            progressed = False
            for mop in list(remaining):
                if all(
                    stream.stream_id in produced for stream in mop.input_streams
                ):
                    ordered.append(mop)
                    remaining.remove(mop)
                    produced.update(
                        stream.stream_id for stream in mop.output_streams
                    )
                    progressed = True
            if not progressed:  # cycle-safe fallback; plans are DAGs
                ordered.extend(remaining)
                break
        return ordered

    def _rate_of(self, rates: dict[int, float], stream) -> float:
        return rates.get(stream.stream_id, 0.0)

    def _mop_cost(self, plan: QueryPlan, mop, rates: dict[int, float]) -> float:
        from repro.mops.channel_ops import (
            ChannelProjectionMOp,
            ChannelSelectionMOp,
        )
        from repro.mops.channel_sequence import ChannelSequenceMOp
        from repro.mops.fragment_aggregate import FragmentAggregateMOp
        from repro.mops.precision_join import PrecisionJoinMOp
        from repro.mops.predicate_index import PredicateIndexMOp
        from repro.mops.shared_aggregate import SharedAggregateMOp
        from repro.mops.shared_join import SharedJoinMOp
        from repro.mops.shared_sequence import (
            IndexedSequenceMOp,
            SharedSequenceMOp,
        )
        from repro.mops.shared_window_sequence import SharedWindowSequenceMOp
        from repro.operators.aggregate import SlidingWindowAggregate
        from repro.operators.iterate import Iterate
        from repro.operators.join import SlidingWindowJoin
        from repro.operators.project import Projection
        from repro.operators.select import Selection
        from repro.operators.sequence import Sequence

        instances = mop.instances
        count = len(instances)
        input_rate = sum(
            self._rate_of(rates, stream) for stream in mop.input_streams
        )
        membership = self._membership_overhead(plan, mop)

        if isinstance(mop, PredicateIndexMOp):
            indexed, scanned = self._split_indexable(instances)
            cost = input_rate * (
                HASH_LOOKUP_COST * max(1, len(indexed))
                + PREDICATE_EVAL_COST * len(scanned)
                + membership
            )
        elif isinstance(mop, (ChannelSelectionMOp, ChannelProjectionMOp)):
            # one evaluation per channel tuple regardless of member count
            cost = input_rate * (PREDICATE_EVAL_COST + membership)
        elif isinstance(mop, FragmentAggregateMOp):
            cost = input_rate * (STATE_TOUCH_COST + membership)
        elif isinstance(mop, ChannelSequenceMOp):
            cost = input_rate * (STATE_TOUCH_COST + HASH_LOOKUP_COST + membership)
        elif isinstance(mop, PrecisionJoinMOp):
            cost = input_rate * (
                STATE_TOUCH_COST + HASH_LOOKUP_COST + membership
            )
        elif isinstance(mop, SharedAggregateMOp):
            cost = input_rate * STATE_TOUCH_COST * count
        elif isinstance(mop, SharedJoinMOp):
            cost = input_rate * (STATE_TOUCH_COST + HASH_LOOKUP_COST)
        elif isinstance(mop, (SharedSequenceMOp, SharedWindowSequenceMOp)):
            cost = input_rate * (STATE_TOUCH_COST + HASH_LOOKUP_COST)
        elif isinstance(mop, IndexedSequenceMOp):
            cost = input_rate * (HASH_LOOKUP_COST + STATE_TOUCH_COST)
        else:  # naive m-op: every instance charged individually
            cost = 0.0
            for instance in instances:
                operator = instance.operator
                rate = sum(
                    self._rate_of(rates, stream) for stream in instance.inputs
                )
                if isinstance(operator, Selection):
                    cost += rate * PREDICATE_EVAL_COST
                elif isinstance(operator, Projection):
                    cost += rate * PREDICATE_EVAL_COST
                elif isinstance(operator, SlidingWindowAggregate):
                    cost += rate * STATE_TOUCH_COST
                elif isinstance(operator, (SlidingWindowJoin, Sequence, Iterate)):
                    cost += rate * (STATE_TOUCH_COST + PREDICATE_EVAL_COST)
                else:
                    cost += rate * PREDICATE_EVAL_COST
            cost += input_rate * membership

        self._propagate_rates(plan, mop, rates)
        return cost + self._emit_rate(mop, rates) * EMIT_COST

    def _membership_overhead(self, plan: QueryPlan, mop) -> float:
        """The §3.2 time overhead: membership handling on non-singleton channels."""
        overhead = 0.0
        seen: set[int] = set()
        for stream in mop.input_streams:
            channel = plan.channel_of(stream)
            if channel.channel_id in seen:
                continue
            seen.add(channel.channel_id)
            if not channel.is_singleton:
                overhead += MEMBERSHIP_COST
        return overhead

    def _split_indexable(self, instances):
        indexed, scanned = [], []
        for instance in instances:
            shape = as_constant_equality(instance.operator.predicate)
            if shape is not None and shape[0] == LEFT:
                indexed.append(instance)
            else:
                scanned.append(instance)
        return indexed, scanned

    def _propagate_rates(self, plan: QueryPlan, mop, rates: dict[int, float]):
        from repro.operators.aggregate import SlidingWindowAggregate
        from repro.operators.iterate import Iterate
        from repro.operators.join import SlidingWindowJoin
        from repro.operators.select import Selection
        from repro.operators.sequence import Sequence

        for instance in mop.instances:
            operator = instance.operator
            input_rate = sum(
                self._rate_of(rates, stream) for stream in instance.inputs
            )
            if isinstance(operator, Selection):
                rate = input_rate * self.selectivity.selectivity(operator.predicate)
            elif isinstance(operator, SlidingWindowAggregate):
                rate = self._rate_of(rates, instance.inputs[0])
            elif isinstance(operator, SlidingWindowJoin):
                rate = input_rate * self.selectivity.selectivity(operator.predicate)
            elif isinstance(operator, Sequence):
                rate = input_rate * self.selectivity.selectivity(operator.predicate)
            elif isinstance(operator, Iterate):
                rate = input_rate * self.selectivity.selectivity(operator.forward)
            else:
                rate = input_rate
            existing = rates.get(instance.output.stream_id)
            rates[instance.output.stream_id] = (
                rate if existing is None else max(existing, rate)
            )

    def _emit_rate(self, mop, rates: dict[int, float]) -> float:
        return sum(
            rates.get(stream.stream_id, 0.0) for stream in mop.output_streams
        )


def cheapest_plan(
    plan_factories: Sequence[Callable[[], QueryPlan]],
    model: Optional[CostModel] = None,
) -> tuple[QueryPlan, float, int]:
    """Minimal cost-based optimization: build candidates, keep the cheapest.

    Returns ``(plan, cost, index)`` of the winning factory.  This is the §7
    sketch made concrete: the rule engine produces alternatives (e.g. with
    and without channel rules) and the cost model arbitrates.
    """
    if model is None:
        model = CostModel()
    best = None
    for index, factory in enumerate(plan_factories):
        plan = factory()
        cost = model.plan_cost(plan)
        if best is None or cost < best[1]:
            best = (plan, cost, index)
    if best is None:
        raise ValueError("no plan factories supplied")
    return best
