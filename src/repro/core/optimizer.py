"""The rule engine: priority-ordered fixpoint application of m-rules.

The optimizer repeatedly sweeps the rule list in priority order, letting each
rule apply to every eligible m-op group, until a full sweep changes nothing.
Because rules only ever *merge* m-ops (or eliminate duplicates), the instance
count is non-increasing and the loop terminates.

Different orderings of m-rule applications may produce different plans (§3.3,
Fig. 2/3); the priority order pins one deterministic choice, which is also
what makes benchmark runs reproducible.

Besides the full fixpoint (:meth:`Optimizer.optimize`), the optimizer supports
*incremental* re-optimization (:meth:`Optimizer.optimize_incremental`) for the
online lifecycle runtime: only groups touching a set of freshly-added (dirty)
m-ops are considered, and every merge extends the dirty frontier to the merged
result — the incremental-MQO search style of Roy et al.  A ``frozen`` set of
m-op ids protects m-ops whose executors hold live operator state from being
replaced or rewired mid-stream (see :mod:`repro.engine.migration`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.mop import MOp
from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.core.rules import MRule


@dataclass(frozen=True)
class RuleApplication:
    """One rule's applications within one sweep of the fixpoint loop."""

    sweep: int
    rule: str
    count: int


@dataclass
class OptimizationReport:
    """What the optimizer did, for logging and tests.

    ``applications`` records, per sweep, which rule fired how many times —
    the sweep index makes the fixpoint trajectory inspectable (which rules
    cascade off which).  ``mops_considered`` accumulates, per sweep, how many
    m-ops were *eligible for rewriting*: the whole plan for a full fixpoint,
    only the dirty frontier for an incremental one — the quantity the churn
    benchmarks compare.  Note it counts rewrite candidates, not scan work:
    rules still hash-group the whole plan's instances each sweep (an O(plan)
    scan), but condition checks, channel analysis and plan mutation — the
    expensive part of a sweep — are confined to the counted m-ops.
    """

    sweeps: int = 0
    applications: list[RuleApplication] = field(default_factory=list)
    mops_considered: int = 0
    incremental: bool = False

    @property
    def total_applications(self) -> int:
        return sum(application.count for application in self.applications)

    def by_rule(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for application in self.applications:
            totals[application.rule] = (
                totals.get(application.rule, 0) + application.count
            )
        return totals

    def by_sweep(self) -> dict[int, list[RuleApplication]]:
        sweeps: dict[int, list[RuleApplication]] = {}
        for application in self.applications:
            sweeps.setdefault(application.sweep, []).append(application)
        return sweeps

    def __str__(self):
        parts = "; ".join(
            "sweep {}: {}".format(
                sweep,
                ", ".join(f"{a.rule}×{a.count}" for a in applications),
            )
            for sweep, applications in sorted(self.by_sweep().items())
        )
        mode = "incremental, " if self.incremental else ""
        return (
            f"OptimizationReport({mode}{self.sweeps} sweeps, "
            f"{self.mops_considered} m-ops considered: {parts or 'no-op'})"
        )


class Optimizer:
    """Applies an m-rule set to a query plan until fixpoint."""

    def __init__(self, rules: Optional[Sequence[MRule]] = None):
        if rules is None:
            rules = default_rules()
        self.rules: list[MRule] = sorted(rules, key=lambda rule: rule.priority)

    def optimize(self, plan: QueryPlan) -> OptimizationReport:
        """Rewrite ``plan`` in place; returns a report of applied rules."""
        report = OptimizationReport()
        changed = True
        while changed:
            changed = False
            report.sweeps += 1
            report.mops_considered += len(plan.mops)
            for rule in self.rules:
                count = rule.apply(plan)
                if count:
                    report.applications.append(
                        RuleApplication(report.sweeps, rule.name, count)
                    )
                    changed = True
        plan.validate()
        return report

    def optimize_incremental(
        self,
        plan: QueryPlan,
        dirty_mops: Iterable[MOp],
        frozen: Optional[set[int]] = None,
    ) -> OptimizationReport:
        """Scoped fixpoint: sweep rules only over ``dirty_mops`` + frontier.

        ``dirty_mops`` are the m-ops freshly grafted into the live plan (a
        newly registered query's naive m-ops).  Each sweep, rules only
        consider groups containing at least one dirty instance; the complete
        structural group still participates (the *merge frontier* — a new
        selection may merge into an existing predicate index), and every
        merge result joins the dirty set, so cascading rewrites propagate.

        ``frozen`` is a set of ``mop_id`` values that must not be replaced or
        have their channel wiring changed — the runtime passes the m-ops
        whose executors hold live operator state, so that a state-preserving
        migration remains possible after the rewrite.
        """
        report = OptimizationReport(incremental=True)
        dirty_mops = list(dirty_mops)
        scope = {
            id(instance) for mop in dirty_mops for instance in mop.instances
        }
        if not scope:
            plan.validate()
            return report
        frozen = frozen or set()
        # The frontier — the m-ops currently owning a scoped instance — is
        # maintained incrementally: rules update it as merges replace owners
        # (the target joins, the merged sources leave) and CSE retires
        # duplicates.  The seed rescanned every plan instance per sweep to
        # recompute it, an O(plan) cost defeating the point of a scoped
        # fixpoint on large live plans.
        frontier = {mop.mop_id for mop in dirty_mops}
        changed = True
        while changed:
            changed = False
            report.sweeps += 1
            report.mops_considered += len(frontier)
            for rule in self.rules:
                count = rule.apply(
                    plan, scope=scope, frozen=frozen, frontier=frontier
                )
                if count:
                    report.applications.append(
                        RuleApplication(report.sweeps, rule.name, count)
                    )
                    changed = True
        plan.validate()
        return report
