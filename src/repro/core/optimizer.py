"""The rule engine: priority-ordered fixpoint application of m-rules.

The optimizer repeatedly sweeps the rule list in priority order, letting each
rule apply to every eligible m-op group, until a full sweep changes nothing.
Because rules only ever *merge* m-ops (or eliminate duplicates), the instance
count is non-increasing and the loop terminates.

Different orderings of m-rule applications may produce different plans (§3.3,
Fig. 2/3); the priority order pins one deterministic choice, which is also
what makes benchmark runs reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.core.rules import MRule


@dataclass
class OptimizationReport:
    """What the optimizer did, for logging and tests."""

    sweeps: int = 0
    applications: list[tuple[str, int]] = field(default_factory=list)

    @property
    def total_applications(self) -> int:
        return sum(count for __, count in self.applications)

    def by_rule(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for name, count in self.applications:
            totals[name] = totals.get(name, 0) + count
        return totals

    def __str__(self):
        parts = ", ".join(f"{name}×{count}" for name, count in self.by_rule().items())
        return f"OptimizationReport({self.sweeps} sweeps: {parts or 'no-op'})"


class Optimizer:
    """Applies an m-rule set to a query plan until fixpoint."""

    def __init__(self, rules: Optional[Sequence[MRule]] = None):
        if rules is None:
            rules = default_rules()
        self.rules: list[MRule] = sorted(rules, key=lambda rule: rule.priority)

    def optimize(self, plan: QueryPlan) -> OptimizationReport:
        """Rewrite ``plan`` in place; returns a report of applied rules."""
        report = OptimizationReport()
        changed = True
        while changed:
            changed = False
            report.sweeps += 1
            for rule in self.rules:
                count = rule.apply(plan)
                if count:
                    report.applications.append((rule.name, count))
                    changed = True
        plan.validate()
        return report
