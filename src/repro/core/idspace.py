"""Process-disjoint identifier ranges for cross-process plan objects.

Streams, channels and m-ops draw their identities from module-level
counters, which is fine while every plan object is born in one process.
The process-mode sharded runtime breaks that assumption: each worker
compiles queries (creating derived streams, channels and m-ops) in its own
process, and a cross-process rebalance then grafts those objects into
*another* worker's plan.  If two workers hand out overlapping ids, the
receiving plan's id-keyed tables (``_streams``, ``_channel_by_stream``, the
engine's ``mop_id``-keyed executor entries) silently alias two distinct
objects — exactly the kind of corruption that produces wrong outputs with
no crash.

The fix is to partition the id space: every worker *incarnation* reseeds
the three counters into its own ``WORKER_ID_STRIDE``-sized range before
creating any plan object.  The coordinator keeps the low range (ids start
at 1), and a respawned worker gets a fresh incarnation number, so ids
created by a crashed predecessor — which may live on, inside components
that were rebalanced away before the crash — can never be re-issued.
"""

from __future__ import annotations

import itertools

#: Width of one worker incarnation's id range.  2**40 ids per incarnation
#: leaves room for ~8 million incarnations inside Python's fast int range
#: while being unreachable by any realistic coordinator-side allocation.
WORKER_ID_STRIDE = 1 << 40


def worker_id_base(incarnation: int) -> int:
    """First id of the given worker incarnation's range (incarnations >= 1)."""
    if incarnation < 1:
        raise ValueError(f"incarnation must be >= 1, got {incarnation}")
    return incarnation * WORKER_ID_STRIDE


def reseed_identifiers(base: int) -> None:
    """Restart the stream / channel / m-op id counters at ``base`` + 1.

    Must be called in a freshly forked worker *before* it creates any plan
    object.  (Objects inherited from the parent keep their low-range ids —
    that is the point: sources declared by the coordinator resolve to the
    same ids in every worker.)
    """
    import repro.core.mop as mop_module
    import repro.streams.channel as channel_module
    import repro.streams.stream as stream_module

    stream_module._stream_ids = itertools.count(base + 1)
    channel_module._channel_ids = itertools.count(base + 1)
    mop_module._mop_ids = itertools.count(base + 1)
