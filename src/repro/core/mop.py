"""The physical multi-operator (m-op) abstraction (paper §2.2).

An m-op *implements* a set of operator instances.  Its input (output) streams
are the union of the implemented instances' input (output) streams; its
semantics are defined by the one-by-one execution of the implemented
operators — the reference behaviour :class:`repro.mops.naive.NaiveMOp`
provides and every optimized m-op must match.

The m-op is the scheduling and execution unit: executors consume and produce
:class:`~repro.streams.channel.ChannelTuple` values on channels.  Emission
goes through an :class:`OutputCollector`, which performs the paper's
*encoding step* (§3.1): per-instance output tuples destined for the same
channel with identical content are merged into a single channel tuple whose
membership component is the union of the member bits — this is exactly how
σ{1,2} in Fig. 1(c) produces one blue channel tuple for two queries.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Optional, Protocol, Sequence

from repro.errors import PlanError
from repro.streams.channel import Channel, ChannelTuple
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple

_mop_ids = itertools.count(1)


def _append_grouped(
    grouped: dict[int, list["ChannelTuple"]],
    order: list[tuple["Channel", list["ChannelTuple"]]],
    channel: "Channel",
    channel_tuple: "ChannelTuple",
) -> None:
    """Append to the per-channel bucket, creating it in first-appearance
    order — the grouping invariant every batch path must share so batched
    and per-tuple dispatch stay output-identical.  (Hot m-op loops inline
    this by hand; keep them in sync with this reference.)"""
    channel_id = channel.channel_id
    bucket = grouped.get(channel_id)
    if bucket is None:
        bucket = grouped[channel_id] = []
        order.append((channel, bucket))
    bucket.append(channel_tuple)


class OpInstance:
    """One logical operator instance inside a plan.

    Ties an operator definition to the concrete input streams it reads, the
    output stream it produces, and the query it belongs to (attribution for
    per-query accounting; several instances may share a ``query_id``).
    """

    __slots__ = ("operator", "inputs", "output", "query_id", "owner")

    def __init__(self, operator, inputs: Sequence[StreamDef], output: StreamDef, query_id=None):
        if len(inputs) != operator.arity:
            raise PlanError(
                f"{type(operator).__name__} has arity {operator.arity} but got "
                f"{len(inputs)} input stream(s)"
            )
        self.operator = operator
        self.inputs: tuple[StreamDef, ...] = tuple(inputs)
        self.output = output
        self.query_id = query_id
        #: The m-op currently implementing this instance (set by MOp).
        self.owner: Optional["MOp"] = None

    def __repr__(self):
        return (
            f"OpInstance({self.operator.symbol} "
            f"{[s.name for s in self.inputs]} -> {self.output.name})"
        )


class Wiring(Protocol):
    """What executors need to know about plan wiring (provided by QueryPlan)."""

    def channel_of(self, stream: StreamDef) -> Channel: ...


class MOpExecutor:
    """Mutable runtime state of one m-op.

    ``process`` consumes one channel tuple arriving on one of the m-op's
    input channels and returns the channel tuples it produces, paired with
    their output channels.

    ``process_batch`` is the amortized entry point of the batched engine:
    one call consumes a *run* of channel tuples arriving on one channel, in
    order, and returns the produced tuples grouped per output channel.  The
    default implementation falls back to per-tuple :meth:`process`; hot
    m-ops override it with a vectorized path.  Implementations must preserve
    per-tuple semantics exactly: state updates happen in batch order, and
    the tuples inside each returned group appear in emission order.
    """

    def process(
        self, channel: Channel, channel_tuple: ChannelTuple
    ) -> list[tuple[Channel, ChannelTuple]]:
        raise NotImplementedError

    def process_batch(
        self, channel: Channel, batch: Sequence[ChannelTuple]
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        grouped: dict[int, list[ChannelTuple]] = {}
        order: list[tuple[Channel, list[ChannelTuple]]] = []
        process = self.process
        for channel_tuple in batch:
            for out_channel, out_tuple in process(channel, channel_tuple):
                _append_grouped(grouped, order, out_channel, out_tuple)
        return order

    @property
    def state_size(self) -> int:
        return 0

    def snapshot_state(self):
        """The executor's operator state as plain picklable containers.

        ``None`` for stateless executors.  Mirrors
        :meth:`repro.operators.base.OperatorExecutor.snapshot_state`: the
        snapshot carries window contents, instance stores and partial-match
        state — never compiled closures or wiring tables — so it can cross
        a process boundary and re-seed a freshly built executor of the same
        m-op via :meth:`restore_state`.
        """
        return None

    def restore_state(self, snapshot) -> None:
        """Install a :meth:`snapshot_state` payload (``None`` = no state)."""
        if snapshot is not None:
            raise PlanError(
                f"{type(self).__name__} holds no state and cannot restore one"
            )

    @property
    def is_stateful(self) -> bool:
        """Whether this executor *class* can ever hold operator state.

        Executors that do not override :attr:`state_size` are stateless by
        construction; the engine partitions on this at table-rebuild time so
        state sampling never re-visits them.
        """
        return type(self).state_size is not MOpExecutor.state_size


class MOp:
    """A physical multi-operator: the plan node and scheduling unit."""

    #: Human-readable kind, e.g. "σ-index"; subclasses override.
    kind = "m-op"

    def __init__(self, instances: Iterable[OpInstance]):
        self.mop_id: int = next(_mop_ids)
        self.instances: list[OpInstance] = list(instances)
        if not self.instances:
            raise PlanError("an m-op must implement at least one operator")
        for instance in self.instances:
            instance.owner = self
            instance.output.producer = self

    # -- stream sets (paper §2.2 definitions) -------------------------------------

    @property
    def input_streams(self) -> list[StreamDef]:
        """Union of instance input streams, in first-appearance order."""
        seen: set[int] = set()
        result: list[StreamDef] = []
        for instance in self.instances:
            for stream in instance.inputs:
                if stream.stream_id not in seen:
                    seen.add(stream.stream_id)
                    result.append(stream)
        return result

    @property
    def output_streams(self) -> list[StreamDef]:
        seen: set[int] = set()
        result: list[StreamDef] = []
        for instance in self.instances:
            if instance.output.stream_id not in seen:
                seen.add(instance.output.stream_id)
                result.append(instance.output)
        return result

    def make_executor(self, wiring: Wiring) -> MOpExecutor:
        """Build a fresh executor against the plan's current wiring."""
        raise NotImplementedError

    def describe(self) -> str:
        symbols = "".join(sorted({i.operator.symbol for i in self.instances}))
        return f"{self.kind}[{symbols}×{len(self.instances)}]#{self.mop_id}"

    def __repr__(self):
        return self.describe()


class OutputCollector:
    """The encoding step: route per-instance outputs onto output channels.

    Built once per executor from the plan wiring; ``emit`` merges identical
    tuples destined for the same channel into one channel tuple with a
    multi-bit membership mask.
    """

    __slots__ = ("_routes",)

    def __init__(self, wiring: Wiring, output_streams: Sequence[StreamDef]):
        self._routes: dict[int, tuple[Channel, int]] = {}
        for stream in output_streams:
            channel = wiring.channel_of(stream)
            bit = 1 << channel.position_of(stream)
            self._routes[stream.stream_id] = (channel, bit)

    def route(self, stream: StreamDef) -> tuple[Channel, int]:
        """The (channel, membership bit) a stream's outputs go to."""
        return self._routes[stream.stream_id]

    def emit(
        self, outputs: Iterable[tuple[StreamDef, StreamTuple]]
    ) -> list[tuple[Channel, ChannelTuple]]:
        """Encode (stream, tuple) emissions into channel tuples.

        Tuples with identical content emitted to several member streams of
        the same channel become one channel tuple (shared space, §3.1) — but
        only across *disjoint* membership bits: a stream legitimately emitting
        the same content twice (two matched instances, multiset semantics)
        keeps two channel tuples.  Emission order follows first appearance,
        keeping runs deterministic.
        """
        if not outputs:
            return []
        routes = self._routes
        return self.emit_masked(
            [routes[stream.stream_id] + (tuple_,) for stream, tuple_ in outputs]
        )

    def emit_masked(
        self, outputs: Iterable[tuple[Channel, int, StreamTuple] | tuple]
    ) -> list[tuple[Channel, ChannelTuple]]:
        """Emit pre-encoded (channel, mask, tuple) triples.

        Identical content within one channel is merged only into masks it is
        disjoint with, preserving per-stream multiset counts.
        """
        if not outputs:
            return []
        merged: dict[tuple[int, StreamTuple], list[int]] = {}
        order: list[tuple[Channel, tuple[int, StreamTuple]]] = []
        for channel, mask, tuple_ in outputs:
            key = (channel.channel_id, tuple_)
            masks = merged.get(key)
            if masks is None:
                merged[key] = [mask]
                order.append((channel, key))
                continue
            for index, existing in enumerate(masks):
                if not existing & mask:
                    masks[index] = existing | mask
                    break
            else:
                masks.append(mask)
                order.append((channel, key))
        results: list[tuple[Channel, ChannelTuple]] = []
        cursor: dict[tuple[int, StreamTuple], int] = {}
        for channel, key in order:
            index = cursor.get(key, 0)
            cursor[key] = index + 1
            results.append((channel, ChannelTuple(key[1], merged[key][index])))
        return results

    def emit_batch(
        self,
        per_tuple_outputs: Iterable[Sequence[tuple[StreamDef, StreamTuple]]],
    ) -> list[tuple[Channel, list[ChannelTuple]]]:
        """Batch emission: one emission list per *input* tuple, grouped per
        output channel.

        Merging stays scoped to each input tuple's emissions — exactly what
        per-tuple :meth:`emit` would produce — so batched and per-tuple
        dispatch yield identical channel tuples.  The common 0/1-emission
        cases skip the merge machinery entirely.
        """
        routes = self._routes
        grouped: dict[int, list[ChannelTuple]] = {}
        order: list[tuple[Channel, list[ChannelTuple]]] = []
        for outputs in per_tuple_outputs:
            if not outputs:
                continue
            if len(outputs) == 1:
                stream, tuple_ = outputs[0]
                channel, bit = routes[stream.stream_id]
                _append_grouped(grouped, order, channel, ChannelTuple(tuple_, bit))
                continue
            for channel, channel_tuple in self.emit(outputs):
                _append_grouped(grouped, order, channel, channel_tuple)
        return order
