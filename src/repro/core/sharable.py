"""The sharable-stream relation ``∼`` (paper §3.2).

Two streams are sharable iff "they are the result of the same query plans,
modulo any selection operators anywhere in the plan, applied to the same
input streams".  The paper defines ``∼`` inductively (base cases on sources,
congruence through equal unary/binary operators, transparency of selections,
symmetry, transitivity).

We compute ``∼`` by assigning each stream a *structural signature*:

- a source signature is its sharable label when present, else its unique
  stream id (so unlabeled sources are only sharable with themselves —
  base case 1),
- a selection's output signature equals its input's signature (the special
  case for selection),
- any other operator's output signature is the operator definition combined
  with the input signatures (congruence for unary and binary operators).

Signature equality is then exactly ``∼``: reflexivity, symmetry and
transitivity come for free, which is the paper's point that ``∼`` is "very
efficient to compute and store".
"""

from __future__ import annotations

from typing import Hashable

from repro.core.plan import QueryPlan
from repro.streams.stream import StreamDef


def sharability_signature(
    plan: QueryPlan,
    stream: StreamDef,
    _memo: dict[int, Hashable] | None = None,
) -> Hashable:
    """Structural signature of ``stream`` within ``plan`` (hashable)."""
    memo: dict[int, Hashable] = _memo if _memo is not None else {}
    cached = memo.get(stream.stream_id)
    if cached is not None:
        return cached
    producer = plan.producer_instance_of(stream)
    if producer is None:
        if stream.sharable_label is not None:
            signature: Hashable = ("src", stream.sharable_label)
        else:
            signature = ("src-id", stream.stream_id)
    elif producer.operator.is_selection:
        signature = sharability_signature(plan, producer.inputs[0], memo)
    else:
        signature = (
            producer.operator.definition(),
            tuple(
                sharability_signature(plan, input_stream, memo)
                for input_stream in producer.inputs
            ),
        )
    memo[stream.stream_id] = signature
    return signature


def sharable(plan: QueryPlan, first: StreamDef, second: StreamDef) -> bool:
    """True iff ``first ∼ second`` in ``plan``."""
    memo: dict[int, Hashable] = {}
    return sharability_signature(plan, first, memo) == sharability_signature(
        plan, second, memo
    )


def sharable_groups(plan: QueryPlan, streams: list[StreamDef]) -> list[list[StreamDef]]:
    """Partition ``streams`` into ∼-equivalence classes (stable order)."""
    memo: dict[int, Hashable] = {}
    groups: dict[Hashable, list[StreamDef]] = {}
    order: list[Hashable] = []
    for stream in streams:
        signature = sharability_signature(plan, stream, memo)
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append(stream)
    return [groups[signature] for signature in order]
