"""The default m-rule set (Table 1) with the default priority order.

Priorities realize the conflict-resolution strategy of §7: lower runs first.

=====  ========  =========================================================
prio   rule      effect
=====  ========  =========================================================
5      cse       collapse identical operators on identical inputs (§4.3)
10     sσ        predicate indexing [10, 16] — also Cayuga's FR index
15     s;/sµ     shared ``;``/``µ`` state on identical stream pairs
18     s;-ix     AN-index dispatch over same-second-stream sequences (§4.3)
19     s;-w      window-variant ``;``/``µ`` sharing (merged-state image, §4.3)
20     sα        shared aggregate evaluation [22]
20     s⋈        shared window join [12]
40     cσ/cπ     channel selections / projections (§3.3)
40     cα        shared fragment aggregation [15]
40     c⋈        precision-sharing join [14]
40     c;/cµ     channel-based event MQO (§4.4)
=====  ========  =========================================================

``default_rules(channels=False)`` returns the s-rule-only set — the plan the
paper calls "without channel" in Figures 10(c–d) and 11.
"""

from __future__ import annotations

from repro.core.rules import (
    ChannelProjectionRule,
    ChannelSelectionRule,
    ChannelSequenceRule,
    CseRule,
    FragmentAggregateRule,
    IndexedSequenceRule,
    MRule,
    PrecisionJoinRule,
    PredicateIndexRule,
    SharedAggregateRule,
    SharedJoinRule,
    SharedSequenceRule,
    SharedWindowSequenceRule,
)


def default_rules(channels: bool = True) -> list[MRule]:
    """The standard rule set, priority-sorted; ``channels=False`` omits c-rules."""
    rules: list[MRule] = [
        CseRule(),
        PredicateIndexRule(),
        SharedSequenceRule(),
        IndexedSequenceRule(),
        SharedWindowSequenceRule(),
        SharedAggregateRule(),
        SharedJoinRule(),
    ]
    if channels:
        rules.extend(
            [
                ChannelSelectionRule(),
                ChannelProjectionRule(),
                FragmentAggregateRule(),
                PrecisionJoinRule(),
                ChannelSequenceRule(),
            ]
        )
    return sorted(rules, key=lambda rule: rule.priority)
