"""RUMOR core: query plans of m-ops over channels, m-rules, and the optimizer.

This is the paper's primary contribution (§2–§4): the three abstractions that
generalize a traditional stream engine —

===================  ==========================================
traditional          RUMOR (this package)
===================  ==========================================
physical operator    :class:`~repro.core.mop.MOp` (§2.2)
transformation rule  :class:`~repro.core.rules.MRule` (§2.3)
stream               :class:`~repro.streams.channel.Channel` (§3)
===================  ==========================================

plus the machinery around them: the plan graph
(:class:`~repro.core.plan.QueryPlan`), the sharable-stream relation ``∼``
(:mod:`repro.core.sharable`), the channel-based MQO sharing criteria, the
default rule set of Table 1 (:mod:`repro.core.registry`) and the
priority-ordered fixpoint rule engine (:mod:`repro.core.optimizer`).
"""

from repro.core.mop import MOp, MOpExecutor, OpInstance, OutputCollector
from repro.core.plan import QueryPlan
from repro.core.rules import MRule
from repro.core.sharable import sharability_signature, sharable
from repro.core.optimizer import Optimizer, OptimizationReport, RuleApplication
from repro.core.registry import default_rules
from repro.core.cost import CostModel, SelectivityEstimator, cheapest_plan
from repro.core.confluence import check_confluence, plan_shape

__all__ = [
    "MOp",
    "MOpExecutor",
    "OpInstance",
    "OutputCollector",
    "QueryPlan",
    "MRule",
    "sharability_signature",
    "sharable",
    "Optimizer",
    "OptimizationReport",
    "RuleApplication",
    "default_rules",
    "CostModel",
    "SelectivityEstimator",
    "cheapest_plan",
    "check_confluence",
    "plan_shape",
]
