"""The Zipfian sampler of §5.1.

The paper draws window lengths and predicate constants from a Zipfian
distribution "favoring larger windows (i.e., a window of length 1000 is most
likely to be chosen)", default parameter 1.5.  The distribution models the
commonality observed in real large-scale workloads: many queries share the
popular values, which is what common-subexpression elimination and the shared
m-ops exploit (Fig. 9(d)).
"""

from __future__ import annotations

import numpy as np

from repro.errors import WorkloadError


class ZipfSampler:
    """Zipf over an integer range with the heaviest mass on the largest value.

    ``ZipfSampler(low, high, parameter)`` samples values in ``[low, high]``;
    rank 1 (probability ∝ 1) is ``high``, rank 2 is ``high - 1``, and so on —
    the paper's "favoring larger" convention.  Set ``favor_large=False`` for
    the classical orientation.
    """

    def __init__(
        self,
        low: int,
        high: int,
        parameter: float = 1.5,
        rng: np.random.Generator | None = None,
        favor_large: bool = True,
    ):
        if high < low:
            raise WorkloadError(f"empty range [{low}, {high}]")
        if parameter <= 0:
            raise WorkloadError(f"Zipf parameter must be positive, got {parameter}")
        self.low = low
        self.high = high
        self.parameter = parameter
        self._rng = rng if rng is not None else np.random.default_rng()
        size = high - low + 1
        ranks = np.arange(1, size + 1, dtype=np.float64)
        weights = ranks ** -parameter
        self._probabilities = weights / weights.sum()
        if favor_large:
            # rank k -> value high - (k - 1)
            self._values = np.arange(high, low - 1, -1, dtype=np.int64)
        else:
            self._values = np.arange(low, high + 1, dtype=np.int64)

    def sample(self, count: int = 1) -> np.ndarray:
        """Draw ``count`` values (numpy int64 array)."""
        return self._rng.choice(self._values, size=count, p=self._probabilities)

    def sample_one(self) -> int:
        return int(self.sample(1)[0])

    def expected_distinct(self, count: int) -> float:
        """Expected number of distinct values among ``count`` draws.

        Useful for sizing expectations in tests: E[distinct] =
        Σ (1 - (1 - p_i)^count).
        """
        return float(np.sum(1.0 - (1.0 - self._probabilities) ** count))
