"""Churn workloads: Poisson query arrival and departure over a live stream.

Production multi-query systems see queries come and go while the stream keeps
flowing; the paper's batch workloads (§5.2) never exercise that.  This module
generates *churn schedules* — register/unregister events placed on the same
timestamp axis as the synthetic S/T streams — plus the query pool they draw
from, and a driver that replays stream events and lifecycle events through a
:class:`~repro.runtime.QueryRuntime` in timestamp order.

Arrivals form a Poisson process (exponential inter-arrival times, rate
``arrival_rate`` per timestamp unit); each arrived query lives an
exponentially-distributed ``mean_lifetime`` and then departs.  Queries cycle
through three templates chosen to exercise the optimizer's sharing rules and
the engine's state migration differently:

- **select** — ``σ(a0 == c)(S)``: stateless, merges into the predicate index
  (sσ) of earlier arrivals;
- **sequence** — ``σ(a0 == c)(S) ;θ T`` (Workload-1 shape): the sequence
  holds partial matches, so departure must free state and arrival must not
  disturb live sequence executors;
- **aggregate** — ``avg(a1) OVER w BY a0`` on S: window state that must ride
  through migrations untouched.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.errors import WorkloadError
from repro.lang.ast import (
    AggregateNode,
    JoinNode,
    LogicalQuery,
    SelectNode,
    SequenceNode,
    SourceNode,
)
from repro.operators.expressions import attr, left, lit, right
from repro.operators.predicates import Comparison, DurationWithin, conjunction
from repro.streams.tuples import StreamTuple
from repro.workloads.synthetic import interleaved_events, synthetic_schema

TEMPLATES = ("select", "sequence", "aggregate")

#: Every template the pool knows; ``templates=`` may name any subset.  The
#: extra **join** template (``S ⋈ T ON a0 WITHIN w``) holds both window
#: sides as operator state — the checkpoint/recovery suites use it to cover
#: the join executor family under churn.
ALL_TEMPLATES = ("select", "sequence", "aggregate", "join")


@dataclass(frozen=True)
class ChurnEvent:
    """One lifecycle event on the stream-time axis."""

    at: int  # fires before the first stream event with ts >= at
    kind: str  # "register" | "unregister"
    query_id: str
    query: Optional[LogicalQuery] = None  # set for registers

    def __repr__(self):
        return f"ChurnEvent({self.kind} {self.query_id} @ {self.at})"


class ChurnWorkload:
    """A deterministic Poisson register/unregister schedule over S and T.

    ``initial_queries`` register at time 0 (the standing population);
    subsequent arrivals follow the Poisson process until ``horizon``
    timestamps.  All randomness is seeded, so the same parameters always
    yield the same schedule and queries — churn benchmark runs stay
    reproducible, like every other workload in this repo.
    """

    def __init__(
        self,
        arrival_rate: float = 0.01,
        mean_lifetime: float = 400.0,
        horizon: int = 2000,
        initial_queries: int = 4,
        num_attributes: int = 10,
        constant_domain: int = 20,
        window_domain: int = 50,
        seed: int = 0,
        templates: tuple = TEMPLATES,
    ):
        if arrival_rate < 0:
            raise WorkloadError("arrival_rate must be non-negative")
        if mean_lifetime <= 0:
            raise WorkloadError("mean_lifetime must be positive")
        if horizon < 1:
            raise WorkloadError("horizon must be at least 1")
        if not templates:
            raise WorkloadError("templates must name at least one template")
        unknown = [name for name in templates if name not in ALL_TEMPLATES]
        if unknown:
            raise WorkloadError(
                f"unknown templates {unknown}; choose from {ALL_TEMPLATES}"
            )
        self.templates = tuple(templates)
        self.arrival_rate = arrival_rate
        self.mean_lifetime = mean_lifetime
        self.horizon = horizon
        self.initial_queries = initial_queries
        self.schema = synthetic_schema(num_attributes)
        self.constant_domain = constant_domain
        self.window_domain = window_domain
        self.seed = seed
        self._rng = np.random.default_rng(seed)
        self._schedule = self._build_schedule()

    # -- query pool ----------------------------------------------------------------

    def query(self, index: int) -> LogicalQuery:
        """Deterministic query ``index`` from the cycling template pool."""
        rng = np.random.default_rng(self.seed + 1000 + index)
        constant = int(rng.integers(0, self.constant_domain))
        window = int(rng.integers(1, self.window_domain + 1))
        template = self.templates[index % len(self.templates)]
        source = SourceNode("S")
        if template == "select":
            root = SelectNode(source, Comparison(attr("a0"), "==", lit(constant)))
        elif template == "join":
            root = JoinNode(
                source,
                SourceNode("T"),
                Comparison(left("a0"), "==", right("a0")),
                window,
            )
        elif template == "sequence":
            selected = SelectNode(
                source, Comparison(attr("a0"), "==", lit(constant))
            )
            predicate = conjunction(
                [
                    DurationWithin(window),
                    Comparison(
                        right("a0"),
                        "==",
                        lit(int(rng.integers(0, self.constant_domain))),
                    ),
                ]
            )
            root = SequenceNode(selected, SourceNode("T"), predicate)
        else:  # aggregate
            root = AggregateNode(
                source,
                "avg",
                "a1",
                window,
                group_by=("a0",),
                output_name="avg_a1",
            )
        return LogicalQuery(f"q{index}", root)

    # -- schedule ------------------------------------------------------------------

    def _build_schedule(self) -> list[ChurnEvent]:
        raw: list[tuple[int, int, ChurnEvent]] = []
        sequence = 0

        def add(at: float, kind: str, index: int, query=None) -> None:
            nonlocal sequence
            at_ts = min(int(at), self.horizon)
            raw.append(
                (
                    at_ts,
                    sequence,
                    ChurnEvent(at_ts, kind, f"q{index}", query),
                )
            )
            sequence += 1

        index = 0
        for __ in range(self.initial_queries):
            add(0, "register", index, self.query(index))
            self._maybe_departure(0.0, index, add)
            index += 1
        clock = 0.0
        while self.arrival_rate > 0:
            clock += float(self._rng.exponential(1.0 / self.arrival_rate))
            if clock >= self.horizon:
                break
            add(clock, "register", index, self.query(index))
            self._maybe_departure(clock, index, add)
            index += 1
        self.total_queries = index
        raw.sort(key=lambda entry: (entry[0], entry[1]))
        return [event for __, __seq, event in raw]

    def _maybe_departure(self, arrived_at: float, index: int, add) -> None:
        departs_at = arrived_at + float(self._rng.exponential(self.mean_lifetime))
        if departs_at < self.horizon:
            add(departs_at, "unregister", index)

    def schedule(self) -> list[ChurnEvent]:
        return list(self._schedule)

    def registrations(self) -> int:
        """Distinct queries the schedule registers over its lifetime."""
        return self.total_queries

    # -- stream events -------------------------------------------------------------

    def stream_events(self) -> list[tuple[str, StreamTuple]]:
        """``horizon`` interleaved S/T events on timestamps 0..horizon-1.

        A fresh seeded generator per call: repeated calls return the *same*
        sequence, so serving one workload object in two modes (the natural
        incremental vs. full-rebuild A/B) compares identical streams.
        """
        return interleaved_events(
            self.schema, self.horizon, np.random.default_rng(self.seed + 1)
        )


def drive(
    runtime,
    stream_events: Iterable[tuple[str, StreamTuple]],
    churn_events: Iterable[ChurnEvent],
) -> Iterator[ChurnEvent]:
    """Replay stream + lifecycle events through ``runtime`` in time order.

    Each churn event fires before the first stream event whose timestamp has
    reached it; remaining churn events past the last stream timestamp fire at
    the end.  Unregisters for queries that never became active (e.g. the
    runtime was handed a truncated schedule) are skipped.  Yields each
    lifecycle event as it is applied, so callers can interleave their own
    bookkeeping (plan snapshots, stats sampling) with the run.
    """
    pending = list(churn_events)
    position = 0
    for stream_name, tuple_ in stream_events:
        while position < len(pending) and pending[position].at <= tuple_.ts:
            event = pending[position]
            position += 1
            if _apply(runtime, event):
                yield event
        runtime.process(stream_name, tuple_)
    while position < len(pending):
        event = pending[position]
        position += 1
        if _apply(runtime, event):
            yield event


def drive_batched(
    runtime,
    stream_events: Iterable[tuple[str, StreamTuple]],
    churn_events: Iterable[ChurnEvent],
    max_batch: int = 1024,
) -> Iterator[ChurnEvent]:
    """Batched :func:`drive`: same event/lifecycle interleaving, but maximal
    runs of consecutive same-stream events between lifecycle boundaries are
    pushed through ``QueryRuntime.process_batch`` as one batch.

    Lifecycle events still fire before the first stream event whose
    timestamp reaches them — a pending batch is flushed first, so every
    migration happens on a batch boundary and the serve is event-for-event
    equivalent to the per-event driver.
    """
    pending = list(churn_events)
    position = 0
    run_name: Optional[str] = None
    run: list[StreamTuple] = []
    for stream_name, tuple_ in stream_events:
        boundary = (
            position < len(pending) and pending[position].at <= tuple_.ts
        )
        if run and (
            boundary or stream_name != run_name or len(run) >= max_batch
        ):
            runtime.process_batch(run_name, run)
            run = []
        while position < len(pending) and pending[position].at <= tuple_.ts:
            event = pending[position]
            position += 1
            if _apply(runtime, event):
                yield event
        run_name = stream_name
        run.append(tuple_)
    if run:
        runtime.process_batch(run_name, run)
    while position < len(pending):
        event = pending[position]
        position += 1
        if _apply(runtime, event):
            yield event


def drive_sharded(
    runtime,
    stream_events: Iterable[tuple[str, StreamTuple]],
    churn_events: Iterable[ChurnEvent],
    max_batch: int = 1024,
    rebalance_every: int = 0,
    policy=None,
    heartbeat_interval: float = 0.0,
) -> Iterator[ChurnEvent]:
    """Serve a churn schedule through a sharded lifecycle runtime
    (in-process :class:`~repro.shard.ShardedRuntime` or process-mode
    :class:`~repro.shard.proc.ProcessShardedRuntime`).

    Identical event/lifecycle interleaving to :func:`drive_batched` (batches
    flush before lifecycle boundaries, so registers, unregisters *and*
    rebalances all land on batch boundaries).  With ``rebalance_every`` > 0,
    after every that many applied lifecycle events the driver asks
    ``policy`` (default: :class:`~repro.shard.policy.QueryCountPolicy`
    load levelling; pass :class:`~repro.shard.policy.ThroughputPolicy` for
    the adaptive busy-time heuristic) for candidate moves and applies the
    first that succeeds.  Components the policy flags as oversized are
    skipped and counted on ``policy.oversized_alerts``.

    With ``heartbeat_interval`` > 0 a
    :class:`~repro.serve.drive.HeartbeatTimer` runs alongside the drive,
    beating the runtime on that wall-clock cadence — so worker failures
    are detected even while the driver is stalled between events (the
    inline per-event heartbeats below only fire when data flows).
    """
    from repro.errors import LifecycleError

    if rebalance_every and policy is None:
        from repro.shard.policy import QueryCountPolicy

        policy = QueryCountPolicy()
    applied = 0
    # Process-mode runtimes expose a non-blocking health pass (collect
    # pipelined checkpoint replies, recover workers that died mid-stream —
    # data frames are fire-and-forget, so nothing else would notice until
    # the next synchronous RPC).  In-process runtimes have no such method.
    heartbeat = getattr(runtime, "heartbeat", None)

    def maybe_rebalance() -> None:
        if not rebalance_every or applied % rebalance_every:
            return
        for query_id, target in policy.propose(runtime):
            try:
                runtime.rebalance(query_id, target)
            except LifecycleError:
                continue
            return

    if heartbeat_interval > 0 and heartbeat is not None:
        from repro.serve.drive import HeartbeatTimer

        timer = HeartbeatTimer(runtime, interval=heartbeat_interval)
    else:
        timer = None

    # drive_batched flushes the pending batch before every lifecycle event
    # and yields right after applying it, so each yield point is a batch
    # boundary — exactly where a rebalance is safe to interleave.
    try:
        if timer is not None:
            timer.start()
        for event in drive_batched(
            runtime, stream_events, churn_events, max_batch
        ):
            applied += 1
            if heartbeat is not None:
                heartbeat()
            maybe_rebalance()
            yield event
        if heartbeat is not None:
            heartbeat()
    finally:
        if timer is not None:
            timer.stop()


def resume_tail(
    stream_events: Iterable[tuple[str, StreamTuple]],
    churn_events: Iterable[ChurnEvent],
    input_positions: dict,
    lifecycle_ops: int,
) -> tuple[list[tuple[str, StreamTuple]], list[ChurnEvent]]:
    """The unserved tail of a churn schedule, per a coordinator journal.

    A restarted coordinator (:meth:`ProcessShardedRuntime.from_journal` /
    ``readopt``) already owns everything its journal recorded; the driver
    must replay only what comes after.  Given the *original* stream and
    churn event sequences plus the journal's resume markers
    (``runtime.input_positions()`` and ``runtime.lifecycle_ops``), this
    returns ``(stream_tail, churn_tail)`` to hand straight back to
    :func:`drive` / :func:`drive_batched` / :func:`drive_sharded`.

    The lifecycle skip mirrors :func:`_apply`'s journaling rule: registers
    always counted, unregisters only when the query was active at that
    point (tracked with a simulated active set) — an unregister the
    original serve skipped was never journaled, so it does not consume a
    journaled op here either.
    """
    remaining = int(lifecycle_ops)
    active: set = set()
    churn_tail: list[ChurnEvent] = []
    for event in churn_events:
        if remaining <= 0:
            churn_tail.append(event)
            continue
        if event.kind == "register":
            active.add(event.query_id)
            remaining -= 1
        elif event.query_id in active:
            active.discard(event.query_id)
            remaining -= 1
        # else: unregister of an inactive query — never applied, never
        # journaled; drop it from the prefix without consuming an op.
    done = dict(input_positions)
    stream_tail: list[tuple[str, StreamTuple]] = []
    for stream_name, tuple_ in stream_events:
        served = done.get(stream_name, 0)
        if served > 0:
            done[stream_name] = served - 1
            continue
        stream_tail.append((stream_name, tuple_))
    return stream_tail, churn_tail


def _apply(runtime, event: ChurnEvent) -> bool:
    if event.kind == "register":
        runtime.register(event.query)
        return True
    if event.query_id in runtime.active_queries:
        runtime.unregister(event.query_id)
        return True
    return False
