"""Simulated performance-counter datasets (substituting the paper's D1/D2).

The paper's hybrid-query experiments (§5.3) replay two proprietary Windows
Performance Monitor traces: D1 — CPU usage of 104 long-running processes on
an office machine over 24 hours, one reading per process per second — and
D2 — 28 processes on a home machine.  The traces are unavailable, so this
module synthesizes the two properties the experiments actually exploit:

1. the *shape* of the stream — one ``CPU(pid, load; ts)`` tuple per process
   per second, interleaved across processes within each second;
2. the *content* pattern the queries look for — processes whose (smoothed)
   CPU load ramps up monotonically, embedded in realistic noise.

Each process is assigned one of four regimes with seeded determinism:

- ``idle``      — load near zero with rare tiny blips,
- ``steady``    — load around a per-process mean with Gaussian noise,
- ``bursty``    — idle baseline with random rectangular bursts,
- ``ramping``   — periodic monotone ramps from a low base toward a peak,
  the pattern Query 1's ``µ`` matches, followed by a drop.

Loads are integers in [0, 100] (CPU percentage, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.streams.schema import Attribute, Schema
from repro.streams.tuples import StreamTuple

#: Schema of the performance-counter stream: CPU(pid, load; ts) (§4.1).
CPU_SCHEMA = Schema([Attribute("pid", "int"), Attribute("load", "int")])

#: Regime mix (fractions roughly reflecting a desktop's process population).
_REGIMES = ("idle", "steady", "bursty", "ramping")
_REGIME_WEIGHTS = (0.45, 0.25, 0.15, 0.15)


@dataclass
class _ProcessModel:
    pid: int
    regime: str
    base: float
    peak: float
    period: int
    phase: int
    noise: float


class PerfmonDataset:
    """A deterministic synthetic per-second CPU trace.

    ``generate(duration)`` yields ``CPU(pid, load; ts)`` tuples: within each
    second every process emits one reading, processes in pid order (the
    Performance Monitor samples all counters per collection interval).
    """

    def __init__(self, processes: int, duration_seconds: int = 86_400, seed: int = 0):
        if processes < 1:
            raise WorkloadError("need at least one process")
        if duration_seconds < 1:
            raise WorkloadError("duration must be at least one second")
        self.processes = processes
        self.duration_seconds = duration_seconds
        self.seed = seed
        rng = np.random.default_rng(seed)
        self._models = [self._make_model(pid, rng) for pid in range(processes)]

    @staticmethod
    def _make_model(pid: int, rng: np.random.Generator) -> _ProcessModel:
        regime = rng.choice(_REGIMES, p=_REGIME_WEIGHTS)
        if regime == "idle":
            base, peak = float(rng.uniform(0, 2)), 5.0
        elif regime == "steady":
            base, peak = float(rng.uniform(5, 40)), 0.0
        elif regime == "bursty":
            base, peak = float(rng.uniform(0, 5)), float(rng.uniform(40, 100))
        else:  # ramping
            base, peak = float(rng.uniform(0, 15)), float(rng.uniform(60, 100))
        return _ProcessModel(
            pid=pid,
            regime=str(regime),
            base=base,
            peak=peak,
            period=int(rng.integers(60, 600)),
            phase=int(rng.integers(0, 600)),
            noise=float(rng.uniform(0.3, 2.0)),
        )

    def _load_at(self, model: _ProcessModel, second: int, rng: np.random.Generator) -> int:
        position = (second + model.phase) % model.period
        if model.regime == "idle":
            value = model.base + (model.peak if rng.random() < 0.005 else 0.0)
        elif model.regime == "steady":
            value = model.base
        elif model.regime == "bursty":
            burst_len = max(5, model.period // 8)
            value = model.peak if position < burst_len else model.base
        else:  # ramping: monotone climb over the first 40% of the period
            ramp_len = max(10, int(model.period * 0.4))
            if position < ramp_len:
                value = model.base + (model.peak - model.base) * (position / ramp_len)
            else:
                value = model.base
        value += rng.normal(0.0, model.noise)
        return int(min(100, max(0, round(value))))

    def generate(self, duration_seconds: int | None = None) -> Iterator[StreamTuple]:
        """Yield the trace; ``duration_seconds`` may shorten the default."""
        duration = duration_seconds or self.duration_seconds
        if duration > self.duration_seconds:
            raise WorkloadError(
                f"dataset holds {self.duration_seconds}s, asked for {duration}s"
            )
        rng = np.random.default_rng(self.seed + 1)
        for second in range(duration):
            for model in self._models:
                load = self._load_at(model, second, rng)
                yield StreamTuple(CPU_SCHEMA, (model.pid, load), second)

    def events(self, duration_seconds: int | None = None) -> Iterator[tuple[str, StreamTuple]]:
        """The trace as (stream name, tuple) events for the automaton engine."""
        for tuple_ in self.generate(duration_seconds):
            yield "CPU", tuple_

    @property
    def tuples_per_second(self) -> int:
        return self.processes


def D1(seed: int = 1) -> PerfmonDataset:
    """The stand-in for the paper's office-machine dataset (104 processes)."""
    return PerfmonDataset(processes=104, duration_seconds=86_400, seed=seed)


def D2(seed: int = 2) -> PerfmonDataset:
    """The stand-in for the paper's home-machine dataset (28 processes)."""
    return PerfmonDataset(processes=28, duration_seconds=86_400, seed=seed)
