"""Synthetic stream generation (§5.1).

The paper's benchmark streams carry 10 integer attributes ``a0..a9`` plus a
timestamp.  Two streams S and T are generated with interleaved consecutive
timestamps (S gets the even timestamps, T the odd ones); attribute values are
uniform in ``[0, 1000)``.

For the channel experiments (Workload 3, §5.2) generation is round-based: a
round is 10 identical tuples on the sharable streams ``S1..Sk`` followed by
one ``T`` tuple — or, in the channel configuration, a single channel tuple
encoding all ``Si`` followed by the ``T`` tuple, so both configurations see
"exactly the same content".
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.streams.schema import Schema
from repro.streams.tuples import StreamTuple

#: Attribute values are always drawn from this range (§5.1), independently of
#: the query-constant domain size swept in Fig. 9(b).
VALUE_DOMAIN = 1000


def synthetic_schema(num_attributes: int = 10) -> Schema:
    """The paper's stream schema: ``num_attributes`` int attributes a0..a9."""
    return Schema.numbered(num_attributes)


def interleaved_events(
    schema: Schema,
    total: int,
    rng: np.random.Generator,
    value_domain: int = VALUE_DOMAIN,
    streams: Sequence[str] = ("S", "T"),
) -> list[tuple[str, StreamTuple]]:
    """Interleave tuple generation across ``streams`` with consecutive ts.

    Tuple ``i`` goes to ``streams[i % len(streams)]`` at timestamp ``i`` —
    the §5.1 scheme (S at even, T at odd timestamps for the default pair).
    """
    if total < 0:
        raise WorkloadError("total must be non-negative")
    width = len(schema)
    values = rng.integers(0, value_domain, size=(total, width))
    events = []
    stream_count = len(streams)
    for i in range(total):
        events.append(
            (
                streams[i % stream_count],
                StreamTuple(schema, tuple(int(v) for v in values[i]), i),
            )
        )
    return events


def round_robin_rounds(
    schema: Schema,
    rounds: int,
    capacity: int,
    rng: np.random.Generator,
    value_domain: int = VALUE_DOMAIN,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Content for ``rounds`` Workload 3 rounds.

    Each round is a pair ``(s_values, t_values)``: one content vector shared
    by all ``capacity`` sharable streams (the paper makes "the first 10
    tuples in every round have the same content") and one ``T`` vector.
    Timestamps are assigned by the caller: the S-side of round ``r`` is at
    ``2r``, the T tuple at ``2r + 1``.
    """
    if capacity < 1:
        raise WorkloadError("capacity must be at least 1")
    width = len(schema)
    s_values = rng.integers(0, value_domain, size=(rounds, width))
    t_values = rng.integers(0, value_domain, size=(rounds, width))
    return [(s_values[r], t_values[r]) for r in range(rounds)]


def rounds_as_plain_events(
    schema: Schema,
    rounds: list[tuple[np.ndarray, np.ndarray]],
    stream_names: Sequence[str],
    t_name: str = "T",
) -> Iterator[tuple[str, StreamTuple]]:
    """Render rounds as per-stream events (the no-channel configuration)."""
    for r, (s_values, t_values) in enumerate(rounds):
        s_tuple_values = tuple(int(v) for v in s_values)
        for name in stream_names:
            yield name, StreamTuple(schema, s_tuple_values, 2 * r)
        yield t_name, StreamTuple(schema, tuple(int(v) for v in t_values), 2 * r + 1)


def rounds_as_channel_events(
    schema: Schema,
    rounds: list[tuple[np.ndarray, np.ndarray]],
    channel_name: str = "C",
    t_name: str = "T",
) -> Iterator[tuple[str, StreamTuple]]:
    """Render rounds as channel-side events (one C tuple per round)."""
    for r, (s_values, t_values) in enumerate(rounds):
        yield channel_name, StreamTuple(
            schema, tuple(int(v) for v in s_values), 2 * r
        )
        yield t_name, StreamTuple(schema, tuple(int(v) for v in t_values), 2 * r + 1)
