"""Workload and dataset generators for the paper's evaluation (§5).

- :mod:`~repro.workloads.zipf` — the Zipfian sampler of §5.1 (favouring
  large window lengths / constants),
- :mod:`~repro.workloads.synthetic` — the synthetic interleaved S/T streams,
- :mod:`~repro.workloads.templates` — Workloads 1–3 and the hybrid Query 2
  workload, each able to build both the RUMOR plan and the Cayuga automata,
- :mod:`~repro.workloads.perfmon` — the simulated performance-counter
  datasets standing in for the paper's proprietary D1/D2 traces.
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.synthetic import (
    interleaved_events,
    synthetic_schema,
    round_robin_rounds,
)
from repro.workloads.templates import (
    HybridWorkload,
    WorkloadParameters,
    Workload1,
    Workload2,
    Workload3,
)
from repro.workloads.perfmon import PerfmonDataset, D1, D2
from repro.workloads.churn import ChurnEvent, ChurnWorkload, drive, resume_tail

__all__ = [
    "ChurnEvent",
    "ChurnWorkload",
    "drive",
    "resume_tail",
    "ZipfSampler",
    "synthetic_schema",
    "interleaved_events",
    "round_robin_rounds",
    "WorkloadParameters",
    "Workload1",
    "Workload2",
    "Workload3",
    "HybridWorkload",
    "PerfmonDataset",
    "D1",
    "D2",
]
