"""Query workload templates for the paper's experiments (§5.1–§5.3).

Each workload class can materialize itself both ways the paper evaluates:

- ``rumor_plan()`` — a :class:`~repro.core.plan.QueryPlan` (naive, then
  optimized with the default or channel-free rule set), plus the stream
  handles needed to build sources;
- ``automaton_engine()`` — an :class:`~repro.automata.AutomatonEngine`
  loaded with the equivalent Cayuga-style automata (Workloads 1 and 2).

Workload templates (§5.2):

- **Workload 1** — ``σθ1(S) ;θ2∧θ3 T``: θ1/θ3 are constant equalities on
  ``a0`` (FR / AN indexable), θ2 the duration predicate.
- **Workload 2** — ``S ;θ1∧θ2 T`` with θ1 = ``S.a0 = T.a0`` (AI indexable);
  the µ variant adds the rebind predicate θ3 = ``T.a1 > last.a1``.  As the
  AI index requires the rebind edge to correlate as well, our µ rebind also
  carries ``S.a0 = T.a0`` — i.e. the pattern is a per-``a0`` increasing
  sequence, the same correlation idiom as the paper's Query 1 (per-process
  ramps); DESIGN.md records this choice.
- **Workload 3** — ``Si ;θ1∧θ2 T`` over ``capacity`` sharable streams
  ``S1..Sk``, the channel experiment.

Hybrid workload (§5.3): n instances of the modified Query 2 over the
simulated performance-counter datasets — smoothing α (60 s window, group by
pid), per-query non-indexable starting conditions of controllable
selectivity, the monotone-ramp µ, and the shared stopping condition
``load > 10``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.automata.automaton import (
    Automaton,
    iterate_automaton,
    sequence_automaton,
)
from repro.automata.engine import AutomatonEngine
from repro.core.optimizer import Optimizer
from repro.core.plan import QueryPlan
from repro.core.registry import default_rules
from repro.errors import WorkloadError
from repro.operators.aggregate import SlidingWindowAggregate
from repro.operators.expressions import attr, last, left, lit, right
from repro.operators.iterate import Iterate
from repro.operators.predicates import (
    Comparison,
    DurationWithin,
    Predicate,
    TruePredicate,
    conjunction,
)
from repro.operators.select import Selection
from repro.operators.sequence import Sequence
from repro.operators.window import TimeWindow
from repro.streams.sources import StreamSource
from repro.streams.stream import StreamDef
from repro.streams.tuples import StreamTuple
from repro.workloads.perfmon import CPU_SCHEMA, PerfmonDataset
from repro.workloads.synthetic import (
    interleaved_events,
    round_robin_rounds,
    rounds_as_channel_events,
    synthetic_schema,
)
from repro.workloads.zipf import ZipfSampler


@dataclass
class WorkloadParameters:
    """Table 3: experimental parameters and their defaults."""

    num_queries: int = 1000
    num_attributes: int = 10
    constant_domain: int = 1000
    window_domain: int = 1000
    zipf: float = 1.5


def _optimize(plan: QueryPlan, channels: bool) -> QueryPlan:
    Optimizer(default_rules(channels=channels)).optimize(plan)
    return plan


def sources_from_events(
    plan: QueryPlan,
    name_to_stream: dict[str, StreamDef],
    events: Sequence[tuple[str, StreamTuple]],
) -> list[StreamSource]:
    """Split (name, tuple) events into per-channel StreamSources."""
    by_name: dict[str, list[StreamTuple]] = {}
    for name, tuple_ in events:
        by_name.setdefault(name, []).append(tuple_)
    sources = []
    for name, tuples in by_name.items():
        stream = name_to_stream[name]
        channel = plan.channel_of(stream)
        sources.append(StreamSource(channel, tuples, member_streams=[stream]))
    return sources


class _SyntheticEventWorkload:
    """Shared scaffolding for Workloads 1 and 2 (S/T interleaved events)."""

    def __init__(self, params: WorkloadParameters, seed: int):
        self.params = params
        self.seed = seed
        self.schema = synthetic_schema(params.num_attributes)
        rng = np.random.default_rng(seed)
        self._constants = ZipfSampler(
            0, params.constant_domain - 1, params.zipf, rng
        )
        self._windows = ZipfSampler(1, params.window_domain, params.zipf, rng)
        self._event_rng = np.random.default_rng(seed + 1)

    def events(self, total: int) -> list[tuple[str, StreamTuple]]:
        """``total`` interleaved S/T events (fresh tail each call)."""
        return interleaved_events(self.schema, total, self._event_rng)


class Workload1(_SyntheticEventWorkload):
    """``σθ1(S) ;θ2∧θ3 T`` — the FR/AN index workload (Fig. 9)."""

    def __init__(self, params: WorkloadParameters, seed: int = 11):
        super().__init__(params, seed)
        count = params.num_queries
        self.theta1_constants = [int(c) for c in self._constants.sample(count)]
        self.theta3_constants = [int(c) for c in self._constants.sample(count)]
        self.windows = [int(w) for w in self._windows.sample(count)]

    def _sequence_predicate(self, index: int) -> Predicate:
        return conjunction(
            [
                DurationWithin(self.windows[index]),
                Comparison(right("a0"), "==", lit(self.theta3_constants[index])),
            ]
        )

    def rumor_plan(self, channels: bool = False):
        plan = QueryPlan()
        s = plan.add_source("S", self.schema)
        t = plan.add_source("T", self.schema)
        for index in range(self.params.num_queries):
            query_id = f"q{index}"
            selected = plan.add_operator(
                Selection(
                    Comparison(attr("a0"), "==", lit(self.theta1_constants[index]))
                ),
                [s],
                query_id=query_id,
            )
            matched = plan.add_operator(
                Sequence(self._sequence_predicate(index)),
                [selected, t],
                query_id=query_id,
            )
            plan.mark_output(matched, query_id)
        _optimize(plan, channels)
        return plan, {"S": s, "T": t}

    def automaton_engine(self, **index_flags) -> AutomatonEngine:
        engine = AutomatonEngine(**index_flags)
        engine.declare_stream("S", self.schema)
        engine.declare_stream("T", self.schema)
        for index in range(self.params.num_queries):
            engine.add(
                sequence_automaton(
                    "S",
                    self.schema,
                    Comparison(right("a0"), "==", lit(self.theta1_constants[index])),
                    "T",
                    self.schema,
                    self._sequence_predicate(index),
                    query_id=f"q{index}",
                )
            )
        return engine


class Workload2(_SyntheticEventWorkload):
    """``S ;θ1∧θ2 T`` (or µ variant) — the AI index workload (Fig. 10(a,b))."""

    def __init__(
        self, params: WorkloadParameters, variant: str = "seq", seed: int = 22
    ):
        if variant not in ("seq", "mu"):
            raise WorkloadError(f"unknown Workload 2 variant {variant!r}")
        super().__init__(params, seed)
        self.variant = variant
        self.windows = [int(w) for w in self._windows.sample(params.num_queries)]

    def _forward_predicate(self, index: int) -> Predicate:
        return conjunction(
            [
                DurationWithin(self.windows[index]),
                Comparison(left("a0"), "==", right("a0")),
            ]
        )

    def _rebind_predicate(self) -> Predicate:
        return conjunction(
            [
                Comparison(left("a0"), "==", right("a0")),
                Comparison(right("a1"), ">", last("a1")),
            ]
        )

    def _operator(self, index: int):
        if self.variant == "seq":
            return Sequence(self._forward_predicate(index))
        return Iterate(self._forward_predicate(index), self._rebind_predicate())

    def rumor_plan(self, channels: bool = False):
        plan = QueryPlan()
        s = plan.add_source("S", self.schema)
        t = plan.add_source("T", self.schema)
        for index in range(self.params.num_queries):
            query_id = f"q{index}"
            matched = plan.add_operator(
                self._operator(index), [s, t], query_id=query_id
            )
            plan.mark_output(matched, query_id)
        _optimize(plan, channels)
        return plan, {"S": s, "T": t}

    def automaton_engine(self, **index_flags) -> AutomatonEngine:
        engine = AutomatonEngine(**index_flags)
        engine.declare_stream("S", self.schema)
        engine.declare_stream("T", self.schema)
        for index in range(self.params.num_queries):
            query_id = f"q{index}"
            if self.variant == "seq":
                automaton = sequence_automaton(
                    "S",
                    self.schema,
                    TruePredicate(),
                    "T",
                    self.schema,
                    self._forward_predicate(index),
                    query_id=query_id,
                )
            else:
                automaton = iterate_automaton(
                    "S",
                    self.schema,
                    TruePredicate(),
                    "T",
                    self.schema,
                    self._forward_predicate(index),
                    self._rebind_predicate(),
                    query_id=query_id,
                )
            engine.add(automaton)
        return engine


class Workload3:
    """``Si ;θ1∧θ2 T`` over sharable streams — the channel workload (Fig. 10(c,d))."""

    def __init__(
        self,
        params: WorkloadParameters,
        capacity: int = 10,
        variant: str = "seq",
        seed: int = 33,
    ):
        if capacity < 1:
            raise WorkloadError("channel capacity must be at least 1")
        if variant not in ("seq", "mu"):
            raise WorkloadError(f"unknown Workload 3 variant {variant!r}")
        self.params = params
        self.capacity = capacity
        self.variant = variant
        self.seed = seed
        self.schema = synthetic_schema(params.num_attributes)
        rng = np.random.default_rng(seed)
        self._windows = ZipfSampler(1, params.window_domain, params.zipf, rng)
        self.windows = [int(w) for w in self._windows.sample(params.num_queries)]
        self._event_rng = np.random.default_rng(seed + 1)
        self.stream_names = [f"S{i + 1}" for i in range(capacity)]

    def _operator(self, index: int):
        forward = conjunction(
            [
                DurationWithin(self.windows[index]),
                Comparison(left("a0"), "==", right("a0")),
            ]
        )
        if self.variant == "seq":
            return Sequence(forward)
        rebind = conjunction(
            [
                Comparison(left("a0"), "==", right("a0")),
                Comparison(right("a1"), ">", last("a1")),
            ]
        )
        return Iterate(forward, rebind)

    def rumor_plan(self, channels: bool):
        plan = QueryPlan()
        streams = [
            plan.add_source(name, self.schema, sharable_label="S")
            for name in self.stream_names
        ]
        t = plan.add_source("T", self.schema)
        for index in range(self.params.num_queries):
            query_id = f"q{index}"
            source = streams[index % self.capacity]
            matched = plan.add_operator(
                self._operator(index), [source, t], query_id=query_id
            )
            plan.mark_output(matched, query_id)
        _optimize(plan, channels)
        name_map = dict(zip(self.stream_names, streams))
        name_map["T"] = t
        return plan, name_map

    def rounds(self, count: int):
        """Round content shared by both configurations (identical content)."""
        return round_robin_rounds(
            self.schema, count, self.capacity, self._event_rng
        )

    def sources(self, plan, name_map, rounds) -> list[StreamSource]:
        """Build sources for ``plan`` (channel or plain wiring) from rounds."""
        first = name_map[self.stream_names[0]]
        channel = plan.channel_of(first)
        t_stream = name_map["T"]
        t_tuples = [
            StreamTuple(self.schema, tuple(int(v) for v in t_values), 2 * r + 1)
            for r, (__, t_values) in enumerate(rounds)
        ]
        t_source = StreamSource(
            plan.channel_of(t_stream), t_tuples, member_streams=[t_stream]
        )
        if channel.is_singleton:
            sources = []
            for name in self.stream_names:
                stream = name_map[name]
                tuples = [
                    StreamTuple(self.schema, tuple(int(v) for v in s_values), 2 * r)
                    for r, (s_values, __) in enumerate(rounds)
                ]
                sources.append(
                    StreamSource(
                        plan.channel_of(stream), tuples, member_streams=[stream]
                    )
                )
            sources.append(t_source)
            return sources
        channel_tuples = [
            StreamTuple(self.schema, tuple(int(v) for v in s_values), 2 * r)
            for r, (s_values, __) in enumerate(rounds)
        ]
        return [StreamSource(channel, channel_tuples), t_source]


class HybridWorkload:
    """n modified Query 2 instances over a perfmon dataset (§5.3, Fig. 11).

    Modifications per the paper: every query monitors *all* processes
    (correlation on ``pid``), the smoothing window is 60 s, the stopping
    condition is ``load > 10``, and the starting conditions are non-indexable
    inequalities whose selectivity is controlled by ``sel`` ∈ [0, 1].
    """

    def __init__(
        self,
        dataset: PerfmonDataset,
        num_queries: int = 10,
        sel: float = 0.5,
        smooth_window: int = 60,
        stop_threshold: int = 10,
    ):
        if not 0.0 <= sel <= 1.0:
            raise WorkloadError(f"sel must be in [0, 1], got {sel}")
        self.dataset = dataset
        self.num_queries = num_queries
        self.sel = sel
        self.smooth_window = smooth_window
        self.stop_threshold = stop_threshold
        # Per-query starting thresholds: load < threshold.  Each query gets a
        # fractionally different threshold so the starting conditions are
        # genuinely distinct definitions (no accidental CSE) while their
        # selectivities stay ≈ sel; integer loads make the behavioural
        # difference negligible.  sel = 0 admits nothing: thresholds are
        # negative and loads are non-negative.
        base = 100.0 * sel
        self.thresholds = [
            round(base - 0.01 * (index + 1), 2) for index in range(num_queries)
        ]

    def _mu_operator(self) -> Iterate:
        correlation = Comparison(left("pid"), "==", right("pid"))
        increasing = Comparison(right("load"), ">", last("load"))
        forward = conjunction([correlation, increasing])
        rebind = conjunction([correlation, increasing])
        return Iterate(forward, rebind)

    def rumor_plan(self, channels: bool, optimize: bool = True):
        plan = QueryPlan()
        cpu = plan.add_source("CPU", CPU_SCHEMA)
        mu_operator = self._mu_operator()
        stop_predicate = Comparison(attr("load"), ">", lit(self.stop_threshold))
        for index in range(self.num_queries):
            query_id = f"q{index}"
            smoothed = plan.add_operator(
                SlidingWindowAggregate(
                    "avg",
                    "load",
                    TimeWindow(self.smooth_window),
                    group_by=("pid",),
                    output_name="load",
                ),
                [cpu],
                query_id=query_id,
            )
            started = plan.add_operator(
                Selection(
                    Comparison(attr("load"), "<", lit(self.thresholds[index]))
                ),
                [smoothed],
                query_id=query_id,
            )
            pattern = plan.add_operator(
                mu_operator, [started, smoothed], query_id=query_id
            )
            stopped = plan.add_operator(
                Selection(stop_predicate), [pattern], query_id=query_id
            )
            plan.mark_output(stopped, query_id)
        if optimize:
            _optimize(plan, channels)
        return plan, {"CPU": cpu}

    def sources(self, plan, name_map, duration_seconds: int) -> list[StreamSource]:
        cpu = name_map["CPU"]
        tuples = list(self.dataset.generate(duration_seconds))
        return [
            StreamSource(plan.channel_of(cpu), tuples, member_streams=[cpu])
        ]
