"""The sharded execution engine: one batched engine per plan component group.

:class:`ShardedEngine` partitions a (typically optimized) plan with
:class:`~repro.shard.planner.ShardPlanner` and runs one batched
:class:`~repro.engine.executor.StreamEngine` per shard.  Because shards are
unions of entry-channel connected components, the engines share no m-ops and
no channels: feeding each shard exactly the source events on its own entry
channels reproduces the single-engine outputs byte-for-byte, per query.

Two execution modes:

- **process** — one ``multiprocessing`` worker per non-empty shard, using
  the ``fork`` start method so workers inherit their sub-plan, engine and
  sources without pickling a single plan object; only results (RunStats and
  captured outputs) cross back.  Chosen automatically when the platform
  supports ``fork`` and has more than one CPU.
- **inline** — shards run sequentially in the calling process.  The fallback
  for ``n_shards=1``, for tests, and for platforms without ``fork``
  (Windows/macOS-spawn).  Still faster than the single engine on
  multi-source workloads: each shard drains its own sources through the
  single-source bulk path with full-length runs, where the global k-way
  merge of the single engine interleaves channels and cuts every run short.

Two feed strategies, orthogonal to the mode:

- **local** — the :class:`SourceRouter` splits the source list by entry
  channel up front; each shard iterates its own sources.  No per-event
  serialization.  The default whenever sources are statically routable
  (with entry-channel components they always are).
- **router** — the coordinating process consumes the global timestamp-ordered
  merge, encodes each run with the :mod:`~repro.shard.wire` format and
  streams it to the owning shard (via queues in process mode).  This is the
  path live feeds use and the one that exercises the wire protocol; it keeps
  the global merge order, at the cost of coordinator-side work per run.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from typing import Optional, Sequence

from repro.engine.executor import StreamEngine
from repro.engine.metrics import RunStats
from repro.errors import PlanError
from repro.core.plan import QueryPlan
from repro.shard.planner import ShardPlan, ShardPlanner
from repro.shard.stats import ShardedRunStats
from repro.shard.wire import SCHEMA, STOP, STOP_FRAME, WireDecoder, WireEncoder
from repro.streams.sources import StreamSource, merge_source_runs


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform."""
    return "fork" in multiprocessing.get_all_start_methods()


class SourceRouter:
    """Routes sources (and runs) to the shard owning their entry channel.

    The routing table is a channel-id hash: ``channel_shard`` from the
    shard plan, with a stable modulo fallback for channels no m-op consumes
    (their events still need a home so input accounting matches the single
    engine, which counts them too).
    """

    def __init__(self, channel_shard: dict[int, int], n_shards: int):
        if n_shards < 1:
            raise PlanError(f"n_shards must be at least 1, got {n_shards}")
        self.channel_shard = dict(channel_shard)
        self.n_shards = n_shards

    def shard_of_channel(self, channel_id: int) -> int:
        shard = self.channel_shard.get(channel_id)
        if shard is None:
            shard = channel_id % self.n_shards
        return shard

    def split_sources(
        self, sources: Sequence[StreamSource]
    ) -> list[list[StreamSource]]:
        """Partition sources by their channel's owning shard."""
        split: list[list[StreamSource]] = [[] for __ in range(self.n_shards)]
        for source in sources:
            split[self.shard_of_channel(source.channel.channel_id)].append(source)
        return split

    def split_routable(
        self, sources: Sequence[StreamSource]
    ) -> tuple[list[StreamSource], list[StreamSource]]:
        """Split into (consumed-channel sources, unconsumed-channel sources).

        The wire feed only ships runs for channels some shard's decoder
        knows; events on channels no m-op consumes cannot produce outputs,
        but the single engine still *counts* them, so the caller must count
        the second list locally to keep aggregate accounting identical.
        """
        routable: list[StreamSource] = []
        unrouted: list[StreamSource] = []
        for source in sources:
            if source.channel.channel_id in self.channel_shard:
                routable.append(source)
            else:
                unrouted.append(source)
        return routable, unrouted

    def feed_frames(
        self, sources: Sequence[StreamSource], max_batch: int
    ):
        """Yield ``(shard, frame)`` pairs for the global merged run stream.

        Schema frames are replicated to every shard (interning state is
        per-encoder, shared across shards; a shard may receive a schema
        frame it never uses — harmless).  Run frames go only to the owning
        shard.
        """
        encoder = WireEncoder()
        for channel, batch in merge_source_runs(sources, max_batch):
            shard = self.shard_of_channel(channel.channel_id)
            for frame in encoder.encode_run(channel, batch):
                if frame[0] == SCHEMA:
                    for index in range(self.n_shards):
                        yield index, frame
                else:
                    yield shard, frame


def _count_source_events(source: StreamSource) -> RunStats:
    """Input accounting for a source nothing consumes (no outputs possible)."""
    stats = RunStats()
    for __channel, channel_tuple in source:
        stats.input_events += channel_tuple.membership.bit_count()
        stats.physical_input_events += 1
    return stats


def _run_local(index: int, engine: StreamEngine, sources, results) -> None:
    """Worker body, local feed: drain the shard's own sources."""
    try:
        stats = engine.run(sources)
        results.put((index, "ok", stats, engine.captured, engine.mop_stats()))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.put((index, "error", traceback.format_exc(), None, None))


def _run_routed(index: int, engine: StreamEngine, frames, results) -> None:
    """Worker body, router feed: decode wire frames until the stop frame."""
    try:
        decoder = WireDecoder(engine.plan.channels())
        stats = RunStats()
        while True:
            frame = frames.get()
            if frame[0] == STOP:
                break
            decoded = decoder.decode(frame)
            if decoded is not None:
                channel, batch = decoded
                stats.absorb(engine.process_batch(channel, batch))
        results.put((index, "ok", stats, engine.captured, engine.mop_stats()))
    except BaseException:  # noqa: BLE001 - must cross the process boundary
        results.put((index, "error", traceback.format_exc(), None, None))


class ShardedEngine:
    """Executes one plan as ``n_shards`` independent batched engines."""

    def __init__(
        self,
        plan: QueryPlan,
        n_shards: int,
        parallel: object = "auto",
        feed: str = "auto",
        capture_outputs: bool = False,
        batching: bool = True,
        max_batch: int = 1024,
        planner: Optional[ShardPlanner] = None,
        observe: bool = False,
    ):
        if feed not in ("auto", "local", "router"):
            raise PlanError(f"unknown feed strategy {feed!r}")
        if parallel not in ("auto", True, False):
            raise PlanError(f"parallel must be 'auto', True or False")
        self.shard_plan: ShardPlan = (planner or ShardPlanner()).partition(
            plan, n_shards
        )
        self.n_shards = n_shards
        self.parallel = parallel
        self.feed = feed
        self.capture_outputs = capture_outputs
        self.max_batch = max_batch
        self.observe = bool(observe)
        self.engines = [
            StreamEngine(
                subplan,
                capture_outputs=capture_outputs,
                batching=batching,
                max_batch=max_batch,
                observe=observe,
            )
            for subplan in self.shard_plan.subplans
        ]
        self.router = SourceRouter(self.shard_plan.channel_shard, n_shards)
        #: query_id -> captured outputs, merged across shards after a run.
        self.captured: dict = {}
        #: shard index -> per-m-op telemetry from the last run (process-mode
        #: workers run on forked engine copies, so their records are shipped
        #: back with the results rather than read off ``self.engines``).
        self.shard_mop_stats: list[dict] = [
            {} for __ in self.shard_plan.subplans
        ]

    # -- mode/feed resolution --------------------------------------------------------

    def _resolve_mode(self) -> str:
        if self.parallel is False or self.n_shards == 1:
            return "inline"
        if self.parallel is True:
            if not fork_available():
                return "inline"  # same-process fallback (Windows/spawn)
            return "process"
        return (
            "process"
            if fork_available() and multiprocessing.cpu_count() > 1
            else "inline"
        )

    def _resolve_feed(self) -> str:
        return "local" if self.feed in ("auto", "local") else "router"

    # -- running ---------------------------------------------------------------------

    def run(self, sources: Sequence[StreamSource]) -> ShardedRunStats:
        """Drain ``sources`` through the shards; returns merged statistics.

        Source events are routed by entry channel — each shard sees exactly
        the (timestamp-ordered) subsequence on its own channels, so per-query
        outputs are byte-identical to the single-engine run over the same
        sources.
        """
        mode = self._resolve_mode()
        feed = self._resolve_feed()
        started = time.perf_counter()
        if mode == "process":
            per_shard, captured = self._run_process(sources, feed)
        else:
            per_shard, captured = self._run_inline(sources, feed)
        wall = time.perf_counter() - started
        self.captured = captured
        return ShardedRunStats(
            per_shard=per_shard, wall_seconds=wall, mode=mode
        )

    # -- inline ----------------------------------------------------------------------

    def _run_inline(self, sources, feed):
        per_shard: list[RunStats]
        if feed == "local":
            split = self.router.split_sources(sources)
            per_shard = [
                engine.run(shard_sources)
                for engine, shard_sources in zip(self.engines, split)
            ]
        else:
            per_shard = [RunStats() for __ in self.engines]
            decoders = [
                WireDecoder(engine.plan.channels()) for engine in self.engines
            ]
            routable, unrouted = self.router.split_routable(sources)
            for shard, frame in self.router.feed_frames(
                routable, self.max_batch
            ):
                decoded = decoders[shard].decode(frame)
                if decoded is not None:
                    channel, batch = decoded
                    per_shard[shard].absorb(
                        self.engines[shard].process_batch(channel, batch)
                    )
            self._absorb_unrouted(per_shard, unrouted)
        captured = {}
        for engine in self.engines:
            captured.update(engine.captured)
        self.shard_mop_stats = [engine.mop_stats() for engine in self.engines]
        return per_shard, captured

    # -- process workers -------------------------------------------------------------

    def _run_process(self, sources, feed):
        import queue as queue_module

        context = multiprocessing.get_context("fork")
        # mp.Queue buffers through a feeder thread, so coordinator puts never
        # block on a crashed consumer — a failed worker surfaces through the
        # results queue (or its exitcode) instead of deadlocking the feed.
        results = context.Queue()
        workers: list = []
        unrouted: list[StreamSource] = []
        if feed == "local":
            split = self.router.split_sources(sources)
            for index, engine in enumerate(self.engines):
                worker = context.Process(
                    target=_run_local,
                    args=(index, engine, split[index], results),
                )
                worker.start()
                workers.append(worker)
        else:
            feed_queues: list = []
            routable, unrouted = self.router.split_routable(sources)
            for index, engine in enumerate(self.engines):
                frames = context.Queue()
                feed_queues.append(frames)
                worker = context.Process(
                    target=_run_routed, args=(index, engine, frames, results)
                )
                worker.start()
                workers.append(worker)
            for shard, frame in self.router.feed_frames(
                routable, self.max_batch
            ):
                feed_queues[shard].put(frame)
            for frames in feed_queues:
                frames.put(STOP_FRAME)
        per_shard = [RunStats() for __ in self.engines]
        captured: dict = {}
        failures: list[str] = []
        remaining = set(range(len(workers)))
        suspected: set[int] = set()
        self.shard_mop_stats = [{} for __ in self.engines]
        while remaining:
            try:
                index, status, payload, shard_captured, shard_mops = results.get(
                    timeout=1.0
                )
            except queue_module.Empty:
                # No result yet: a worker that died without reporting (OS
                # kill, unpicklable result) would otherwise hang us here.
                # A dead worker gets one further get() cycle of grace in
                # case its result is still in the queue feeder pipe.
                for index in list(remaining):
                    if workers[index].exitcode is None:
                        continue
                    if index in suspected:
                        remaining.discard(index)
                        failures.append(
                            f"shard {index}: worker exited with code "
                            f"{workers[index].exitcode} without reporting "
                            f"a result"
                        )
                    else:
                        suspected.add(index)
                continue
            remaining.discard(index)
            if status != "ok":
                failures.append(f"shard {index}:\n{payload}")
                continue
            per_shard[index] = payload
            if shard_captured:
                captured.update(shard_captured)
            if shard_mops:
                self.shard_mop_stats[index] = shard_mops
        for worker in workers:
            worker.join()
        if failures:
            raise PlanError(
                "sharded run failed in worker(s):\n" + "\n".join(failures)
            )
        self._absorb_unrouted(per_shard, unrouted)
        return per_shard, captured

    def _absorb_unrouted(
        self, per_shard: list[RunStats], unrouted: list[StreamSource]
    ) -> None:
        """Count events on channels no shard consumes (router feed only).

        The single engine counts every source event whether or not anything
        consumes it; the wire feed cannot ship runs for channels no decoder
        knows, so their input accounting happens here, attributed to the
        channel's fallback shard so the aggregate matches exactly.
        """
        for source in unrouted:
            shard = self.router.shard_of_channel(source.channel.channel_id)
            per_shard[shard].absorb(_count_source_events(source))

    # -- introspection ---------------------------------------------------------------

    @property
    def state_size(self) -> int:
        return sum(engine.state_size for engine in self.engines)

    def mop_stats(self) -> dict[int, dict]:
        """Per-m-op telemetry merged across shards from the last run (shards
        share no m-ops, so the merge is a disjoint union)."""
        merged: dict[int, dict] = {}
        for shard_mops in self.shard_mop_stats:
            merged.update(shard_mops)
        return merged

    def describe(self) -> str:
        lines = [
            f"ShardedEngine: {self.n_shards} shards "
            f"({self.shard_plan.effective_shards} active)",
            self.shard_plan.describe(),
        ]
        return "\n".join(lines)
